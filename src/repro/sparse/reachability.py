"""Lazy SRN reachability: BFS straight into CSR triplet buffers.

The eager generator (:func:`repro.petrinet.reachability.build_reachability`)
builds a dict-based :class:`~repro.markov.CTMC` — one Python object and
several dict entries per marking and per transition — which tops out
around 10^5 markings.  This module is the large-state-space path: the
same tangible BFS with the same vanishing-marking elimination, but
markings are *interned* to dense integer ids (one token-tuple → id dict,
the only per-marking structure kept), transitions stream into
chunk-allocated NumPy triplet buffers, and the result is a
:class:`~repro.sparse.ctmc.SparseCTMC` whose marking labels are
materialized lazily on access.

The BFS visits markings, transitions and vanishing-resolution targets in
exactly the order the eager generator does, so the lazy and eager paths
produce the **same state indexing** and (up to last-ulp summation
differences) the same generator — ``tests/sparse`` asserts this on every
SRN case study in the repo.

A structural *pre-flight* (P-invariant analysis from
:mod:`repro.analyze.invariants`) sizes the net before building: nets
whose invariant-implied state bound exceeds ``max_markings`` are refused
in milliseconds — before a single marking is expanded — with the
certificate attached to the :class:`~repro.exceptions.StateSpaceError`,
and nets under budget get their triplet buffers pre-sized from the
predicted edge count.  A bounded-memory guard then tracks the estimated
footprint (interning table + triplet buffers) during BFS and raises
:class:`~repro.exceptions.StateSpaceError` before the process swaps, and
the whole exploration runs inside a ``sparse.reachability`` trace span
with periodic marking/edge counters.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from ..exceptions import StateSpaceError
from ..obs.trace import get_tracer
from ..petrinet.net import Marking, PetriNet
from ..petrinet.reachability import _resolve_vanishing
from .ctmc import SparseCTMC, _LazySeq

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..compile.ctmc import RateTerm
    from ..petrinet.net import Transition

__all__ = ["SparseReachabilityResult", "build_sparse_reachability"]

_DEFAULT_MAX_MARKINGS = 5_000_000
_DEFAULT_CHUNK = 65_536
#: Estimated bytes per interned marking: the token tuple (56 + 8·P for
#: small ints already cached by CPython) plus its dict slot and the id.
_DICT_SLOT_BYTES = 104
#: Bytes per streamed transition triplet (int64 row + int64 col + float64).
_TRIPLET_BYTES = 24


class _TripletBuffer:
    """Append-only (row, col, value) store in chunk-allocated NumPy arrays."""

    __slots__ = ("_chunk", "_cap", "_allocated", "_full", "_rows", "_cols", "_vals", "_fill", "count")

    def __init__(self, chunk: int = _DEFAULT_CHUNK, initial: Optional[int] = None):
        self._chunk = int(chunk)
        # The pre-flight can pre-size the first buffer from the predicted
        # edge count, turning many chunk growths into one allocation.
        # Chunking never affects the streamed values, only allocation.
        self._cap = int(initial) if initial else self._chunk
        self._allocated = self._cap
        self._full: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._rows = np.empty(self._cap, dtype=np.int64)
        self._cols = np.empty(self._cap, dtype=np.int64)
        self._vals = np.empty(self._cap, dtype=np.float64)
        self._fill = 0
        self.count = 0

    def add(self, row: int, col: int, value: float) -> None:
        if self._fill == self._cap:
            self._full.append((self._rows, self._cols, self._vals))
            self._cap = self._chunk
            self._allocated += self._cap
            self._rows = np.empty(self._cap, dtype=np.int64)
            self._cols = np.empty(self._cap, dtype=np.int64)
            self._vals = np.empty(self._cap, dtype=np.float64)
            self._fill = 0
        i = self._fill
        self._rows[i] = row
        self._cols[i] = col
        self._vals[i] = value
        self._fill = i + 1
        self.count += 1

    def arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        rows = [r for r, _, _ in self._full] + [self._rows[: self._fill]]
        cols = [c for _, c, _ in self._full] + [self._cols[: self._fill]]
        vals = [v for _, _, v in self._full] + [self._vals[: self._fill]]
        return np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)

    @property
    def nbytes(self) -> int:
        return self._allocated * _TRIPLET_BYTES


class _ChunkVec:
    """Append-only scalar store in chunk-allocated NumPy arrays.

    The single-column sibling of :class:`_TripletBuffer`, used by the
    ``rate_terms=`` recording path for the per-transition term ids and
    vanishing-resolution multipliers.
    """

    __slots__ = ("_chunk", "_dtype", "_full", "_buf", "_fill")

    def __init__(self, dtype, chunk: int = _DEFAULT_CHUNK):
        self._chunk = int(chunk)
        self._dtype = dtype
        self._full: List[np.ndarray] = []
        self._buf = np.empty(self._chunk, dtype=dtype)
        self._fill = 0

    def add(self, value) -> None:
        if self._fill == self._chunk:
            self._full.append(self._buf)
            self._buf = np.empty(self._chunk, dtype=self._dtype)
            self._fill = 0
        self._buf[self._fill] = value
        self._fill += 1

    def array(self) -> np.ndarray:
        return np.concatenate([*self._full, self._buf[: self._fill]])

    @property
    def nbytes(self) -> int:
        return (len(self._full) + 1) * self._chunk * self._buf.itemsize


class SparseReachabilityResult:
    """Outcome of lazy reachability analysis.

    The sparse twin of
    :class:`~repro.petrinet.reachability.ReachabilityResult`: ``chain``
    is a :class:`~repro.sparse.ctmc.SparseCTMC` instead of a dict-built
    CTMC, and ``tangible`` is a lazily-materializing sequence of
    markings rather than a list of live objects.

    When the build recorded symbolic rates (``rate_terms=``),
    ``compiled`` holds the :class:`~repro.compile.sparse.CompiledSparseCTMC`
    sharing this chain's frozen CSR index arrays; otherwise ``None``.
    """

    def __init__(
        self,
        chain: SparseCTMC,
        initial: Dict[Marking, float],
        tangible: Sequence[Marking],
        n_vanishing: int,
    ):
        self.chain = chain
        self.initial = initial
        self.tangible = tangible
        self.n_vanishing = n_vanishing
        self.compiled = None


def build_sparse_reachability(
    net: PetriNet,
    max_markings: int = _DEFAULT_MAX_MARKINGS,
    memory_limit_mb: float = 4096.0,
    chunk: int = _DEFAULT_CHUNK,
    up: Optional[Callable[[Marking], bool]] = None,
    rate_terms: Optional[Callable[["Transition", Marking], "RateTerm"]] = None,
    rate_values: Optional[Mapping[str, float]] = None,
    preflight: bool = True,
) -> SparseReachabilityResult:
    """Generate the tangible reachability graph of ``net`` into CSR form.

    Parameters
    ----------
    net:
        The Petri net; immediate transitions are eliminated exactly as
        in the eager generator (shared vanishing-SCC solver).
    max_markings:
        Cap on tangible markings (default 5·10^6, vs 2·10^5 eager).
    memory_limit_mb:
        Bounded-memory guard: the estimated footprint of the interning
        table plus triplet buffers may not exceed this; crossing it
        raises :class:`~repro.exceptions.StateSpaceError` with the
        marking count reached, instead of driving the host into swap.
    chunk:
        Triplet-buffer chunk length (tuning knob; any positive value
        yields identical results).
    up:
        Optional predicate on markings evaluated once per discovered
        marking; the resulting boolean mask is attached to the
        :class:`SparseCTMC` as its ``up`` mask, enabling
        ``chain.availability()`` without a second pass over labels.
    rate_terms:
        Optional ``(transition, marking) -> RateTerm`` recorder (the
        symbolic algebra of :mod:`repro.compile.ctmc`).  When given, the
        BFS interns one term per *distinct* rate expression alongside
        the streamed triplets and attaches a
        :class:`~repro.compile.sparse.CompiledSparseCTMC` to the result
        (``result.compiled``), so rate-only parameter sweeps refill the
        CSR ``data`` array without re-running this BFS.  The recorded
        terms must reproduce ``transition.rate_in(marking)`` at the
        build values; the net must be built at strictly-positive rates
        (edges with non-positive build rates are structurally dropped)
        and vanishing-resolution probabilities must be
        parameter-independent (they are frozen as multipliers).
    rate_values:
        The parameter values ``net`` was built at; stored on the
        compiled chain as the defaults merged under every sweep point
        and the point its deterministic warm-start reference is solved
        at.  Only meaningful with ``rate_terms``.
    preflight:
        Structural sizing before building (default on): P-invariant
        analysis (:func:`repro.analyze.invariants.structural_analysis`)
        bounds the reachable markings in milliseconds, *before* any BFS.
        A net whose bound exceeds ``max_markings`` is refused immediately
        — the :class:`~repro.exceptions.StateSpaceError` carries the
        proof on its ``certificate`` attribute — and a net under budget
        gets its triplet buffers pre-sized from the predicted edge
        count.  The bound is an over-approximation, so a refused net
        *may* have been feasible; pass ``preflight=False`` to attempt
        the build anyway and rely on the runtime guards alone.
    """
    if chunk < 1:
        raise StateSpaceError(f"chunk must be positive, got {chunk}")

    predicted_states: Optional[int] = None
    initial_capacity: Optional[int] = None
    if preflight:
        # Imported lazily: repro.analyze pulls in model packages.
        from ..analyze.invariants import structural_analysis

        prediction = structural_analysis(net, conservation_check=False)
        if prediction.complete and prediction.state_bound is not None:
            predicted_states = prediction.state_bound
            if predicted_states > max_markings:
                raise StateSpaceError(
                    f"structural pre-flight refused the build: P-invariant "
                    f"analysis bounds the reachable markings at "
                    f"{predicted_states}, above max_markings={max_markings}; "
                    f"no marking was expanded. Raise max_markings, shrink the "
                    f"net, or pass preflight=False to attempt the build "
                    f"anyway (the bound is an over-approximation)",
                    certificate=prediction,
                )
            n_timed = sum(
                1 for t in net._transitions.values() if not t.is_immediate
            )
            expected_edges = predicted_states * max(1, n_timed)
            # Never pre-allocate more than a quarter of the memory budget.
            by_memory = int(memory_limit_mb * 1024 * 1024) // (4 * _TRIPLET_BYTES)
            initial_capacity = max(int(chunk), min(expected_edges, by_memory))
    record = rate_terms is not None
    term_index: Dict = {}
    terms: List = []
    term_ids = _ChunkVec(np.int64, chunk) if record else None
    multipliers = _ChunkVec(np.float64, chunk) if record else None
    memory_limit = int(memory_limit_mb * 1024 * 1024)
    places = tuple(net.places)
    token_bytes = 56 + 8 * len(places) + _DICT_SLOT_BYTES

    initial_marking = net.initial_marking()
    n_vanishing = 0
    if net.is_vanishing(initial_marking):
        n_vanishing += 1
        initial_distribution = _resolve_vanishing(net, initial_marking, max_markings)
    else:
        initial_distribution = {initial_marking: 1.0}

    index: Dict[Tuple[int, ...], int] = {}
    tokens: List[Tuple[int, ...]] = []
    up_mask = bytearray() if up is not None else None
    triplets = _TripletBuffer(chunk, initial=initial_capacity)
    queue: deque = deque()

    tracer = get_tracer()

    def intern(marking: Marking) -> int:
        key = marking.tokens
        idx = index.get(key)
        if idx is None:
            if len(tokens) >= max_markings:
                raise StateSpaceError(
                    f"reachability exceeded {max_markings} tangible markings "
                    "(state-space explosion); simplify the net or raise the cap"
                )
            idx = len(tokens)
            index[key] = idx
            tokens.append(key)
            if up_mask is not None:
                up_mask.append(1 if up(marking) else 0)
            queue.append(idx)
        return idx

    with tracer.span(
        "sparse.reachability",
        n_places=len(places),
        max_markings=int(max_markings),
        memory_limit_mb=float(memory_limit_mb),
    ) as span:
        if predicted_states is not None:
            span.set(predicted_states=int(predicted_states))
        for marking in initial_distribution:
            intern(marking)

        vanishing_cache: Dict[Marking, Dict[Marking, float]] = {}
        markings_counter = tracer.metrics.counter("sparse.reachability.markings")
        edges_counter = tracer.metrics.counter("sparse.reachability.edges")
        explored = 0
        last_markings = 0
        last_edges = 0

        while queue:
            i = queue.popleft()
            marking = Marking(places, tokens[i])
            for transition in net.enabled_transitions(marking):
                rate = transition.rate_in(marking)
                if rate <= 0.0:
                    continue
                successor = transition.fire(marking)
                if net.is_vanishing(successor):
                    if successor not in vanishing_cache:
                        n_vanishing += 1
                        vanishing_cache[successor] = _resolve_vanishing(
                            net, successor, max_markings
                        )
                    targets = vanishing_cache[successor]
                else:
                    targets = {successor: 1.0}
                if record:
                    term = rate_terms(transition, marking)
                    tid = term_index.get(term)
                    if tid is None:
                        tid = len(terms)
                        term_index[term] = tid
                        terms.append(term)
                for target, prob in targets.items():
                    if target.tokens == tokens[i]:
                        continue  # rate flows back: no net transition
                    j = intern(target)
                    triplets.add(i, j, rate * prob)
                    if record:
                        term_ids.add(tid)
                        multipliers.add(prob)
            explored += 1
            if explored % chunk == 0:
                markings_counter.inc(len(tokens) - last_markings)
                edges_counter.inc(triplets.count - last_edges)
                last_markings = len(tokens)
                last_edges = triplets.count
                estimated = len(tokens) * token_bytes + triplets.nbytes
                if record:
                    estimated += term_ids.nbytes + multipliers.nbytes
                if estimated > memory_limit:
                    raise StateSpaceError(
                        f"lazy reachability exceeded the {memory_limit_mb:.0f} MiB "
                        f"memory budget at {len(tokens)} markings / "
                        f"{triplets.count} transitions (estimated "
                        f"{estimated / 1e6:.0f} MB); raise memory_limit_mb or "
                        "shrink the model"
                    )

        markings_counter.inc(len(tokens) - last_markings)
        edges_counter.inc(triplets.count - last_edges)

        n = len(tokens)
        rows, cols, vals = triplets.arrays()
        nnz = rows.size
        # Diagonal from the streamed off-diagonal rates, mirroring
        # CTMC.generator(): in-order subtraction per stored entry.
        diag = np.zeros(n)
        np.subtract.at(diag, rows, vals)
        all_rows = np.concatenate([rows, np.arange(n, dtype=np.int64)])
        all_cols = np.concatenate([cols, np.arange(n, dtype=np.int64)])
        all_vals = np.concatenate([vals, diag])
        generator = sparse.csr_matrix(
            (all_vals, (all_rows, all_cols)), shape=(n, n), dtype=float
        )
        span.set(n_markings=n, n_transitions=int(nnz), n_vanishing=n_vanishing)

    initial_vector = np.zeros(n)
    for marking, prob in initial_distribution.items():
        initial_vector[index[marking.tokens]] = prob

    labels = _LazySeq(lambda i: Marking(places, tokens[i]), n)
    mask = (
        np.frombuffer(bytes(up_mask), dtype=np.uint8).astype(bool)
        if up_mask is not None
        else None
    )
    chain = SparseCTMC(generator, labels=labels, initial=initial_vector, up=mask)
    result = SparseReachabilityResult(chain, initial_distribution, labels, n_vanishing)
    if record:
        # Imported lazily: repro.compile pulls in this module's package.
        from ..compile.sparse import CompiledSparseCTMC

        result.compiled = CompiledSparseCTMC(
            n,
            generator.indices,
            generator.indptr,
            rows,
            cols,
            terms,
            term_ids.array(),
            multipliers.array(),
            up=mask,
            initial=initial_vector,
            build_values=rate_values,
        )
    return result
