"""The large-state-space CTMC model object (CSR generator + state index).

:class:`SparseCTMC` is the structure-frozen counterpart of
:class:`repro.markov.CTMC` for chains too large to build through
per-state dicts: the generator lives in one CSR matrix, states are
integer indices, and labels (Petri-net markings, tuples, strings) are
attached lazily and only materialized on demand.  It converges with the
rest of the library through the *same* front doors as every other
model — ``steady_state``/``transient`` delegate to the
:mod:`repro.markov` solver chains (so ``method=``, ``diagnostics=``,
``SolverReport`` and tracing all apply), :func:`repro.compile_model`
accepts it (already structure-frozen, returned as-is),
:func:`repro.analyze.analyze` lints its generator sparsely, and
instances are callable evaluators so :func:`repro.evaluate_batch` and
:mod:`repro.serve` can ship them.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterator, Mapping, Optional, Sequence, Union

import numpy as np
from scipy import sparse

from ..exceptions import ModelDefinitionError, SolverError

__all__ = ["SparseCTMC"]


class _LazySeq(Sequence):
    """Read-only sequence view materializing items through a factory."""

    __slots__ = ("_factory", "_n")

    def __init__(self, factory, n: int):
        self._factory = factory
        self._n = n

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(self._n))]
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError(i)
        return self._factory(i)

    def __iter__(self) -> Iterator:
        factory = self._factory
        for i in range(self._n):
            yield factory(i)


class SparseCTMC:
    """A CTMC frozen into a CSR generator with integer states.

    Parameters
    ----------
    generator:
        ``(n, n)`` sparse infinitesimal generator (rows sum to zero).
        Stored as CSR; never densified.
    labels:
        Optional state labels in index order — a list, or any sequence
        (including a lazy one) of hashable labels.  ``None`` leaves the
        states labelled by their integer index.
    initial:
        Optional initial probability vector for transient analysis.
        Defaults to all mass on state 0.
    up:
        Optional boolean array marking "system up" states; enables
        :meth:`availability` and makes the model callable (an
        availability evaluator usable with ``evaluate_batch``/serve).
    """

    #: process-pool hint: ship once per worker, not once per task
    __ship_once__ = True

    #: default ``iterative_limit`` passed to the steady-state fallback
    #: chain.  Lazily-generated chains are exactly the ones where sparse
    #: LU fill-in explodes (product-form structure, wide bandwidth), so
    #: the iterative band starts above 5 000 states here instead of the
    #: dense-model default of 50 000.  Pass ``iterative_limit=`` to
    #: :meth:`steady_state` to override per call.
    ITERATIVE_LIMIT = 5_000

    def __init__(
        self,
        generator: sparse.spmatrix,
        labels: Optional[Sequence[Hashable]] = None,
        initial: Optional[np.ndarray] = None,
        up: Optional[np.ndarray] = None,
    ):
        q = sparse.csr_matrix(generator, dtype=float)
        if q.shape[0] != q.shape[1]:
            raise ModelDefinitionError(f"generator must be square, got {q.shape}")
        self._q = q
        n = q.shape[0]
        if labels is not None and len(labels) != n:
            raise ModelDefinitionError(
                f"{len(labels)} labels for {n} states"
            )
        self._labels = labels
        self._label_index: Optional[Dict[Hashable, int]] = None
        if initial is None:
            self._initial = None
        else:
            p0 = np.asarray(initial, dtype=float)
            if p0.shape != (n,):
                raise ModelDefinitionError(
                    f"initial vector has shape {p0.shape}, expected ({n},)"
                )
            total = p0.sum()
            if not np.isfinite(total) or abs(total - 1.0) > 1e-9 or p0.min() < 0:
                raise ModelDefinitionError("initial must be a probability vector")
            self._initial = p0
        if up is None:
            self._up = None
        else:
            mask = np.asarray(up, dtype=bool)
            if mask.shape != (n,):
                raise ModelDefinitionError(
                    f"up mask has shape {mask.shape}, expected ({n},)"
                )
            self._up = mask

    # ------------------------------------------------------------ structure
    @property
    def n_states(self) -> int:
        """Number of states."""
        return self._q.shape[0]

    @property
    def nnz(self) -> int:
        """Stored entries in the generator."""
        return int(self._q.nnz)

    @property
    def states(self) -> Sequence[Hashable]:
        """State labels in index order (integer indices when unlabeled)."""
        if self._labels is not None:
            return self._labels
        return range(self.n_states)

    @property
    def up_mask(self) -> Optional[np.ndarray]:
        """Boolean "system up" mask, when attached."""
        return self._up

    @property
    def initial_vector(self) -> np.ndarray:
        """Initial probability vector (defaults to all mass on state 0)."""
        if self._initial is not None:
            return self._initial
        p0 = np.zeros(self.n_states)
        p0[0] = 1.0
        return p0

    def generator(self) -> sparse.csr_matrix:
        """The CSR infinitesimal generator (shared, do not mutate)."""
        return self._q

    def index_of(self, label: Hashable) -> int:
        """Index of a labelled state (builds the reverse index on first use)."""
        if self._labels is None:
            idx = int(label)  # type: ignore[arg-type]
            if not 0 <= idx < self.n_states:
                raise ModelDefinitionError(f"state index {idx} out of range")
            return idx
        if self._label_index is None:
            self._label_index = {lbl: i for i, lbl in enumerate(self._labels)}
        try:
            return self._label_index[label]
        except KeyError:
            raise ModelDefinitionError(f"unknown state label: {label!r}") from None

    # -------------------------------------------------------------- solving
    def steady_state(
        self,
        method: str = "auto",
        diagnostics: str = "ignore",
        **kwargs: Any,
    ) -> np.ndarray:
        """Stationary distribution through the standard solver front door.

        Unlike :meth:`repro.markov.CTMC.steady_state` (which returns a
        label→probability dict for its small dict-built chains), this
        returns the probability *vector* in state-index order — a dict
        of 10^6 markings is exactly the materialization this class
        exists to avoid.  Use :meth:`probability`/:meth:`availability`
        or :attr:`states` for labelled access.
        """
        report = self.steady_state_report(
            method=method, diagnostics=diagnostics, **kwargs
        )
        return report.pi

    def steady_state_report(
        self, method: str = "auto", diagnostics: str = "ignore", **kwargs: Any
    ):
        """Full :class:`SolverReport` of the fallback-chain solve (``.pi`` holds π)."""
        from ..markov.fallback import solve_steady_state

        kwargs.setdefault("iterative_limit", self.ITERATIVE_LIMIT)
        return solve_steady_state(
            self._q, method=method, diagnostics=diagnostics, **kwargs
        )

    def transient(
        self,
        times: Union[float, Sequence[float], np.ndarray],
        initial: Optional[np.ndarray] = None,
        method: str = "auto",
        diagnostics: str = "ignore",
        **kwargs: Any,
    ) -> np.ndarray:
        """Transient state probabilities at ``times`` (shape ``(len, n)``).

        ``method`` accepts every registered transient backend —
        ``"auto"``, ``"uniformization"``, ``"krylov"``, ``"ode"``, … —
        with auto selecting Krylov stepping above the large-state
        threshold.  Scalar ``times`` yields a 1-D vector.
        """
        from ..markov.solvers import solve_transient

        scalar = np.isscalar(times)
        ts = np.atleast_1d(np.asarray(times, dtype=float))
        p0 = self.initial_vector if initial is None else np.asarray(initial, dtype=float)
        out = solve_transient(
            self._q, p0, ts, method=method, diagnostics=diagnostics, **kwargs
        )
        return out[0] if scalar else out

    # -------------------------------------------------------------- rewards
    def probability(self, labels, pi: Optional[np.ndarray] = None) -> float:
        """Steady-state probability of a label or iterable of labels."""
        if pi is None:
            pi = self.steady_state()
        if isinstance(labels, (list, tuple, set, frozenset)):
            return float(sum(pi[self.index_of(lbl)] for lbl in labels))
        return float(pi[self.index_of(labels)])

    def expected_reward(
        self, rewards: np.ndarray, pi: Optional[np.ndarray] = None
    ) -> float:
        """Expected steady-state reward rate for a per-state reward vector."""
        r = np.asarray(rewards, dtype=float)
        if r.shape != (self.n_states,):
            raise ModelDefinitionError(
                f"reward vector has shape {r.shape}, expected ({self.n_states},)"
            )
        if pi is None:
            pi = self.steady_state()
        return float(pi @ r)

    def availability(self, pi: Optional[np.ndarray] = None) -> float:
        """Steady-state availability: total probability of the up states."""
        if self._up is None:
            raise ModelDefinitionError(
                "SparseCTMC has no up mask; pass up= at construction "
                "or use expected_reward with an explicit reward vector"
            )
        if pi is None:
            pi = self.steady_state()
        return float(pi[self._up].sum())

    def __call__(self, assignment: Optional[Mapping[str, float]] = None) -> float:
        """Evaluate steady-state availability (engine/serve evaluator protocol).

        The generator is structure-and-value frozen, so only the empty
        assignment is meaningful; rebuild the model per parameter point
        (e.g. via :func:`repro.casestudies.nfvchain.build_nfv_chain`)
        for parametric sweeps.
        """
        if assignment:
            raise SolverError(
                "SparseCTMC is frozen at fixed rates and accepts only an empty "
                f"assignment, got {sorted(assignment)}; rebuild the model for "
                "new parameter values"
            )
        return self.availability()

    # ---------------------------------------------------------- conversions
    @classmethod
    def from_ctmc(cls, chain, **kwargs: Any) -> "SparseCTMC":
        """Freeze a dict-built :class:`repro.markov.CTMC` into sparse form."""
        q = chain.generator()
        return cls(q, labels=list(chain.states), **kwargs)

    def to_ctmc(self):
        """Materialize a dict-built :class:`repro.markov.CTMC` (small chains only).

        Refuses above 10 000 states: the per-state dicts it would build
        are the exact cost this class avoids.
        """
        n = self.n_states
        if n > 10_000:
            raise ModelDefinitionError(
                f"refusing to materialize a dict-built CTMC with {n} states; "
                "use the SparseCTMC solvers directly"
            )
        from ..markov.ctmc import CTMC

        labels = list(self.states)
        chain = CTMC()
        for lbl in labels:
            chain.add_state(lbl)
        coo = self._q.tocoo()
        for i, j, v in zip(coo.row, coo.col, coo.data):
            if i != j and v > 0.0:
                chain.add_transition(labels[i], labels[j], float(v))
        return chain

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseCTMC(n_states={self.n_states}, nnz={self.nnz}, "
            f"labelled={self._labels is not None}, up={self._up is not None})"
        )
