"""Large-state-space models and solvers (CSR generators, Krylov numerics).

The scale subsystem: everything needed to build and solve CTMCs with
10^5–10^7 states without ever materializing a dense matrix or a
per-state Python object graph.

* :class:`SparseCTMC` — the structure-frozen model object (CSR
  generator + lazy state labels) accepted by the standard front doors
  (``steady_state``/``transient``, :func:`repro.compile_model`,
  :func:`repro.analyze.analyze`, :func:`repro.evaluate_batch`);
* :func:`build_sparse_reachability` — lazy SRN reachability straight
  into CSR triplet buffers with marking interning and a bounded-memory
  guard (also reachable as ``build_reachability(net, lazy=True)`` /
  ``StochasticRewardNet(net, lazy=True)``);
* :mod:`repro.sparse.krylov` — ``expm_multiply`` transient stepping and
  preconditioned GMRES/BiCGSTAB steady state, registered as methods
  ``"krylov"``, ``"gmres"`` and ``"bicgstab"`` in the
  :mod:`repro.markov.registry` solver registries.

See ``docs/SCALING.md`` for thresholds, knobs and sizing guidance.
"""

from __future__ import annotations

from .ctmc import SparseCTMC
from .krylov import (
    augmented_system,
    steady_state_bicgstab,
    steady_state_gmres,
    steady_state_iterative,
    transient_krylov,
)
from .reachability import SparseReachabilityResult, build_sparse_reachability

__all__ = [
    "SparseCTMC",
    "SparseReachabilityResult",
    "build_sparse_reachability",
    "augmented_system",
    "steady_state_iterative",
    "steady_state_gmres",
    "steady_state_bicgstab",
    "transient_krylov",
]
