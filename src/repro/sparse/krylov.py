"""Krylov and preconditioned-iterative solver kernels for large chains.

The dense/direct kernels in :mod:`repro.markov.solvers` stop scaling
long before the models the tutorial's practical workloads produce: GTH
is O(n³) on a dense copy, SuperLU factorizations fill in, and
uniformization stores ``Λ·t`` vectors.  The kernels here are the
large-state-space counterparts, all matrix-free or pattern-preserving:

* :func:`transient_krylov` — π(t) = π(0)·e^{Qt} by Krylov-subspace
  ``expm_multiply`` stepping (scipy's Al-Mohy/Higham implementation),
  whose cost scales with nnz rather than with ``Λ·t`` terms;
* :func:`steady_state_iterative` — πQ = 0 on the normalized-augmented
  system ``A x = e_n`` (``A`` is ``Qᵀ`` with its last row replaced by
  the normalization ``Σπ = 1``) via GMRES or BiCGSTAB with a Jacobi or
  ILU preconditioner.

Both are registered as named methods (``"krylov"`` / ``"expm_multiply"``,
``"gmres"`` / ``"bicgstab"``) in the :mod:`repro.markov.registry` solver
registries, so they participate in the standard front doors, fallback
chains, SolverReports and traces; ``method="auto"`` selects them above
the state-count thresholds documented in ``docs/SCALING.md``.

This module deliberately never materializes a dense n×n array (lint
rule R007 enforces it).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from ..exceptions import ConvergenceError, SolverError
from ..markov.registry import record_iterations
from ..obs.trace import get_tracer

__all__ = [
    "augmented_system",
    "build_preconditioner",
    "steady_state_iterative",
    "steady_state_gmres",
    "steady_state_bicgstab",
    "transient_krylov",
]

#: Preconditioner spellings accepted by :func:`steady_state_iterative`.
PRECONDITIONERS: Tuple[str, ...] = ("jacobi", "ilu", "none")


def augmented_system(
    generator: sparse.spmatrix,
) -> Tuple[sparse.csr_matrix, np.ndarray]:
    """The normalized-augmented steady-state system ``A x = b``.

    ``A`` is ``Qᵀ`` with the last balance equation replaced by the
    normalization row of ones, ``b = e_n`` — the same system
    :func:`repro.markov.solvers.steady_state_direct` factorizes, built
    here without a LIL round-trip so assembly stays O(nnz) on
    million-state chains.
    """
    q = sparse.csr_matrix(generator, dtype=float)
    n = q.shape[0]
    qt = q.transpose().tocsr()
    ones_row = sparse.csr_matrix(
        (np.ones(n), (np.zeros(n, dtype=np.int64), np.arange(n, dtype=np.int64))),
        shape=(1, n),
    )
    a = sparse.vstack([qt[: n - 1, :], ones_row], format="csr")
    b = np.zeros(n)
    b[n - 1] = 1.0
    return a, b


def build_preconditioner(
    a: sparse.csr_matrix, kind: str
) -> Optional[sparse_linalg.LinearOperator]:
    """Build the requested left preconditioner for the augmented system.

    Exposed so sweep kernels (:class:`repro.compile.sparse.CompiledSparseCTMC`)
    can build one operator and reuse it across points by passing it back
    to :func:`steady_state_iterative` as ``preconditioner=``.
    """
    if kind == "none":
        return None
    if kind == "jacobi":
        diag = a.diagonal().copy()
        # The augmented diagonal holds the (negative) exit rates plus the
        # final 1.0 normalization entry; a zero would mean an absorbing
        # state, which the irreducibility pre-flight already rejects —
        # guard anyway so the operator stays finite.
        diag[diag == 0.0] = 1.0
        inv = 1.0 / diag
        return sparse_linalg.LinearOperator(
            a.shape, matvec=lambda x: inv * x, dtype=float
        )
    if kind == "ilu":
        try:
            ilu = sparse_linalg.spilu(a.tocsc(), drop_tol=1e-5, fill_factor=10.0)
        except RuntimeError as exc:
            raise SolverError(f"ILU preconditioner factorization failed: {exc}") from exc
        return sparse_linalg.LinearOperator(a.shape, matvec=ilu.solve, dtype=float)
    raise SolverError(
        f"unknown preconditioner {kind!r}; use one of {PRECONDITIONERS}"
    )


def steady_state_iterative(
    generator: sparse.spmatrix,
    method: str = "gmres",
    tol: float = 1e-12,
    preconditioner: Union[str, sparse_linalg.LinearOperator, None] = "jacobi",
    restart: int = 100,
    max_iterations: int = 20_000,
    validated: bool = False,
    x0: Optional[np.ndarray] = None,
    system: Optional[Tuple[sparse.csr_matrix, np.ndarray]] = None,
) -> np.ndarray:
    """Steady state by a preconditioned Krylov solve of ``A x = e_n``.

    Parameters
    ----------
    generator:
        Sparse CTMC generator (rows sum to zero).
    method:
        ``"gmres"`` (restarted, default) or ``"bicgstab"``.
    tol:
        Relative residual target of the Krylov iteration.
    preconditioner:
        ``"jacobi"`` (default, O(n) setup), ``"ilu"`` (incomplete LU —
        stronger but with fill-in cost), ``"none"``, or a prebuilt
        :class:`~scipy.sparse.linalg.LinearOperator` (sweep kernels
        reuse one operator across many fills; see
        :func:`build_preconditioner`).
    restart / max_iterations:
        GMRES restart length and the overall iteration budget.
    validated:
        Skip the shared :func:`~repro.markov.solvers.validate_generator`
        pre-flight for callers that already ran it on this matrix.
    x0:
        Optional initial guess for the Krylov iteration — warm-starting
        from a neighboring sweep point's solution typically converges in
        a handful of iterations.  ``None`` (default) starts from zero,
        matching the historic behavior bit for bit.
    system:
        Optional pre-assembled ``(A, b)`` augmented system; sweep
        kernels that maintain ``A`` in place pass it to skip the
        per-call :func:`augmented_system` transpose.

    The number of Krylov iterations spent is published through
    :func:`repro.markov.registry.record_iterations` (picked up into
    :class:`~repro.markov.fallback.SolverAttempt` by the front door) and,
    for warm-started solves, observed on the ``krylov.warm_iterations``
    histogram.

    Returns
    -------
    The stationary probability vector (clipped non-negative, normalized).
    """
    if method not in ("gmres", "bicgstab"):
        raise SolverError(f"unknown iterative method {method!r}; use 'gmres' or 'bicgstab'")
    if not validated:
        from ..markov.solvers import validate_generator

        validate_generator(generator)
    if system is not None:
        a, b = system
    else:
        a, b = augmented_system(generator)
    n = a.shape[0]
    if n == 1:
        return np.ones(1)
    if isinstance(preconditioner, str):
        m = build_preconditioner(a, preconditioner)
        precond_label = preconditioner
    else:
        m = preconditioner
        precond_label = "prebuilt" if m is not None else "none"
    iterations = 0

    def _count(_arg) -> None:
        nonlocal iterations
        iterations += 1

    tracer = get_tracer()
    with tracer.span(
        "solver.krylov_steady_state",
        method=method,
        preconditioner=precond_label,
        n_states=n,
        nnz=int(a.nnz),
        warm=x0 is not None,
    ) as span:
        if method == "gmres":
            # callback_type="pr_norm" fires once per inner iteration and
            # (unlike the "legacy" default) leaves the maxiter semantics
            # as restart cycles, so the iteration budget is unchanged.
            x, info = sparse_linalg.gmres(
                a, b, rtol=tol, atol=0.0, restart=restart,
                maxiter=max(1, max_iterations // max(1, restart)), M=m,
                x0=x0, callback=_count, callback_type="pr_norm",
            )
        else:
            x, info = sparse_linalg.bicgstab(
                a, b, rtol=tol, atol=0.0, maxiter=max_iterations, M=m,
                x0=x0, callback=_count,
            )
        span.set(info=int(info), iterations=iterations)
    record_iterations(iterations)
    if tracer.enabled and x0 is not None:
        tracer.metrics.histogram("krylov.warm_iterations").observe(float(iterations))
    if info < 0:  # pragma: no cover - scipy breakdown path
        raise SolverError(f"{method} broke down on the augmented system (info={info})")
    if info > 0:
        raise ConvergenceError(
            f"{method} did not reach tol={tol} within the iteration budget",
            iterations=int(info),
            residual=float(np.linalg.norm(a @ x - b)),
        )
    if not np.all(np.isfinite(x)):
        raise SolverError(f"{method} produced non-finite probabilities")
    pi = np.maximum(x, 0.0)
    total = pi.sum()
    if total <= 0.0:
        raise SolverError(f"{method} produced a zero vector")
    return pi / total


def steady_state_gmres(generator, validated: bool = False, **kwargs) -> np.ndarray:
    """GMRES spelling of :func:`steady_state_iterative`."""
    return steady_state_iterative(generator, method="gmres", validated=validated, **kwargs)


def steady_state_bicgstab(generator, validated: bool = False, **kwargs) -> np.ndarray:
    """BiCGSTAB spelling of :func:`steady_state_iterative`."""
    return steady_state_iterative(
        generator, method="bicgstab", validated=validated, **kwargs
    )


def transient_krylov(
    generator: sparse.spmatrix,
    initial: np.ndarray,
    times: np.ndarray,
    tol: float = 1e-10,
) -> np.ndarray:
    """Transient probabilities π(t) = π(0)·e^{Qt} by Krylov stepping.

    Steps through the sorted time points with scipy's ``expm_multiply``
    (Al-Mohy & Higham), reusing the previous point's vector as the next
    start: the work per step is a handful of sparse mat-vecs scaled by
    ``Λ·Δt``, never a stored ``Λ·t_max``-term series — which is exactly
    the regime (very large ``λt``, very many states) where
    uniformization's truncation point overflows its guard.

    ``tol`` is accepted for front-door signature compatibility;
    ``expm_multiply`` controls its own error to near machine precision.

    Returns an array of shape ``(len(times), n)`` in input time order.
    """
    times = np.asarray(times, dtype=float)
    if times.size and times.min() < 0:
        raise SolverError("times must be non-negative")
    q = sparse.csr_matrix(generator, dtype=float)
    qt = q.transpose().tocsr()
    n = qt.shape[0]
    p0 = np.asarray(initial, dtype=float)
    if p0.shape != (n,):
        raise SolverError(f"initial vector has shape {p0.shape}, expected ({n},)")
    out = np.empty((times.size, n))  # (n_times, n) result, not n^2  # noqa: R007
    if not times.size:
        return out
    order = np.argsort(times, kind="stable")
    tracer = get_tracer()
    with tracer.span(
        "solver.transient",
        method="krylov",
        n_states=n,
        n_times=int(times.size),
        horizon=float(times.max()),
    ):
        vec = p0
        prev_t = 0.0
        for idx in order:
            t = float(times[idx])
            dt = t - prev_t
            if dt > 0.0:
                vec = sparse_linalg.expm_multiply(qt * dt, vec)
                prev_t = t
            out[idx] = vec
    if not np.all(np.isfinite(out)):
        raise SolverError("Krylov transient stepping produced non-finite probabilities")
    return out
