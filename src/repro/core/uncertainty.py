"""Parametric (epistemic) uncertainty propagation (system S17).

Model *inputs* — failure rates, coverage factors, repair times — are
never known exactly; they come from finite field data or expert judgment.
The tutorial's closing challenge is to propagate that input uncertainty
to the output measures.  This module implements the sampling-based
approach: draw parameter vectors from their epistemic distributions
(plain Monte Carlo or Latin hypercube), evaluate the model on each draw,
and summarize the output distribution (mean, quantiles, confidence
intervals, tornado ranking).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..distributions import LifetimeDistribution
from ..engine import EngineStats, EvaluationCache, evaluate_batch
from ..exceptions import ModelDefinitionError

__all__ = ["UncertaintyResult", "propagate_uncertainty", "tornado_sensitivity"]

Evaluator = Callable[[Mapping[str, float]], float]


class UncertaintyResult:
    """Output distribution summary of an uncertainty propagation run.

    Attributes
    ----------
    samples:
        The raw output samples.
    parameter_samples:
        The drawn parameter values, by name.
    stats:
        The engine's :class:`~repro.engine.EngineStats` for the run
        (``None`` when the result was built directly from samples).
    """

    def __init__(
        self,
        samples: np.ndarray,
        parameter_samples: Dict[str, np.ndarray],
        stats: Optional[EngineStats] = None,
    ):
        self.samples = np.asarray(samples, dtype=float)
        self.parameter_samples = parameter_samples
        self.stats = stats

    @property
    def n_samples(self) -> int:
        """Number of model evaluations."""
        return self.samples.size

    def mean(self) -> float:
        """Sample mean of the output."""
        return float(self.samples.mean())

    def std(self) -> float:
        """Sample standard deviation of the output."""
        return float(self.samples.std(ddof=1)) if self.samples.size > 1 else 0.0

    def percentile(self, q):
        """Output percentile(s) (``q`` in [0, 100]).

        Returns a plain ``float`` for scalar ``q`` and a
        :class:`numpy.ndarray` for a sequence of percentiles.
        """
        result = np.percentile(self.samples, q)
        return float(result) if np.isscalar(q) else np.asarray(result)

    def interval(self, level: float = 0.95) -> Tuple[float, float]:
        """Central epistemic interval at the given level."""
        if not 0.0 < level < 1.0:
            raise ModelDefinitionError(f"level must be in (0, 1), got {level}")
        alpha = 100.0 * (1.0 - level) / 2.0
        return float(np.percentile(self.samples, alpha)), float(
            np.percentile(self.samples, 100.0 - alpha)
        )

    def mean_ci(self, level: float = 0.95) -> Tuple[float, float]:
        """Confidence interval for the *mean* (CLT); shrinks as 1/√n."""
        if self.samples.size < 2:
            raise ModelDefinitionError("need at least two samples for a CI")
        from scipy import stats

        half = stats.norm.ppf(0.5 + level / 2.0) * self.std() / math.sqrt(self.n_samples)
        mu = self.mean()
        return mu - half, mu + half


def _draw_parameters(
    priors: Mapping[str, LifetimeDistribution],
    n_samples: int,
    rng: np.random.Generator,
    method: str,
) -> Dict[str, np.ndarray]:
    draws: Dict[str, np.ndarray] = {}
    if method == "mc":
        for name, prior in priors.items():
            draws[name] = np.asarray(prior.sample(rng, size=n_samples), dtype=float)
    elif method == "lhs":
        for name, prior in priors.items():
            # One stratum per sample, uniformly placed within, then shuffled.
            strata = (np.arange(n_samples) + rng.uniform(size=n_samples)) / n_samples
            rng.shuffle(strata)
            draws[name] = np.asarray(prior.ppf(strata), dtype=float)
    else:
        raise ModelDefinitionError(f"unknown sampling method {method!r}; use 'mc' or 'lhs'")
    return draws


def propagate_uncertainty(
    evaluate: Evaluator,
    priors: Mapping[str, LifetimeDistribution],
    n_samples: int = 1000,
    rng: Optional[np.random.Generator] = None,
    method: str = "lhs",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    executor=None,
    cache: Optional[EvaluationCache] = None,
    progress=None,
) -> UncertaintyResult:
    """Propagate parameter uncertainty through a model.

    Parameters
    ----------
    evaluate:
        Maps a concrete parameter assignment to the scalar output measure
        (e.g. ``lambda p: build_model(p).steady_state_availability()``).
    priors:
        Epistemic distribution of each parameter (any
        :class:`~repro.distributions.LifetimeDistribution`; lognormals
        around the point estimate are the practitioner default for rates).
    n_samples:
        Number of model evaluations.
    method:
        ``"lhs"`` (Latin hypercube, default — lower variance for the same
        budget) or ``"mc"`` (plain Monte Carlo).
    n_jobs:
        Worker count for the evaluation batch; 1 (default) evaluates
        serially, more fans out to a chunked process pool (``evaluate``
        must then be a picklable module-level function).  The drawn
        design — and therefore ``samples`` — is bit-identical for a
        given ``rng`` seed regardless of executor or worker count.
    chunk_size / executor / cache / progress:
        Forwarded to :func:`repro.engine.evaluate_batch`; see there.

    Examples
    --------
    >>> from repro.distributions import Uniform
    >>> result = propagate_uncertainty(
    ...     lambda p: p["x"] ** 2, {"x": Uniform(0.0, 1.0)},
    ...     n_samples=4000, rng=np.random.default_rng(1))
    >>> abs(result.mean() - 1/3) < 0.01
    True
    """
    if n_samples < 2:
        raise ModelDefinitionError(f"n_samples must be >= 2, got {n_samples}")
    if not priors:
        raise ModelDefinitionError("at least one uncertain parameter is required")
    rng = rng if rng is not None else np.random.default_rng()
    draws = _draw_parameters(priors, n_samples, rng, method)
    names = list(priors)
    assignments = [
        {name: float(draws[name][k]) for name in names} for k in range(n_samples)
    ]
    batch = evaluate_batch(
        evaluate,
        assignments,
        n_jobs=n_jobs,
        chunk_size=chunk_size,
        executor=executor,
        cache=cache,
        progress=progress,
    )
    return UncertaintyResult(batch.outputs, draws, stats=batch.stats)


def tornado_sensitivity(
    evaluate: Evaluator,
    priors: Mapping[str, LifetimeDistribution],
    low_q: float = 0.05,
    high_q: float = 0.95,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    executor=None,
    cache: Optional[EvaluationCache] = None,
    progress=None,
) -> List[Tuple[str, float, float]]:
    """One-at-a-time tornado analysis.

    Each parameter is swung to its ``low_q`` / ``high_q`` quantile while
    the others sit at their medians; the output swing ranks which input
    uncertainties dominate the output uncertainty.

    The swing points are evaluated through the batch engine with a
    memoizing :class:`~repro.engine.EvaluationCache` (an ephemeral one
    when ``cache`` is not given), so coinciding assignments — e.g. a
    degenerate prior whose quantiles equal its median, or points shared
    with an earlier analysis through a caller-supplied ``cache`` — are
    solved once: ``k`` parameters cost at most ``2k`` evaluator calls.

    Returns
    -------
    List of ``(name, output_at_low, output_at_high)`` sorted by
    decreasing absolute swing.
    """
    if not priors:
        raise ModelDefinitionError("at least one uncertain parameter is required")
    medians = {name: float(prior.ppf(0.5)) for name, prior in priors.items()}
    names = list(priors)
    assignments: List[Dict[str, float]] = []
    for name, prior in priors.items():
        low_params = dict(medians)
        high_params = dict(medians)
        low_params[name] = float(prior.ppf(low_q))
        high_params[name] = float(prior.ppf(high_q))
        assignments.extend((low_params, high_params))
    batch = evaluate_batch(
        evaluate,
        assignments,
        n_jobs=n_jobs,
        chunk_size=chunk_size,
        executor=executor,
        cache=cache if cache is not None else EvaluationCache(),
        progress=progress,
    )
    rows = [
        (name, float(batch.outputs[2 * i]), float(batch.outputs[2 * i + 1]))
        for i, name in enumerate(names)
    ]
    rows.sort(key=lambda row: abs(row[2] - row[1]), reverse=True)
    return rows
