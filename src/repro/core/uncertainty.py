"""Parametric (epistemic) uncertainty propagation (system S17).

Model *inputs* — failure rates, coverage factors, repair times — are
never known exactly; they come from finite field data or expert judgment.
The tutorial's closing challenge is to propagate that input uncertainty
to the output measures.  This module implements the sampling-based
approach: draw parameter vectors from their epistemic distributions
(plain Monte Carlo or Latin hypercube), evaluate the model on each draw,
and summarize the output distribution (mean, quantiles, confidence
intervals, tornado ranking).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..distributions import LifetimeDistribution
from ..engine import (
    EngineOptions,
    EngineStats,
    EvaluationCache,
    evaluate_batch,
    resolve_options,
)
from ..exceptions import ModelDefinitionError

__all__ = ["UncertaintyResult", "propagate_uncertainty", "tornado_sensitivity"]

Evaluator = Callable[[Mapping[str, float]], float]


class UncertaintyResult:
    """Output distribution summary of an uncertainty propagation run.

    Attributes
    ----------
    samples:
        The raw output samples, in draw order.  Draws that failed under
        a ``"skip"`` / ``"retry"`` fault policy hold ``NaN``; the
        summary statistics below are computed over the finite samples
        only, so a handful of failed points degrades precision instead
        of poisoning the whole campaign.
    parameter_samples:
        The drawn parameter values, by name.
    stats:
        The engine's :class:`~repro.engine.EngineStats` for the run
        (``None`` when the result was built directly from samples).
    errors:
        Terminal :class:`~repro.robust.ErrorRecord` per failed draw
        (empty on a clean run).
    """

    def __init__(
        self,
        samples: np.ndarray,
        parameter_samples: Dict[str, np.ndarray],
        stats: Optional[EngineStats] = None,
        errors=None,
    ):
        self.samples = np.asarray(samples, dtype=float)
        self.parameter_samples = parameter_samples
        self.stats = stats
        self.errors = list(errors or [])

    @property
    def n_samples(self) -> int:
        """Number of model evaluations (failed draws included)."""
        return self.samples.size

    @property
    def valid_samples(self) -> np.ndarray:
        """The finite output samples (all of them on a clean run)."""
        return self.samples[np.isfinite(self.samples)]

    @property
    def n_failed(self) -> int:
        """Number of draws without a finite output."""
        return int(self.samples.size - self.valid_samples.size)

    def _finite(self) -> np.ndarray:
        valid = self.valid_samples
        if valid.size == 0:
            raise ModelDefinitionError(
                "no finite output samples: every evaluation in the batch failed"
            )
        return valid

    def mean(self) -> float:
        """Sample mean of the output (finite samples)."""
        return float(self._finite().mean())

    def std(self) -> float:
        """Sample standard deviation of the output (finite samples)."""
        valid = self._finite()
        return float(valid.std(ddof=1)) if valid.size > 1 else 0.0

    def percentile(self, q):
        """Output percentile(s) (``q`` in [0, 100]), over finite samples.

        Returns a plain ``float`` for scalar ``q`` and a
        :class:`numpy.ndarray` for a sequence of percentiles.
        """
        result = np.percentile(self._finite(), q)
        return float(result) if np.isscalar(q) else np.asarray(result)

    def interval(self, level: float = 0.95) -> Tuple[float, float]:
        """Central epistemic interval at the given level."""
        if not 0.0 < level < 1.0:
            raise ModelDefinitionError(f"level must be in (0, 1), got {level}")
        valid = self._finite()
        alpha = 100.0 * (1.0 - level) / 2.0
        return float(np.percentile(valid, alpha)), float(
            np.percentile(valid, 100.0 - alpha)
        )

    def mean_ci(self, level: float = 0.95) -> Tuple[float, float]:
        """Confidence interval for the *mean* (CLT); shrinks as 1/√n."""
        valid = self._finite()
        if valid.size < 2:
            raise ModelDefinitionError("need at least two samples for a CI")
        from scipy import stats

        half = stats.norm.ppf(0.5 + level / 2.0) * self.std() / math.sqrt(valid.size)
        mu = self.mean()
        return mu - half, mu + half


def _draw_parameters(
    priors: Mapping[str, LifetimeDistribution],
    n_samples: int,
    rng: np.random.Generator,
    method: str,
) -> Dict[str, np.ndarray]:
    draws: Dict[str, np.ndarray] = {}
    if method == "mc":
        for name, prior in priors.items():
            draws[name] = np.asarray(prior.sample(rng, size=n_samples), dtype=float)
    elif method == "lhs":
        for name, prior in priors.items():
            # One stratum per sample, uniformly placed within, then shuffled.
            strata = (np.arange(n_samples) + rng.uniform(size=n_samples)) / n_samples
            rng.shuffle(strata)
            draws[name] = np.asarray(prior.ppf(strata), dtype=float)
    else:
        raise ModelDefinitionError(f"unknown sampling method {method!r}; use 'mc' or 'lhs'")
    return draws


def propagate_uncertainty(
    evaluate: Evaluator,
    priors: Mapping[str, LifetimeDistribution],
    n_samples: int = 1000,
    rng: Optional[np.random.Generator] = None,
    method: str = "lhs",
    n_jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    executor=None,
    cache: Optional[EvaluationCache] = None,
    progress=None,
    policy=None,
    options: Optional[EngineOptions] = None,
    tracer=None,
    compile=None,
) -> UncertaintyResult:
    """Propagate parameter uncertainty through a model.

    Parameters
    ----------
    evaluate:
        Maps a concrete parameter assignment to the scalar output measure
        (e.g. ``lambda p: build_model(p).steady_state_availability()``).
    priors:
        Epistemic distribution of each parameter (any
        :class:`~repro.distributions.LifetimeDistribution`; lognormals
        around the point estimate are the practitioner default for rates).
    n_samples:
        Number of model evaluations.
    method:
        ``"lhs"`` (Latin hypercube, default — lower variance for the same
        budget) or ``"mc"`` (plain Monte Carlo).
    n_jobs:
        Worker count for the evaluation batch; 1 (default) evaluates
        serially, more fans out to a chunked process pool (``evaluate``
        must then be a picklable module-level function).  The drawn
        design — and therefore ``samples`` — is bit-identical for a
        given ``rng`` seed regardless of executor or worker count.
    chunk_size / executor / cache / progress:
        Forwarded to :func:`repro.engine.evaluate_batch`; see there.
    options / tracer:
        One bundled :class:`~repro.engine.EngineOptions` (loose keywords
        override its fields) and an optional
        :class:`~repro.obs.Tracer` activated for the whole propagation.
    compile:
        Compiled-evaluator substitution (see :mod:`repro.compile`).
        ``None`` auto-compiles evaluators that advertise a compiled
        form; ``False`` disables; ``True`` forces.  Bit-identical
        either way — the draws never see the difference.
    policy:
        Optional :class:`~repro.robust.FaultPolicy`.  With
        ``on_error="skip"`` or ``"retry"`` a failing draw becomes a
        ``NaN`` sample plus an :class:`~repro.robust.ErrorRecord` on the
        result instead of aborting the sweep; the summary statistics
        then use the finite samples only.

    Examples
    --------
    >>> from repro.distributions import Uniform
    >>> result = propagate_uncertainty(
    ...     lambda p: p["x"] ** 2, {"x": Uniform(0.0, 1.0)},
    ...     n_samples=4000, rng=np.random.default_rng(1))
    >>> abs(result.mean() - 1/3) < 0.01
    True
    """
    if n_samples < 2:
        raise ModelDefinitionError(f"n_samples must be >= 2, got {n_samples}")
    if not priors:
        raise ModelDefinitionError("at least one uncertain parameter is required")
    rng = rng if rng is not None else np.random.default_rng()
    draws = _draw_parameters(priors, n_samples, rng, method)
    names = list(priors)
    assignments = [
        {name: float(draws[name][k]) for name in names} for k in range(n_samples)
    ]
    opts = resolve_options(
        options,
        n_jobs=n_jobs,
        chunk_size=chunk_size,
        executor=executor,
        cache=cache,
        progress=progress,
        policy=policy,
        tracer=tracer,
        compile=compile,
    )
    batch = evaluate_batch(evaluate, assignments, options=opts)
    return UncertaintyResult(batch.outputs, draws, stats=batch.stats, errors=batch.errors)


def tornado_sensitivity(
    evaluate: Evaluator,
    priors: Mapping[str, LifetimeDistribution],
    low_q: float = 0.05,
    high_q: float = 0.95,
    n_jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    executor=None,
    cache: Optional[EvaluationCache] = None,
    progress=None,
    policy=None,
    options: Optional[EngineOptions] = None,
    tracer=None,
    compile=None,
) -> List[Tuple[str, float, float]]:
    """One-at-a-time tornado analysis.

    Each parameter is swung to its ``low_q`` / ``high_q`` quantile while
    the others sit at their medians; the output swing ranks which input
    uncertainties dominate the output uncertainty.

    The swing points are evaluated through the batch engine with a
    memoizing :class:`~repro.engine.EvaluationCache` (an ephemeral one
    when ``cache`` is not given), so coinciding assignments — e.g. a
    degenerate prior whose quantiles equal its median, or points shared
    with an earlier analysis through a caller-supplied ``cache`` — are
    solved once: ``k`` parameters cost at most ``2k`` evaluator calls.

    Returns
    -------
    List of ``(name, output_at_low, output_at_high)`` sorted by
    decreasing absolute swing.  Under a ``"skip"`` / ``"retry"``
    ``policy``, swing points that failed surface as ``NaN`` entries and
    their rows rank last.
    """
    if not priors:
        raise ModelDefinitionError("at least one uncertain parameter is required")
    medians = {name: float(prior.ppf(0.5)) for name, prior in priors.items()}
    names = list(priors)
    assignments: List[Dict[str, float]] = []
    for name, prior in priors.items():
        low_params = dict(medians)
        high_params = dict(medians)
        low_params[name] = float(prior.ppf(low_q))
        high_params[name] = float(prior.ppf(high_q))
        assignments.extend((low_params, high_params))
    opts = resolve_options(
        options,
        n_jobs=n_jobs,
        chunk_size=chunk_size,
        executor=executor,
        cache=cache,
        progress=progress,
        policy=policy,
        tracer=tracer,
        compile=compile,
    )
    if opts.cache is None:
        opts = opts.replace(cache=EvaluationCache())
    batch = evaluate_batch(evaluate, assignments, options=opts)
    rows = [
        (name, float(batch.outputs[2 * i]), float(batch.outputs[2 * i + 1]))
        for i, name in enumerate(names)
    ]

    def swing(row: Tuple[str, float, float]) -> float:
        delta = abs(row[2] - row[1])
        return delta if math.isfinite(delta) else -math.inf  # failed rows rank last

    rows.sort(key=swing, reverse=True)
    return rows
