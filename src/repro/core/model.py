"""The unifying model protocol.

The tutorial's central engineering lesson is that one analysis interface
should span *all* model types — non-state-space (RBD, fault tree,
reliability graph), state-space (CTMC, SMP, MRGP, SRN) and hierarchical
compositions of them.  :class:`DependabilityModel` is that interface:
anything that can report reliability/availability measures implements it,
which is what lets :mod:`repro.core.hierarchy` glue heterogeneous
submodels together.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np
from scipy import integrate

from ..exceptions import SolverError

__all__ = ["DependabilityModel", "mttf_from_reliability"]

#: One year expressed in hours; used for downtime-per-year style measures.
HOURS_PER_YEAR = 8760.0
MINUTES_PER_YEAR = HOURS_PER_YEAR * 60.0


def mttf_from_reliability(reliability, upper: Optional[float] = None) -> float:
    """Compute ``MTTF = ∫_0^∞ R(t) dt`` by adaptive quadrature.

    Parameters
    ----------
    reliability:
        Callable mapping a scalar time to the system reliability.
    upper:
        Optional finite truncation point.  When omitted the improper
        integral is evaluated directly.
    """
    if upper is None:
        value, _ = integrate.quad(lambda t: float(reliability(t)), 0.0, np.inf, limit=200)
    else:
        value, _ = integrate.quad(lambda t: float(reliability(t)), 0.0, float(upper), limit=200)
    if not math.isfinite(value) or value < 0:
        raise SolverError(f"MTTF integration produced an invalid value: {value!r}")
    return value


class DependabilityModel(abc.ABC):
    """Common interface for every reliability/availability model.

    Subclasses implement whichever measures make sense for their model
    class and leave the rest raising :class:`NotImplementedError` (the
    default).  The hierarchy engine introspects capabilities via
    duck-typing: it simply calls the measure it needs.
    """

    # -- reliability (no repair) ------------------------------------------
    def reliability(self, t):
        """System reliability ``R(t)``: probability of no failure in [0, t]."""
        raise NotImplementedError(f"{type(self).__name__} does not define reliability(t)")

    def unreliability(self, t):
        """``F(t) = 1 - R(t)``."""
        return 1.0 - np.asarray(self.reliability(t))

    def mttf(self) -> float:
        """Mean time to (system) failure, ``∫ R(t) dt`` by default."""
        return mttf_from_reliability(lambda t: float(np.asarray(self.reliability(t))))

    # -- availability (with repair) ---------------------------------------
    def availability(self, t):
        """Instantaneous (point) availability ``A(t)``."""
        raise NotImplementedError(f"{type(self).__name__} does not define availability(t)")

    def steady_state_availability(self) -> float:
        """Long-run fraction of time the system is up."""
        raise NotImplementedError(
            f"{type(self).__name__} does not define steady_state_availability()"
        )

    def steady_state_unavailability(self) -> float:
        """``1 - steady_state_availability()``."""
        return 1.0 - self.steady_state_availability()

    def interval_availability(self, t) -> float:
        """Expected fraction of ``[0, t]`` spent up: ``(1/t) ∫_0^t A(u) du``.

        Default implementation integrates :meth:`availability` numerically.
        """
        t = float(t)
        if t <= 0:
            raise SolverError("interval availability requires t > 0")
        value, _ = integrate.quad(lambda u: float(np.asarray(self.availability(u))), 0.0, t, limit=200)
        return value / t

    # -- derived practitioner measures -------------------------------------
    def downtime_minutes_per_year(self) -> float:
        """Expected annual downtime in minutes — the telecom industry yardstick."""
        return self.steady_state_unavailability() * MINUTES_PER_YEAR

    def nines(self) -> float:
        """Number of nines of availability: ``-log10(1 - A)``."""
        unavail = self.steady_state_unavailability()
        if unavail <= 0.0:
            return math.inf
        return -math.log10(unavail)
