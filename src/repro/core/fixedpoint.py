"""Fixed-point iteration (system S16 in DESIGN.md).

Cyclic model dependencies — the standard example is a set of subsystems
sharing a repair facility, where each submodel needs the others' repair
demand — are solved by iterating the import values to a fixed point.
Empirically (and provably, for the contraction mappings availability
models usually induce) the iteration converges geometrically; benchmark
E16 measures the rate and the effect of damping.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping

from ..exceptions import ConvergenceError, HierarchyError

__all__ = ["FixedPointResult", "FixedPointSolver"]

UpdateFunction = Callable[[Mapping[str, float]], Mapping[str, float]]


class FixedPointResult:
    """Outcome of a fixed-point solve.

    Attributes
    ----------
    values:
        The converged variable assignment.
    iterations:
        Number of update applications performed.
    residuals:
        Max-norm change after each iteration (length == iterations) —
        plotting this shows the geometric convergence rate.
    converged:
        True when the tolerance was met within the budget.
    """

    def __init__(
        self,
        values: Dict[str, float],
        iterations: int,
        residuals: List[float],
        converged: bool,
    ):
        self.values = values
        self.iterations = iterations
        self.residuals = residuals
        self.converged = converged

    def convergence_rate(self) -> float:
        """Estimated geometric rate (ratio of successive residuals).

        Returns ``nan`` when fewer than three residuals are available.
        """
        usable = [r for r in self.residuals if r > 0.0]
        if len(usable) < 3:
            return float("nan")
        ratios = [usable[i + 1] / usable[i] for i in range(len(usable) - 1)]
        return sum(ratios[-3:]) / len(ratios[-3:])


class FixedPointSolver:
    """Iterate ``x <- f(x)`` (optionally damped) to a fixed point.

    Parameters
    ----------
    update:
        The map ``f``: takes and returns mappings with identical keys.
    initial:
        Starting assignment.
    tol:
        Convergence threshold on the max-norm change per iteration.
    max_iterations:
        Iteration budget; exceeding it raises
        :class:`~repro.exceptions.ConvergenceError` unless
        ``raise_on_failure=False``.
    damping:
        ``x_next = (1 - damping) * f(x) + damping * x``; zero (default)
        is plain iteration, values toward 1 stabilize oscillating maps.

    Examples
    --------
    >>> solver = FixedPointSolver(lambda x: {"v": 0.5 * x["v"] + 1.0}, {"v": 0.0})
    >>> result = solver.solve()
    >>> round(result.values["v"], 9)
    2.0
    """

    def __init__(
        self,
        update: UpdateFunction,
        initial: Mapping[str, float],
        tol: float = 1e-10,
        max_iterations: int = 200,
        damping: float = 0.0,
        raise_on_failure: bool = True,
    ):
        if not initial:
            raise HierarchyError("fixed-point solve needs at least one variable")
        if not 0.0 <= damping < 1.0:
            raise HierarchyError(f"damping must be in [0, 1), got {damping}")
        if tol <= 0.0:
            raise HierarchyError(f"tol must be positive, got {tol}")
        if max_iterations < 1:
            raise HierarchyError(f"max_iterations must be >= 1, got {max_iterations}")
        self.update = update
        self.initial = dict(initial)
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.damping = float(damping)
        self.raise_on_failure = bool(raise_on_failure)

    def solve(self) -> FixedPointResult:
        """Run the iteration to convergence (or budget exhaustion)."""
        current = dict(self.initial)
        keys = set(current)
        residuals: List[float] = []
        for iteration in range(1, self.max_iterations + 1):
            raw = dict(self.update(current))
            if set(raw) != keys:
                missing = keys - set(raw)
                extra = set(raw) - keys
                raise HierarchyError(
                    f"update function changed the variable set "
                    f"(missing: {sorted(missing)}, extra: {sorted(extra)})"
                )
            if self.damping > 0.0:
                new = {
                    k: (1.0 - self.damping) * raw[k] + self.damping * current[k]
                    for k in keys
                }
            else:
                new = raw
            residual = max(abs(new[k] - current[k]) for k in keys)
            residuals.append(residual)
            current = new
            if residual < self.tol:
                return FixedPointResult(current, iteration, residuals, converged=True)
        if self.raise_on_failure:
            raise ConvergenceError(
                f"fixed point not reached in {self.max_iterations} iterations "
                f"(last residual {residuals[-1]:.3e})",
                iterations=self.max_iterations,
                residual=residuals[-1],
            )
        return FixedPointResult(current, self.max_iterations, residuals, converged=False)
