"""Parametric sensitivity analysis (system S18 in DESIGN.md).

Where :mod:`repro.core.uncertainty` treats parameters as random,
sensitivity analysis asks the deterministic question: *how fast does the
output move per unit change of each input?*  Derivatives of steady-state
availability with respect to failure/repair rates identify the
bottleneck parameters — the state-space counterpart of the Birnbaum
importance measure (benchmark E23 compares the two rankings).

The implementation is numeric central differencing on a user-supplied
``params → output`` evaluator, which works uniformly across every model
class in the library.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, NamedTuple, Optional

from ..engine import EngineOptions, EvaluationCache, evaluate_batch, resolve_options
from ..exceptions import ModelDefinitionError

__all__ = ["SensitivityRow", "parametric_sensitivity", "rank_parameters"]

Evaluator = Callable[[Mapping[str, float]], float]


class SensitivityRow(NamedTuple):
    """Sensitivity results for one parameter."""

    name: str
    #: ∂output / ∂parameter (central difference)
    derivative: float
    #: scaled (log-log) sensitivity: (param / output) * derivative
    elasticity: float


def parametric_sensitivity(
    evaluate: Evaluator,
    params: Mapping[str, float],
    rel_step: float = 1e-4,
    n_jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    executor=None,
    cache: Optional[EvaluationCache] = None,
    progress=None,
    policy=None,
    options: Optional[EngineOptions] = None,
    tracer=None,
) -> Dict[str, SensitivityRow]:
    """Central-difference sensitivities of ``evaluate`` at ``params``.

    Parameters
    ----------
    evaluate:
        Maps a parameter assignment to the scalar output.
    params:
        The nominal point.
    rel_step:
        Relative step ``h = rel_step * |value|`` (absolute ``rel_step``
        for zero-valued parameters).
    n_jobs:
        Worker count; the nominal point and the ``2k`` perturbed points
        form one batch, fanned out through
        :func:`repro.engine.evaluate_batch` when ``n_jobs > 1``.
    chunk_size / executor / cache / progress:
        Forwarded to :func:`repro.engine.evaluate_batch`.  All points
        are routed through a memoizing
        :class:`~repro.engine.EvaluationCache` (an ephemeral one when
        ``cache`` is not given), so sharing a cache with an earlier
        analysis at the same nominal point skips the repeated solves.
    options / tracer:
        One bundled :class:`~repro.engine.EngineOptions` (loose keywords
        override its fields) and an optional
        :class:`~repro.obs.Tracer` activated for the batch.
    policy:
        Optional :class:`~repro.robust.FaultPolicy`; failed perturbed
        points yield ``NaN`` derivatives for the affected parameters
        instead of aborting the whole analysis (``rank_parameters``
        already sorts NaN rows last).

    Returns
    -------
    Mapping parameter name → :class:`SensitivityRow` with the raw
    derivative and the dimensionless elasticity
    ``(param / output) ∂output/∂param``.

    Examples
    --------
    >>> rows = parametric_sensitivity(lambda p: p["a"] * 10 + p["b"], {"a": 1.0, "b": 2.0})
    >>> round(rows["a"].derivative, 6)
    10.0
    """
    if not params:
        raise ModelDefinitionError("at least one parameter is required")
    if rel_step <= 0:
        raise ModelDefinitionError(f"rel_step must be positive, got {rel_step}")
    names = list(params)
    steps: Dict[str, float] = {}
    assignments: List[Dict[str, float]] = [dict(params)]
    for name in names:
        value = float(params[name])
        h = rel_step * abs(value) if value != 0.0 else rel_step
        steps[name] = h
        up = dict(params)
        down = dict(params)
        up[name] = value + h
        down[name] = value - h
        assignments.extend((up, down))
    opts = resolve_options(
        options,
        n_jobs=n_jobs,
        chunk_size=chunk_size,
        executor=executor,
        cache=cache,
        progress=progress,
        policy=policy,
        tracer=tracer,
    )
    if opts.cache is None:
        opts = opts.replace(cache=EvaluationCache())
    batch = evaluate_batch(evaluate, assignments, options=opts)
    base_output = float(batch.outputs[0])
    rows: Dict[str, SensitivityRow] = {}
    for i, name in enumerate(names):
        value = float(params[name])
        h = steps[name]
        up_out = float(batch.outputs[1 + 2 * i])
        down_out = float(batch.outputs[2 + 2 * i])
        derivative = (up_out - down_out) / (2.0 * h)
        if base_output != 0.0 and value != 0.0:
            elasticity = derivative * value / base_output
        else:
            elasticity = float("nan")
        rows[name] = SensitivityRow(name, derivative, elasticity)
    return rows


def rank_parameters(
    evaluate: Evaluator,
    params: Mapping[str, float],
    rel_step: float = 1e-4,
    by: str = "elasticity",
    **engine_kwargs,
) -> List[SensitivityRow]:
    """Sensitivity rows sorted by decreasing absolute impact.

    ``by`` selects the ranking key: ``"elasticity"`` (default,
    scale-free — the right choice when rates span orders of magnitude) or
    ``"derivative"``.  Extra keyword arguments (``n_jobs``, ``cache``,
    ``progress``, ...) are forwarded to
    :func:`parametric_sensitivity`.
    """
    if by not in ("elasticity", "derivative"):
        raise ModelDefinitionError(f"unknown ranking key {by!r}")
    rows = parametric_sensitivity(evaluate, params, rel_step, **engine_kwargs)
    key = (lambda r: abs(r.elasticity)) if by == "elasticity" else (lambda r: abs(r.derivative))

    def sort_key(row: SensitivityRow) -> float:
        value = key(row)
        return -1.0 if value != value else value  # NaNs sort last

    return sorted(rows.values(), key=sort_key, reverse=True)
