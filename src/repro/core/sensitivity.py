"""Parametric sensitivity analysis (system S18 in DESIGN.md).

Where :mod:`repro.core.uncertainty` treats parameters as random,
sensitivity analysis asks the deterministic question: *how fast does the
output move per unit change of each input?*  Derivatives of steady-state
availability with respect to failure/repair rates identify the
bottleneck parameters — the state-space counterpart of the Birnbaum
importance measure (benchmark E23 compares the two rankings).

The implementation is numeric central differencing on a user-supplied
``params → output`` evaluator, which works uniformly across every model
class in the library.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, NamedTuple, Tuple

from ..exceptions import ModelDefinitionError

__all__ = ["SensitivityRow", "parametric_sensitivity", "rank_parameters"]

Evaluator = Callable[[Mapping[str, float]], float]


class SensitivityRow(NamedTuple):
    """Sensitivity results for one parameter."""

    name: str
    #: ∂output / ∂parameter (central difference)
    derivative: float
    #: scaled (log-log) sensitivity: (param / output) * derivative
    elasticity: float


def parametric_sensitivity(
    evaluate: Evaluator,
    params: Mapping[str, float],
    rel_step: float = 1e-4,
) -> Dict[str, SensitivityRow]:
    """Central-difference sensitivities of ``evaluate`` at ``params``.

    Parameters
    ----------
    evaluate:
        Maps a parameter assignment to the scalar output.
    params:
        The nominal point.
    rel_step:
        Relative step ``h = rel_step * |value|`` (absolute ``rel_step``
        for zero-valued parameters).

    Returns
    -------
    Mapping parameter name → :class:`SensitivityRow` with the raw
    derivative and the dimensionless elasticity
    ``(param / output) ∂output/∂param``.

    Examples
    --------
    >>> rows = parametric_sensitivity(lambda p: p["a"] * 10 + p["b"], {"a": 1.0, "b": 2.0})
    >>> round(rows["a"].derivative, 6)
    10.0
    """
    if not params:
        raise ModelDefinitionError("at least one parameter is required")
    if rel_step <= 0:
        raise ModelDefinitionError(f"rel_step must be positive, got {rel_step}")
    base_output = float(evaluate(params))
    rows: Dict[str, SensitivityRow] = {}
    for name, value in params.items():
        value = float(value)
        h = rel_step * abs(value) if value != 0.0 else rel_step
        up = dict(params)
        down = dict(params)
        up[name] = value + h
        down[name] = value - h
        derivative = (float(evaluate(up)) - float(evaluate(down))) / (2.0 * h)
        if base_output != 0.0 and value != 0.0:
            elasticity = derivative * value / base_output
        else:
            elasticity = float("nan")
        rows[name] = SensitivityRow(name, derivative, elasticity)
    return rows


def rank_parameters(
    evaluate: Evaluator,
    params: Mapping[str, float],
    rel_step: float = 1e-4,
    by: str = "elasticity",
) -> List[SensitivityRow]:
    """Sensitivity rows sorted by decreasing absolute impact.

    ``by`` selects the ranking key: ``"elasticity"`` (default,
    scale-free — the right choice when rates span orders of magnitude) or
    ``"derivative"``.
    """
    if by not in ("elasticity", "derivative"):
        raise ModelDefinitionError(f"unknown ranking key {by!r}")
    rows = parametric_sensitivity(evaluate, params, rel_step)
    key = (lambda r: abs(r.elasticity)) if by == "elasticity" else (lambda r: abs(r.derivative))

    def sort_key(row: SensitivityRow) -> float:
        value = key(row)
        return -1.0 if value != value else value  # NaNs sort last

    return sorted(rows.values(), key=sort_key, reverse=True)
