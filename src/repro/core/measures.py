"""Practitioner-facing dependability measures and budget helpers.

The small arithmetic every availability review needs: nines ↔ downtime
conversions, defects-per-million, downtime budget allocation across
subsystems of a series system, and the SLO check "does this model meet
N nines?".
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, NamedTuple, Tuple

from ..exceptions import ModelDefinitionError

__all__ = [
    "MINUTES_PER_YEAR",
    "availability_from_nines",
    "nines_from_availability",
    "downtime_minutes_per_year",
    "availability_from_downtime",
    "defects_per_million",
    "series_availability_budget",
    "meets_slo",
]

MINUTES_PER_YEAR = 525_600.0


def availability_from_nines(nines: float) -> float:
    """``A = 1 - 10^(-nines)`` — e.g. 3 nines → 0.999."""
    if nines < 0:
        raise ModelDefinitionError(f"nines must be >= 0, got {nines}")
    return 1.0 - 10.0 ** (-nines)


def nines_from_availability(availability: float) -> float:
    """``-log10(1 - A)``; ``inf`` for perfect availability."""
    if not 0.0 <= availability <= 1.0:
        raise ModelDefinitionError(f"availability must be in [0, 1], got {availability}")
    if availability == 1.0:
        return math.inf
    return -math.log10(1.0 - availability)


def downtime_minutes_per_year(availability: float) -> float:
    """Annualized downtime implied by a steady-state availability."""
    if not 0.0 <= availability <= 1.0:
        raise ModelDefinitionError(f"availability must be in [0, 1], got {availability}")
    return (1.0 - availability) * MINUTES_PER_YEAR


def availability_from_downtime(minutes_per_year: float) -> float:
    """Inverse of :func:`downtime_minutes_per_year`."""
    if not 0.0 <= minutes_per_year <= MINUTES_PER_YEAR:
        raise ModelDefinitionError(
            f"minutes_per_year must be in [0, {MINUTES_PER_YEAR}], got {minutes_per_year}"
        )
    return 1.0 - minutes_per_year / MINUTES_PER_YEAR


def defects_per_million(availability: float) -> float:
    """Telecom DPM: ``(1 - A) × 10^6``."""
    if not 0.0 <= availability <= 1.0:
        raise ModelDefinitionError(f"availability must be in [0, 1], got {availability}")
    return (1.0 - availability) * 1.0e6


class BudgetRow(NamedTuple):
    """One subsystem's share of a series-system downtime budget."""

    name: str
    availability: float
    downtime_minutes: float
    share: float


def series_availability_budget(
    subsystem_availabilities: Mapping[str, float]
) -> Tuple[float, Dict[str, BudgetRow]]:
    """Downtime budget of a series system.

    Returns the composed availability and, per subsystem, its downtime
    and its *share* of total system downtime (shares computed from the
    log-availability decomposition, which is exact for a series system:
    ``ln A_sys = Σ ln A_i``).

    Examples
    --------
    >>> total, rows = series_availability_budget({"db": 0.999, "web": 0.9999})
    >>> round(total, 7)
    0.9989001
    >>> rows["db"].share > rows["web"].share
    True
    """
    if not subsystem_availabilities:
        raise ModelDefinitionError("at least one subsystem is required")
    logs: Dict[str, float] = {}
    total_availability = 1.0
    for name, avail in subsystem_availabilities.items():
        if not 0.0 < avail <= 1.0:
            raise ModelDefinitionError(
                f"availability of {name!r} must be in (0, 1], got {avail}"
            )
        total_availability *= avail
        logs[name] = -math.log(avail)
    total_log = sum(logs.values())
    rows: Dict[str, BudgetRow] = {}
    for name, avail in subsystem_availabilities.items():
        share = logs[name] / total_log if total_log > 0 else 0.0
        rows[name] = BudgetRow(
            name=name,
            availability=avail,
            downtime_minutes=downtime_minutes_per_year(avail),
            share=share,
        )
    return total_availability, rows


def meets_slo(availability: float, target_nines: float) -> bool:
    """True when the availability achieves at least ``target_nines``.

    A tiny tolerance absorbs floating-point noise so that exactly-on-target
    availabilities (0.999 vs 3 nines) pass.
    """
    return nines_from_availability(availability) >= target_nines - 1e-9
