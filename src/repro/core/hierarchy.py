"""Hierarchical model composition (system S15 in DESIGN.md).

The tutorial's scalability answer: instead of one monolithic state space,
build an *import graph* of submodels.  Lower-level models (CTMCs, SRNs)
capture local dependencies exactly and export scalar results — a
steady-state availability, an MTTF, an equivalent failure rate — which
upper-level models (typically RBDs or fault trees over independent
subsystems) import as parameters.  The IBM SIP/WebSphere and BladeCenter
availability models are built exactly this way.

When the import graph is acyclic the composition solves in one
topological pass; cyclic graphs (mutual dependencies such as shared
repair approximations) are delegated to
:class:`~repro.core.fixedpoint.FixedPointSolver`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

import networkx as nx

from ..exceptions import HierarchyError
from .fixedpoint import FixedPointResult, FixedPointSolver
from .model import DependabilityModel

__all__ = [
    "Submodel",
    "HierarchicalModel",
    "HierarchySolution",
    "export_availability",
    "export_unavailability",
    "export_mttf",
    "export_equivalent_failure_rate",
]

Builder = Callable[[Mapping[str, float]], DependabilityModel]
Export = Callable[[DependabilityModel], float]


def export_availability(model: DependabilityModel) -> float:
    """Standard export: steady-state availability."""
    return model.steady_state_availability()


def export_unavailability(model: DependabilityModel) -> float:
    """Standard export: steady-state unavailability."""
    return model.steady_state_unavailability()


def export_mttf(model: DependabilityModel) -> float:
    """Standard export: mean time to failure."""
    return model.mttf()


def export_equivalent_failure_rate(model: DependabilityModel) -> float:
    """Standard export: ``1 / MTTF`` — the exponential surrogate rate an
    upper-level model can assign to this subsystem."""
    return 1.0 / model.mttf()


class Submodel:
    """One node of the import graph.

    Parameters
    ----------
    name:
        Unique submodel name.
    build:
        Callable receiving the resolved import parameters and returning
        the concrete :class:`~repro.core.model.DependabilityModel`.
    exports:
        Mapping of export name → function extracting a scalar from the
        built model.
    imports:
        Mapping of builder parameter name → ``(submodel, export)`` pair
        naming where the value comes from.
    """

    def __init__(
        self,
        name: str,
        build: Builder,
        exports: Optional[Mapping[str, Export]] = None,
        imports: Optional[Mapping[str, Tuple[str, str]]] = None,
    ):
        self.name = str(name)
        self.build = build
        self.exports: Dict[str, Export] = dict(exports or {})
        self.imports: Dict[str, Tuple[str, str]] = dict(imports or {})


class HierarchySolution:
    """Resolved hierarchy: built models and every export value.

    Attributes
    ----------
    models:
        Mapping submodel name → built model.
    values:
        Mapping ``(submodel, export)`` → value.
    iterations:
        1 for acyclic graphs; the fixed-point iteration count otherwise.
    """

    def __init__(
        self,
        models: Dict[str, DependabilityModel],
        values: Dict[Tuple[str, str], float],
        iterations: int,
    ):
        self.models = models
        self.values = values
        self.iterations = iterations

    def value(self, submodel: str, export: str) -> float:
        """Export value of one submodel."""
        try:
            return self.values[(submodel, export)]
        except KeyError:
            raise HierarchyError(f"no export {export!r} on submodel {submodel!r}") from None

    def model(self, submodel: str) -> DependabilityModel:
        """The built model instance of one submodel."""
        try:
            return self.models[submodel]
        except KeyError:
            raise HierarchyError(f"unknown submodel {submodel!r}") from None


class HierarchicalModel:
    """A composition of submodels linked by parameter imports.

    Examples
    --------
    A CTMC leaf exporting availability into an RBD top level::

        hierarchy = HierarchicalModel()
        hierarchy.add_submodel(Submodel(
            "disk_pair", build_disk_ctmc,
            exports={"avail": export_availability}))
        hierarchy.add_submodel(Submodel(
            "system", build_system_rbd,
            imports={"disk_availability": ("disk_pair", "avail")}))
        solution = hierarchy.solve()
        solution.model("system").steady_state_availability()
    """

    def __init__(self):
        self._submodels: Dict[str, Submodel] = {}

    def add_submodel(self, submodel: Submodel) -> "HierarchicalModel":
        """Register a submodel (names must be unique)."""
        if submodel.name in self._submodels:
            raise HierarchyError(f"duplicate submodel name: {submodel.name!r}")
        self._submodels[submodel.name] = submodel
        return self

    # ----------------------------------------------------------- structure
    def _import_graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        for name in self._submodels:
            graph.add_node(name)
        for name, sub in self._submodels.items():
            for param, (source, export) in sub.imports.items():
                if source not in self._submodels:
                    raise HierarchyError(
                        f"submodel {name!r} imports from unknown submodel {source!r}"
                    )
                if export not in self._submodels[source].exports:
                    raise HierarchyError(
                        f"submodel {name!r} imports unknown export "
                        f"{export!r} of {source!r}"
                    )
                graph.add_edge(source, name, param=param)
        return graph

    def is_acyclic(self) -> bool:
        """True when the import graph has no cycles."""
        return nx.is_directed_acyclic_graph(self._import_graph())

    # -------------------------------------------------------------- solve
    def solve(
        self,
        initial_guesses: Optional[Mapping[Tuple[str, str], float]] = None,
        tol: float = 1e-10,
        max_iterations: int = 200,
        damping: float = 0.0,
    ) -> HierarchySolution:
        """Resolve the hierarchy.

        Acyclic import graphs are solved in one topological pass.  Cyclic
        graphs are solved by fixed-point iteration over the export values
        on the cycles; ``initial_guesses`` seeds those values (default
        0.999 for each, a sensible availability-like prior).

        Parameters
        ----------
        tol, max_iterations, damping:
            Passed to :class:`~repro.core.fixedpoint.FixedPointSolver`
            when the graph is cyclic.
        """
        graph = self._import_graph()
        if nx.is_directed_acyclic_graph(graph):
            return self._solve_acyclic(graph)
        return self._solve_cyclic(graph, initial_guesses, tol, max_iterations, damping)

    def _build_one(
        self, name: str, values: Dict[Tuple[str, str], float]
    ) -> Tuple[DependabilityModel, Dict[Tuple[str, str], float]]:
        sub = self._submodels[name]
        params = {
            param: values[(source, export)]
            for param, (source, export) in sub.imports.items()
        }
        model = sub.build(params)
        exports = {
            (name, export_name): float(extract(model))
            for export_name, extract in sub.exports.items()
        }
        return model, exports

    def _solve_acyclic(self, graph: nx.DiGraph) -> HierarchySolution:
        values: Dict[Tuple[str, str], float] = {}
        models: Dict[str, DependabilityModel] = {}
        for name in nx.topological_sort(graph):
            model, exports = self._build_one(name, values)
            models[name] = model
            values.update(exports)
        return HierarchySolution(models, values, iterations=1)

    def _solve_cyclic(
        self,
        graph: nx.DiGraph,
        initial_guesses: Optional[Mapping[Tuple[str, str], float]],
        tol: float,
        max_iterations: int,
        damping: float,
    ) -> HierarchySolution:
        export_keys: List[Tuple[str, str]] = [
            (name, export)
            for name, sub in self._submodels.items()
            for export in sub.exports
        ]
        start = {
            f"{name}.{export}": (
                float(initial_guesses[(name, export)])
                if initial_guesses and (name, export) in initial_guesses
                else 0.999
            )
            for name, export in export_keys
        }

        def update(current: Mapping[str, float]) -> Dict[str, float]:
            values = {
                (name, export): current[f"{name}.{export}"] for name, export in export_keys
            }
            new_values: Dict[str, float] = {}
            for name in self._submodels:
                _model, exports = self._build_one(name, values)
                for (sub_name, export_name), value in exports.items():
                    new_values[f"{sub_name}.{export_name}"] = value
            return new_values

        solver = FixedPointSolver(
            update, start, tol=tol, max_iterations=max_iterations, damping=damping
        )
        result: FixedPointResult = solver.solve()

        values = {
            (name, export): result.values[f"{name}.{export}"] for name, export in export_keys
        }
        models: Dict[str, DependabilityModel] = {}
        for name in self._submodels:
            model, exports = self._build_one(name, values)
            models[name] = model
            values.update(exports)
        return HierarchySolution(models, values, iterations=result.iterations)
