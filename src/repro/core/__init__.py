"""Core modeling framework (systems S15–S18 in DESIGN.md): the model
protocol, hierarchical composition, fixed-point iteration, uncertainty
propagation and sensitivity analysis."""

from .fixedpoint import FixedPointResult, FixedPointSolver
from .hierarchy import (
    HierarchicalModel,
    HierarchySolution,
    Submodel,
    export_availability,
    export_equivalent_failure_rate,
    export_mttf,
    export_unavailability,
)
from .measures import (
    availability_from_downtime,
    availability_from_nines,
    defects_per_million,
    downtime_minutes_per_year,
    meets_slo,
    nines_from_availability,
    series_availability_budget,
)
from .model import DependabilityModel, mttf_from_reliability
from .sensitivity import SensitivityRow, parametric_sensitivity, rank_parameters
from .uncertainty import UncertaintyResult, propagate_uncertainty, tornado_sensitivity

__all__ = [
    "DependabilityModel",
    "mttf_from_reliability",
    "availability_from_nines",
    "nines_from_availability",
    "downtime_minutes_per_year",
    "availability_from_downtime",
    "defects_per_million",
    "series_availability_budget",
    "meets_slo",
    "HierarchicalModel",
    "HierarchySolution",
    "Submodel",
    "export_availability",
    "export_unavailability",
    "export_mttf",
    "export_equivalent_failure_rate",
    "FixedPointSolver",
    "FixedPointResult",
    "UncertaintyResult",
    "propagate_uncertainty",
    "tornado_sensitivity",
    "SensitivityRow",
    "parametric_sensitivity",
    "rank_parameters",
]
