"""Analyzer passes for compiled models (:mod:`repro.compile`).

:func:`validate_terms` is the shared strict walk —
:meth:`CompiledCTMC.validate` delegates to it, so the raise-mode contract
(a ``KeyError`` for a missing parameter, the ``check_rate``
:class:`~repro.exceptions.DistributionError` for a bad value, in slot
order) cannot drift between the fill path and the lint.  The collect-mode
functions translate those same failures into C001/C002 diagnostics, and
— when a full parameter point is supplied — lint the filled generator
with the Markov passes.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple

from .._validation import check_rate
from ..exceptions import DistributionError
from .diagnostics import Diagnostic

__all__ = [
    "validate_terms",
    "term_parameters",
    "lint_compiled_ctmc",
    "lint_compiled_evaluator",
]


def validate_terms(slot_terms, values: Mapping[str, float]) -> None:
    """Strict per-term rate check, shared with :meth:`CompiledCTMC.validate`.

    Raises exactly what :meth:`CompiledCTMC.fill` would raise, in the
    same order: ``KeyError`` when a term reads an unsupplied parameter,
    :class:`~repro.exceptions.DistributionError` when a rate is not
    positive and finite.
    """
    for _, _, terms in slot_terms:
        for term in terms:
            check_rate(term(values))


def term_parameters(term) -> Tuple[str, ...]:
    """Parameter names one rate term reads, in first-use order."""
    from ..compile.ctmc import Complement, Param, Scaled, Times

    names: dict = {}

    def walk(t) -> None:
        if isinstance(t, (Param, Scaled)):
            names.setdefault(t.name)
        elif isinstance(t, Times):
            walk(t.left)
            walk(t.right)
        elif isinstance(t, Complement):
            walk(t.term)

    walk(term)
    return tuple(names)


def lint_compiled_ctmc(
    compiled,
    values: Optional[Mapping[str, float]] = None,
    query: Optional[str] = None,
) -> List[Diagnostic]:
    """Lint a :class:`~repro.compile.CompiledCTMC`.

    Without ``values`` only the structure is known, so nothing can fail —
    the interesting checks need a parameter point: C001 for rate terms
    reading unsupplied parameters, C002 for terms evaluating to invalid
    rates, and (when every slot fills cleanly) the full Markov lint of
    the filled generator.
    """
    diagnostics: List[Diagnostic] = []
    if values is None:
        return diagnostics
    clean = True
    reported_missing = set()
    for i, j, terms in compiled._slot_terms:
        location = (
            f"transition {compiled.states[i]!r} -> {compiled.states[j]!r}"
        )
        for term in terms:
            missing = [
                name
                for name in term_parameters(term)
                if name not in values and name not in reported_missing
            ]
            for name in missing:
                reported_missing.add(name)
                diagnostics.append(
                    Diagnostic(
                        "C001",
                        f"rate term of {location} reads parameter {name!r}, "
                        f"which the supplied values do not define",
                        location=location,
                    )
                )
            if any(name not in values for name in term_parameters(term)):
                clean = False
                continue
            try:
                check_rate(term(values))
            except DistributionError as exc:
                clean = False
                diagnostics.append(
                    Diagnostic(
                        "C002",
                        f"rate term of {location} evaluates to an invalid "
                        f"rate: {exc}",
                        location=location,
                    )
                )
    if clean:
        from .markov import lint_generator

        diagnostics.extend(
            lint_generator(
                compiled.generator(values), query=query, states=compiled.states
            )
        )
    return diagnostics


def lint_compiled_evaluator(
    evaluator,
    values: Optional[Mapping[str, float]] = None,
    query: Optional[str] = None,
) -> List[Diagnostic]:
    """Lint a :class:`~repro.compile.CompiledEvaluator`.

    U001 flags assignment keys the evaluator does not accept (the same
    condition ``resolve_parameters`` rejects at evaluation time), then
    every embedded :class:`CompiledCTMC` found on the evaluator is linted
    with whatever parameter values are available.
    """
    from ..compile.ctmc import CompiledCTMC

    diagnostics: List[Diagnostic] = []
    accepted = set(evaluator.parameters)
    if values is not None and accepted:
        unknown = sorted(set(values) - accepted)
        if unknown:
            diagnostics.append(
                Diagnostic(
                    "U001",
                    f"assignment defines parameter(s) "
                    f"{', '.join(repr(u) for u in unknown)} that "
                    f"{type(evaluator).__name__} does not accept",
                )
            )
    embedded: List[Tuple[str, CompiledCTMC]] = []
    for attr, value in sorted(vars(evaluator).items()):
        if isinstance(value, CompiledCTMC):
            embedded.append((attr, value))
        elif isinstance(value, dict):
            embedded.extend(
                (f"{attr}[{key!r}]", v)
                for key, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
                if isinstance(v, CompiledCTMC)
            )
    known = accepted | (set(values) if values is not None else set())
    for where, chain in embedded:
        # Sweep assignments are usually partial — the evaluator resolves
        # defaults for the rest — so a chain parameter is only
        # "unsupplied" (C001) when *neither* the assignment nor the
        # evaluator's accepted parameter set can ever provide it.
        orphaned = [name for name in chain.parameters() if name not in known]
        for name in orphaned:
            diagnostics.append(
                Diagnostic(
                    "C001",
                    f"{where}: a rate term reads parameter {name!r}, which "
                    f"{type(evaluator).__name__} neither accepts nor defaults",
                    location=where,
                )
            )
        # Value-level checks need a complete point; a partial assignment
        # cannot distinguish "bad value" from "default not yet applied".
        if values is not None and not orphaned and set(chain.parameters()) <= set(values):
            for diag in lint_compiled_ctmc(chain, values=values, query=query):
                diagnostics.append(
                    Diagnostic(
                        diag.code,
                        f"{where}: {diag.message}",
                        location=f"{where}: {diag.location}" if diag.location else where,
                        severity=diag.severity,
                    )
                )
    return diagnostics
