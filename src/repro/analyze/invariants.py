"""Structural Petri-net analysis: P/T-invariants, bounds, siphons, proofs.

Everything in this module is *static* — it reads the incidence matrix of
a :class:`~repro.petrinet.PetriNet` and never fires a transition, so it
runs in milliseconds on nets whose reachability graph would take minutes
(or forever) to build.  The classical results it implements:

* **P-invariants** (place semiflows): integer vectors ``y >= 0`` with
  ``y^T C = 0`` where ``C`` is the incidence matrix.  Every reachable
  marking ``M`` satisfies ``y . M == y . M0`` — a conservation law.  A
  place covered by a P-invariant is bounded by ``floor(y.M0 / y_p)``.
* **T-invariants** (transition semiflows): ``x >= 0`` with ``C x = 0``;
  firing the multiset ``x`` reproduces the marking it started from —
  the cyclic behaviours the steady state lives on.
* **Structural unboundedness certificates**: ``x >= 0`` with
  ``C x >= 0`` and ``(C x)_p > 0`` — a repeatable transition multiset
  that strictly pumps tokens into ``p``.  When no transition in the
  multiset carries a guard or inhibitor arc, the net is *provably*
  unbounded (diagnostic P106).
* **Siphons and traps**: a siphon that starts empty stays empty forever,
  which proves every transition consuming from it dead (P108).
* **State-space bound**: each P-invariant confines its support to the
  simplex ``sum(y_p m_p) == y.M0``; counting lattice points on disjoint
  invariants (and multiplying per-place bounds for the rest) yields an
  upper bound on the number of reachable markings — *before* any BFS.
  The sparse engine's pre-flight uses it to size CSR buffers and refuse
  over-budget nets (P109) with the certificate attached.

All arithmetic is exact Python integers (Farkas / Fourier–Motzkin
elimination); no float nullspaces, no rounding.  Computation is budgeted
— pathological nets can have exponentially many minimal semiflows — and
a :class:`StructuralAnalysis` whose ``complete`` flag is False tells the
caller to fall back to heuristics (P101/P102).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Invariant",
    "StructuralAnalysis",
    "incidence_matrix",
    "compute_p_invariants",
    "compute_t_invariants",
    "unboundedness_certificates",
    "maximal_empty_siphon",
    "minimal_siphons",
    "minimal_traps",
    "place_bounds",
    "state_space_bound",
    "structural_analysis",
    "FARKAS_DEFAULT_BUDGET",
]

#: Maximum number of intermediate rows the Farkas elimination may hold.
#: Minimal-semiflow sets can be exponential in pathological nets; beyond
#: this the analysis reports ``complete=False`` and callers fall back to
#: the heuristic lints.  Generous for every model in this repo (their
#: eliminations stay well under a hundred rows).
FARKAS_DEFAULT_BUDGET = 4096

#: Largest invariant token sum the exact lattice-point DP will count;
#: beyond it the per-invariant count falls back to a product bound.
_DP_SUM_LIMIT = 100_000

#: Brute-force minimal-siphon/trap enumeration cap (subsets of places).
_SIPHON_ENUM_PLACES = 14


class _BudgetExceeded(Exception):
    """Internal: the Farkas elimination outgrew its row budget."""


# --------------------------------------------------------------------------
# incidence matrix
# --------------------------------------------------------------------------


def incidence_matrix(net) -> List[List[int]]:
    """Exact integer incidence matrix ``C[p][t] = out(t,p) - in(t,p)``.

    Columns follow the net's transition insertion order (timed and
    immediate alike — invariants are about token flow, not timing);
    rows follow place index order.
    """
    n_places = len(net._places)
    transitions = list(net._transitions.values())
    C = [[0] * len(transitions) for _ in range(n_places)]
    for j, t in enumerate(transitions):
        for idx, mult in t.inputs:
            C[idx][j] -= mult
        for idx, mult in t.outputs:
            C[idx][j] += mult
    return C


def _transition_names(net) -> List[str]:
    return [t.name for t in net._transitions.values()]


def _place_names(net) -> List[str]:
    return [p.name for p in net._places]


# --------------------------------------------------------------------------
# Farkas / Fourier–Motzkin elimination on exact integers
# --------------------------------------------------------------------------


def _normalize(row: Tuple[int, ...]) -> Tuple[int, ...]:
    g = 0
    for v in row:
        g = math.gcd(g, v)
    if g > 1:
        return tuple(v // g for v in row)
    return row


def _farkas(
    value_rows: Sequence[Sequence[int]],
    budget: int = FARKAS_DEFAULT_BUDGET,
) -> List[Tuple[int, ...]]:
    """All minimal-support non-negative annihilators of the given rows.

    Given a matrix ``D`` whose rows are ``value_rows``, returns the
    minimal-support generators ``y >= 0`` of ``{y : y^T D = 0}`` — the
    classical Farkas algorithm on the extended matrix ``[D | I]``:
    eliminate each value column by pairing rows of opposite sign, keep
    zero rows, normalise by gcd, and prune non-minimal supports.

    Raises :class:`_BudgetExceeded` when the intermediate row count
    outgrows ``budget``.
    """
    n_rows = len(value_rows)
    if n_rows == 0:
        return []
    n_cols = len(value_rows[0])
    # Each working row is (value_part, combo_part); combo starts as e_i.
    rows: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
    for i, vrow in enumerate(value_rows):
        combo = tuple(1 if k == i else 0 for k in range(n_rows))
        rows.append((tuple(vrow), combo))

    for col in range(n_cols):
        zero: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
        pos: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
        neg: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
        for vrow, combo in rows:
            v = vrow[col]
            if v == 0:
                zero.append((vrow, combo))
            elif v > 0:
                pos.append((vrow, combo))
            else:
                neg.append((vrow, combo))
        new_rows = zero
        seen: Set[Tuple[int, ...]] = {combo for _v, combo in zero}
        for pv, pc in pos:
            for nv, nc in neg:
                a, b = pv[col], -nv[col]
                # b*positive + a*negative annihilates the column.
                vrow = tuple(b * x + a * y for x, y in zip(pv, nv))
                combo = tuple(b * x + a * y for x, y in zip(pc, nc))
                full = _normalize(vrow + combo)
                vrow, combo = full[: len(vrow)], full[len(vrow):]
                if combo in seen:
                    continue
                seen.add(combo)
                new_rows.append((vrow, combo))
                if len(new_rows) > budget:
                    raise _BudgetExceeded(
                        f"Farkas elimination exceeded {budget} rows at column {col}"
                    )
        rows = _prune_supports(new_rows)

    return _minimal_supports([combo for _v, combo in rows])


def _prune_supports(
    rows: List[Tuple[Tuple[int, ...], Tuple[int, ...]]],
) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Drop rows whose combo support strictly contains another's.

    Colom–Silva intermediate pruning: a row whose generator support is a
    strict superset of another row's can never contribute a *minimal*
    semiflow, so discarding it early keeps the elimination polynomial on
    well-behaved nets.
    """
    supports = [frozenset(i for i, v in enumerate(c) if v) for _v, c in rows]
    keep: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
    for i, row in enumerate(rows):
        si = supports[i]
        dominated = False
        for j, sj in enumerate(supports):
            if i == j:
                continue
            if sj < si or (sj == si and j < i and rows[j][1] == row[1]):
                dominated = True
                break
        if not dominated:
            keep.append(row)
    return keep


def _minimal_supports(vectors: List[Tuple[int, ...]]) -> List[Tuple[int, ...]]:
    """Normalised vectors whose supports are minimal (and unique)."""
    normalized = list(dict.fromkeys(_normalize(v) for v in vectors if any(v)))
    supports = [frozenset(i for i, x in enumerate(v) if x) for v in normalized]
    out: List[Tuple[int, ...]] = []
    for i, v in enumerate(normalized):
        if any(supports[j] < supports[i] for j in range(len(normalized)) if j != i):
            continue
        out.append(v)
    out.sort(key=lambda v: (sum(1 for x in v if x), v))
    return out


# --------------------------------------------------------------------------
# invariants
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Invariant:
    """One minimal-support semiflow of a net.

    Attributes
    ----------
    kind:
        ``"P"`` (place invariant, ``y^T C = 0``) or ``"T"`` (transition
        invariant, ``C x = 0``).
    coefficients:
        Full exact-integer vector over the net's places (P) or
        transitions (T), in index order.
    names:
        Names of the support entries, aligned with
        :attr:`support_coefficients`.
    support_coefficients:
        The non-zero coefficients, aligned with :attr:`names`.
    token_sum:
        For P-invariants, the conserved quantity ``y . M0``; ``None``
        for T-invariants.
    """

    kind: str
    coefficients: Tuple[int, ...]
    names: Tuple[str, ...]
    support_coefficients: Tuple[int, ...]
    token_sum: Optional[int] = None

    @property
    def support(self) -> Tuple[int, ...]:
        """Indices with non-zero coefficient."""
        return tuple(i for i, c in enumerate(self.coefficients) if c)

    def render(self) -> str:
        """Human form, e.g. ``up + down = 4`` or ``fail + repair (cycle)``."""
        terms = " + ".join(
            name if c == 1 else f"{c}·{name}"
            for c, name in zip(self.support_coefficients, self.names)
        )
        if self.kind == "P":
            return f"{terms} = {self.token_sum}"
        return f"{terms} (cycle)"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "support": {n: c for n, c in zip(self.names, self.support_coefficients)},
            "token_sum": self.token_sum,
            "rendered": self.render(),
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _make_invariants(
    kind: str,
    vectors: List[Tuple[int, ...]],
    names: List[str],
    initial: Optional[List[int]] = None,
) -> List[Invariant]:
    out = []
    for v in vectors:
        support = [i for i, c in enumerate(v) if c]
        token_sum = None
        if initial is not None:
            token_sum = sum(c * m for c, m in zip(v, initial))
        out.append(
            Invariant(
                kind=kind,
                coefficients=v,
                names=tuple(names[i] for i in support),
                support_coefficients=tuple(v[i] for i in support),
                token_sum=token_sum,
            )
        )
    return out


def compute_p_invariants(net, budget: int = FARKAS_DEFAULT_BUDGET) -> List[Invariant]:
    """Minimal-support P-invariants (``y >= 0``, ``y^T C = 0``).

    Raises nothing on budget exhaustion at this level — use
    :func:`structural_analysis` for the budgeted, flagged entry point.
    """
    C = incidence_matrix(net)
    vectors = _farkas(C, budget=budget)  # rows of D are places: y^T C = 0
    initial = [p.initial for p in net._places]
    return _make_invariants("P", vectors, _place_names(net), initial)


def compute_t_invariants(net, budget: int = FARKAS_DEFAULT_BUDGET) -> List[Invariant]:
    """Minimal-support T-invariants (``x >= 0``, ``C x = 0``)."""
    C = incidence_matrix(net)
    n_places = len(C)
    n_trans = len(C[0]) if n_places else 0
    Ct = [[C[p][t] for p in range(n_places)] for t in range(n_trans)]
    vectors = _farkas(Ct, budget=budget)
    return _make_invariants("T", vectors, _transition_names(net))


def unboundedness_certificates(
    net, budget: int = FARKAS_DEFAULT_BUDGET
) -> Dict[str, Dict[str, int]]:
    """Repeatable transition multisets that strictly pump a place.

    Solves ``C x >= 0``, ``x >= 0``, ``x != 0`` via the slack
    formulation: annihilators ``w = [x; s] >= 0`` of the stacked matrix
    ``[C^T; -I]`` satisfy ``C x = s >= 0``.  A generator with some
    ``s_p > 0`` certifies that firing the multiset ``x`` repeatedly
    increases the marking of ``p`` without bound — *provided* every
    transition in the multiset stays fireable, which is guaranteed
    structurally only when none of them carries a guard or an inhibitor
    arc (both can disable firing at large markings).

    Returns ``{place_name: {transition_name: count}}`` for each place
    with a guard-free, inhibitor-free pumping certificate.
    """
    C = incidence_matrix(net)
    n_places = len(C)
    if n_places == 0:
        return {}
    n_trans = len(C[0])
    if n_trans == 0:
        return {}
    transitions = list(net._transitions.values())
    # Rows: n_trans rows of C^T, then n_places rows of -I.
    rows: List[List[int]] = [[C[p][t] for p in range(n_places)] for t in range(n_trans)]
    rows.extend([-1 if q == p else 0 for q in range(n_places)] for p in range(n_places))
    generators = _farkas(rows, budget=budget)

    certificates: Dict[str, Dict[str, int]] = {}
    for w in generators:
        x, s = w[:n_trans], w[n_trans:]
        if not any(x) or not any(s):
            continue
        support = [transitions[j] for j in range(n_trans) if x[j]]
        if any(t.guard is not None or t.inhibitors for t in support):
            continue
        multiset = {transitions[j].name: x[j] for j in range(n_trans) if x[j]}
        for p in range(n_places):
            if s[p] > 0:
                certificates.setdefault(net._places[p].name, multiset)
    return certificates


# --------------------------------------------------------------------------
# siphons and traps
# --------------------------------------------------------------------------


def maximal_empty_siphon(net) -> FrozenSet[int]:
    """The largest siphon contained in the initially-empty places.

    A *siphon* is a place set S where every transition feeding S also
    consumes from S — once S is empty it stays empty.  The maximal
    siphon inside ``{p : M0(p) == 0}`` is a polynomial fixpoint: start
    from all empty places, repeatedly drop any place fed by a transition
    with no input inside the set.  Every transition with an input place
    in the result is provably dead.
    """
    candidate: Set[int] = {i for i, p in enumerate(net._places) if p.initial == 0}
    transitions = list(net._transitions.values())
    changed = True
    while changed and candidate:
        changed = False
        for t in transitions:
            t_inputs = {idx for idx, _m in t.inputs}
            if t_inputs & candidate:
                continue  # t consumes from the set: cannot violate siphon-ness
            for idx, _m in t.outputs:
                if idx in candidate:
                    candidate.discard(idx)
                    changed = True
    return frozenset(candidate)


def _enumerate_place_sets(net, is_closed) -> List[FrozenSet[int]]:
    """Minimal non-empty place sets satisfying ``is_closed`` (brute force)."""
    n = len(net._places)
    if n > _SIPHON_ENUM_PLACES:
        return []
    found: List[FrozenSet[int]] = []
    indices = range(n)
    for size in range(1, n + 1):
        for combo in combinations(indices, size):
            s = frozenset(combo)
            if any(prev <= s for prev in found):
                continue
            if is_closed(s):
                found.append(s)
    return found


def minimal_siphons(net) -> List[FrozenSet[int]]:
    """Minimal siphons (pre-set contained in post-set), small nets only.

    Enumeration is exponential; nets with more than
    ``_SIPHON_ENUM_PLACES`` places get ``[]`` — use
    :func:`maximal_empty_siphon` (polynomial) for deadness proofs there.
    """
    transitions = list(net._transitions.values())

    def is_siphon(s: FrozenSet[int]) -> bool:
        for t in transitions:
            outs = {idx for idx, _m in t.outputs}
            ins = {idx for idx, _m in t.inputs}
            if outs & s and not ins & s:
                return False
        return True

    return _enumerate_place_sets(net, is_siphon)


def minimal_traps(net) -> List[FrozenSet[int]]:
    """Minimal traps (post-set contained in pre-set), small nets only.

    A marked trap can never be emptied — the dual argument to siphons.
    """
    transitions = list(net._transitions.values())

    def is_trap(s: FrozenSet[int]) -> bool:
        for t in transitions:
            outs = {idx for idx, _m in t.outputs}
            ins = {idx for idx, _m in t.inputs}
            if ins & s and not outs & s:
                return False
        return True

    return _enumerate_place_sets(net, is_trap)


# --------------------------------------------------------------------------
# bounds
# --------------------------------------------------------------------------


def place_bounds(
    net,
    p_invariants: Optional[List[Invariant]] = None,
) -> Tuple[Dict[str, Optional[int]], Dict[str, str]]:
    """Per-place token bounds with their proof source.

    Returns ``(bounds, sources)`` keyed by place name.  A bound of
    ``None`` means no structural proof exists (the place may still be
    bounded behaviourally).  Sources:

    * ``"invariant"`` — ``floor(y.M0 / y_p)`` over covering P-invariants
      (the tightest such bound);
    * ``"inhibitor"`` — every transition with a net token gain on the
      place carries an inhibitor arc on it, so the marking can never
      exceed ``max(M0, max_t(h_t - 1 + gain_t))``;
    * ``"static"`` — no transition ever increases the place's marking,
      so it stays at most ``M0``;
    * ``"none"`` — unproven.
    """
    if p_invariants is None:
        p_invariants = compute_p_invariants(net)
    C = incidence_matrix(net)
    transitions = list(net._transitions.values())
    bounds: Dict[str, Optional[int]] = {}
    sources: Dict[str, str] = {}

    for p, place in enumerate(net._places):
        best: Optional[int] = None
        source = "none"
        for inv in p_invariants:
            c = inv.coefficients[p]
            if c > 0 and inv.token_sum is not None:
                b = inv.token_sum // c
                if best is None or b < best:
                    best, source = b, "invariant"
        gainers = [
            (t, C[p][j]) for j, t in enumerate(transitions) if C[p][j] > 0
        ]
        if not gainers:
            b = place.initial
            if best is None or b < best:
                best, source = b, "static"
        else:
            inhibited = []
            for t, gain in gainers:
                h = [m for idx, m in t.inhibitors if idx == p]
                if not h:
                    inhibited = None
                    break
                inhibited.append(min(h) - 1 + gain)
            if inhibited is not None:
                b = max([place.initial] + inhibited)
                if best is None or b < best:
                    best, source = b, "inhibitor"
        bounds[place.name] = best
        sources[place.name] = source
    return bounds, sources


def _count_simplex_points(coeffs: Sequence[int], total: int) -> Optional[int]:
    """Exact number of non-negative integer solutions of ``sum c_i m_i == total``.

    Unit coefficients use the stars-and-bars closed form; small totals
    use an exact DP; otherwise ``None`` (caller falls back to a product
    bound).
    """
    if total < 0:
        return 0
    if all(c == 1 for c in coeffs):
        return math.comb(total + len(coeffs) - 1, len(coeffs) - 1)
    if total > _DP_SUM_LIMIT:
        return None
    ways = [0] * (total + 1)
    ways[0] = 1
    for c in coeffs:
        for s in range(c, total + 1):
            ways[s] += ways[s - c]
    return ways[total]


def state_space_bound(
    net,
    p_invariants: Optional[List[Invariant]] = None,
    bounds: Optional[Dict[str, Optional[int]]] = None,
) -> Tuple[Optional[int], bool]:
    """Upper bound on the number of reachable markings, and exactness.

    Greedily selects P-invariants with pairwise-disjoint supports and
    counts the lattice points of each invariant's simplex exactly;
    every place not covered by a selected invariant contributes a factor
    ``bound + 1`` (places no arc can change contribute 1).  Returns
    ``(None, False)`` when some place has no structural bound.

    The second element is True when the bound is *exact by partition*:
    the selected invariants cover every arc-touched place, and the net
    has no guards, no inhibitor arcs and no immediate transitions — then
    the reachable set is exactly the product of the invariant simplexes
    whenever each simplex is fully reachable (as in independent
    birth–death components, the common availability-model shape).
    """
    if p_invariants is None:
        p_invariants = compute_p_invariants(net)
    if bounds is None:
        bounds, _sources = place_bounds(net, p_invariants)
    C = incidence_matrix(net)
    n_places = len(net._places)
    constant = {p for p in range(n_places) if not any(C[p])}

    # Greedy disjoint cover: smallest simplex count first.
    scored: List[Tuple[int, Invariant]] = []
    for inv in p_invariants:
        if inv.token_sum is None:
            continue
        count = _count_simplex_points(inv.support_coefficients, inv.token_sum)
        if count is None:
            count = 1
            for c in inv.support_coefficients:
                count *= inv.token_sum // c + 1
        scored.append((count, inv))
    scored.sort(key=lambda pair: (pair[0], pair[1].support))

    covered: Set[int] = set()
    bound = 1
    for count, inv in scored:
        support = set(inv.support)
        if support & covered or support <= constant:
            continue
        covered |= support
        bound *= count

    names = _place_names(net)
    uncovered = [
        p for p in range(n_places) if p not in covered and p not in constant
    ]
    for p in uncovered:
        b = bounds.get(names[p])
        if b is None:
            return None, False
        bound *= b + 1

    transitions = list(net._transitions.values())
    plain = not any(
        t.guard is not None or t.inhibitors or t.is_immediate for t in transitions
    )
    exact = plain and not uncovered
    return bound, exact


# --------------------------------------------------------------------------
# dead-transition proofs and conservation violations
# --------------------------------------------------------------------------


def _dead_transitions(
    net,
    bounds: Dict[str, Optional[int]],
    empty_siphon: FrozenSet[int],
) -> Tuple[Dict[str, str], Dict[str, int]]:
    """Transitions proven dead (with proofs) and the bound refinements.

    Sound under guards and inhibitors: those only *further* restrict
    firing, so a structural impossibility argument stands regardless.
    Proofs propagate: once a transition is dead, a place fed only by
    dead transitions can never exceed its initial marking, which may
    kill further transitions.  The second return value maps place names
    to the refined (dead-producer) bounds discovered along the way.
    """
    places = net._places
    names = _place_names(net)
    transitions = list(net._transitions.values())
    C = incidence_matrix(net)
    proofs: Dict[str, str] = {}
    effective: Dict[int, Optional[int]] = {
        p: bounds.get(names[p]) for p in range(len(places))
    }
    siphon_names = sorted(names[p] for p in empty_siphon)

    for t in transitions:
        for idx, mult in t.inputs:
            for h_idx, h_mult in t.inhibitors:
                if h_idx == idx and h_mult <= mult:
                    proofs.setdefault(
                        t.name,
                        f"requires {mult} token(s) in {names[idx]!r} but is "
                        f"inhibited at {h_mult}; the enabling condition is "
                        f"contradictory",
                    )

    changed = True
    while changed:
        changed = False
        for t in transitions:
            if t.name in proofs:
                continue
            for idx, mult in t.inputs:
                if idx in empty_siphon:
                    proofs[t.name] = (
                        f"input place {names[idx]!r} lies in the initially-empty "
                        f"siphon {{{', '.join(repr(n) for n in siphon_names)}}}, "
                        f"which can never be marked"
                    )
                    changed = True
                    break
                b = effective.get(idx)
                if b is not None and b < mult:
                    proofs[t.name] = (
                        f"needs {mult} token(s) in place {names[idx]!r}, whose "
                        f"proven structural bound is {b}"
                    )
                    changed = True
                    break
        if not changed:
            break
        # Propagate: a place whose live producers are all dead can never
        # rise above its initial marking.
        for p in range(len(places)):
            live_producers = [
                t
                for j, t in enumerate(transitions)
                if C[p][j] > 0 and t.name not in proofs
            ]
            if not live_producers:
                b = effective.get(p)
                if b is None or b > places[p].initial:
                    effective[p] = places[p].initial
    refined = {
        names[p]: b
        for p, b in effective.items()
        if b is not None and (bounds.get(names[p]) is None or b < bounds[names[p]])
    }
    return proofs, refined


def _conservation_violations(
    net,
    p_invariants: List[Invariant],
    budget: int,
    max_transitions: int = 64,
) -> List[Tuple[str, Invariant, int]]:
    """Transitions that single-handedly break an otherwise-held law.

    For each place not covered by any P-invariant, re-run the Farkas
    elimination with one transition column removed at a time; if the
    place becomes covered, the removed transition is the unique breaker
    of that conservation law and its arc multiplicities deserve a second
    look (P107).  Returns ``(transition_name, invariant, delta)`` where
    ``delta = y^T C_t`` is the leak per firing.  Skipped (empty) on nets
    with more than ``max_transitions`` transitions.
    """
    n_places = len(net._places)
    covered = {p for inv in p_invariants for p in inv.support}
    uncovered = [p for p in range(n_places) if p not in covered]
    if not uncovered:
        return []
    transitions = list(net._transitions.values())
    if len(transitions) > max_transitions:
        return []
    C = incidence_matrix(net)
    names = _place_names(net)
    initial = [p.initial for p in net._places]
    out: List[Tuple[str, Invariant, int]] = []
    for j, t in enumerate(transitions):
        reduced = [[row[k] for k in range(len(transitions)) if k != j] for row in C]
        try:
            vectors = _farkas(reduced, budget=budget)
        except _BudgetExceeded:
            return []
        for v in vectors:
            if not any(v[p] for p in uncovered):
                continue
            inv = _make_invariants("P", [v], names, initial)[0]
            delta = sum(v[p] * C[p][j] for p in range(n_places))
            out.append((t.name, inv, delta))
            break  # one witness law per transition is enough
    return out


# --------------------------------------------------------------------------
# the one-call entry point
# --------------------------------------------------------------------------


@dataclass
class StructuralAnalysis:
    """Everything the structural pass proved about one net.

    Implements the library-wide ``Observation`` protocol (``to_dict`` /
    ``summary``) so it can attach to trace spans, travel on
    :class:`~repro.exceptions.StateSpaceError` as the refusal
    certificate, and serialize into ``repro.serve`` metadata.
    """

    place_names: Tuple[str, ...]
    transition_names: Tuple[str, ...]
    p_invariants: List[Invariant] = field(default_factory=list)
    t_invariants: List[Invariant] = field(default_factory=list)
    bounds: Dict[str, Optional[int]] = field(default_factory=dict)
    bound_sources: Dict[str, str] = field(default_factory=dict)
    unbounded: Dict[str, Dict[str, int]] = field(default_factory=dict)
    dead_transitions: Dict[str, str] = field(default_factory=dict)
    empty_siphon: Tuple[str, ...] = ()
    conservation_violations: List[Tuple[str, Invariant, int]] = field(
        default_factory=list
    )
    state_bound: Optional[int] = None
    state_bound_exact: bool = False
    complete: bool = True

    # ------------------------------------------------------------ derived
    @property
    def conservative(self) -> bool:
        """True when every place is covered by some P-invariant."""
        covered = {n for inv in self.p_invariants for n in inv.names}
        return set(self.place_names) <= covered

    @property
    def structurally_bounded(self) -> bool:
        """True when every place has a proven finite bound."""
        return self.complete and all(b is not None for b in self.bounds.values())

    # -------------------------------------------------------- observation
    def to_dict(self) -> Dict[str, Any]:
        return {
            "complete": self.complete,
            "n_places": len(self.place_names),
            "n_transitions": len(self.transition_names),
            "p_invariants": [inv.to_dict() for inv in self.p_invariants],
            "t_invariants": [inv.to_dict() for inv in self.t_invariants],
            "bounds": dict(self.bounds),
            "bound_sources": dict(self.bound_sources),
            "conservative": self.conservative,
            "structurally_bounded": self.structurally_bounded,
            "unbounded_places": {p: dict(m) for p, m in self.unbounded.items()},
            "dead_transitions": dict(self.dead_transitions),
            "empty_siphon": list(self.empty_siphon),
            "conservation_violations": [
                {"transition": t, "law": inv.render(), "delta": delta}
                for t, inv, delta in self.conservation_violations
            ],
            "state_bound": self.state_bound,
            "state_bound_exact": self.state_bound_exact,
        }

    def summary(self) -> Dict[str, float]:
        return {
            "n_p_invariants": float(len(self.p_invariants)),
            "n_t_invariants": float(len(self.t_invariants)),
            "n_dead_transitions": float(len(self.dead_transitions)),
            "n_unbounded_places": float(len(self.unbounded)),
            "state_bound": float(self.state_bound) if self.state_bound is not None else float("inf"),
            "complete": float(self.complete),
        }

    def render(self) -> str:
        """Multi-line human summary (the CLI output form)."""
        lines = []
        if not self.complete:
            lines.append("structural analysis incomplete (Farkas budget exceeded)")
            return "\n".join(lines)
        lines.append(
            f"P-invariants: {len(self.p_invariants)}, "
            f"T-invariants: {len(self.t_invariants)}"
        )
        for inv in self.p_invariants:
            lines.append(f"  P: {inv.render()}")
        for inv in self.t_invariants:
            lines.append(f"  T: {inv.render()}")
        if self.structurally_bounded:
            exact = " (exact)" if self.state_bound_exact else ""
            lines.append(
                f"structurally bounded; predicted |states| <= "
                f"{self.state_bound}{exact}"
            )
        elif self.unbounded:
            lines.append(
                "structurally unbounded: " + ", ".join(sorted(self.unbounded))
            )
        else:
            open_places = sorted(n for n, b in self.bounds.items() if b is None)
            lines.append(f"boundedness open for: {', '.join(open_places)}")
        if self.dead_transitions:
            lines.append(
                "proven dead: " + ", ".join(sorted(self.dead_transitions))
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StructuralAnalysis(P={len(self.p_invariants)}, "
            f"T={len(self.t_invariants)}, bound={self.state_bound}, "
            f"complete={self.complete})"
        )


def structural_analysis(
    net,
    budget: int = FARKAS_DEFAULT_BUDGET,
    conservation_check: bool = True,
) -> StructuralAnalysis:
    """Run the full structural pass on a net and collect the proofs.

    Never raises on budget exhaustion: the returned report's
    ``complete`` flag is False instead, and callers (the P-lint, the
    sparse pre-flight) fall back to heuristics.  Cost is polynomial on
    every net in this repo — milliseconds even for the nets whose
    reachability graph holds 10^5+ markings, because the incidence
    matrix only sees places and transitions, never markings.
    """
    report = StructuralAnalysis(
        place_names=tuple(_place_names(net)),
        transition_names=tuple(_transition_names(net)),
    )
    try:
        report.p_invariants = compute_p_invariants(net, budget=budget)
        report.t_invariants = compute_t_invariants(net, budget=budget)
        report.unbounded = unboundedness_certificates(net, budget=budget)
        if conservation_check:
            report.conservation_violations = _conservation_violations(
                net, report.p_invariants, budget=budget
            )
    except _BudgetExceeded:
        report.complete = False
        return report
    report.bounds, report.bound_sources = place_bounds(net, report.p_invariants)
    siphon = maximal_empty_siphon(net)
    report.empty_siphon = tuple(
        sorted(net._places[p].name for p in siphon)
    )
    report.dead_transitions, refined = _dead_transitions(net, report.bounds, siphon)
    for name, b in refined.items():
        report.bounds[name] = b
        report.bound_sources[name] = "dead-producers"
    report.state_bound, report.state_bound_exact = state_space_bound(
        net, report.p_invariants, report.bounds
    )
    return report
