"""Analyzer passes for structure models: RBDs, fault trees, reliability graphs.

All checks are structural and run without quantifying the model:
out-of-range fixed probabilities (S001), k-of-n arity violations (S002),
degenerate single-input gates (S003), repeated components that force the
BDD path and make its variable order matter (S004), reliability-graph
edges that can never lie on a source-target path (S005), and basic
events that will need an explicit ``q=`` at quantification time (S006).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from .diagnostics import Diagnostic

__all__ = ["lint_component", "lint_rbd", "lint_fault_tree", "lint_relgraph"]


def lint_component(component, where: str = "") -> List[Diagnostic]:
    """S001/S006 checks on one :class:`~repro.nonstate.Component`."""
    location = where or f"component {component.name!r}"
    p = getattr(component, "probability", None)
    if p is not None:
        p = float(p)
        if not (0.0 <= p <= 1.0) or p != p:
            return [
                Diagnostic(
                    "S001",
                    f"{location} has fixed probability {p!r}, outside [0, 1]",
                    location=location,
                )
            ]
        return []
    if getattr(component, "failure", None) is None:
        return [
            Diagnostic(
                "S006",
                f"{location} has neither a fixed probability nor a failure "
                f"distribution; quantification will need an explicit q= mapping",
                location=location,
            )
        ]
    return []


def _repeat_diagnostic(counts: Counter, kind: str) -> Optional[Diagnostic]:
    repeated = sorted(name for name, n in counts.items() if n > 1)
    if not repeated:
        return None
    shown = ", ".join(repr(r) for r in repeated[:6])
    if len(repeated) > 6:
        shown += f", … ({len(repeated)} total)"
    return Diagnostic(
        "S004",
        f"repeated {kind}: {shown}; compositional products would double-count, "
        f"so the exact BDD engine is used — variable order follows first "
        f"occurrence",
    )


def lint_rbd(rbd) -> List[Diagnostic]:
    """Lint a :class:`~repro.nonstate.ReliabilityBlockDiagram`."""
    from ..nonstate.rbd import KofN, Parallel, Series

    diagnostics: List[Diagnostic] = []
    seen_components = set()

    def walk(block, path: str) -> None:
        blocks = getattr(block, "blocks", None)
        if blocks is None:  # leaf
            component = block.component
            if id(component) not in seen_components:
                seen_components.add(id(component))
                diagnostics.extend(lint_component(component, where=path))
            return
        kind = type(block).__name__
        if isinstance(block, KofN):
            k, n = block.k, len(blocks)
            if not 1 <= k <= n:
                diagnostics.append(
                    Diagnostic(
                        "S002",
                        f"{path} is a {k}-of-{n} block; need 1 <= k <= n",
                        location=path,
                    )
                )
        elif isinstance(block, (Series, Parallel)) and len(blocks) == 1:
            diagnostics.append(
                Diagnostic(
                    "S003",
                    f"{path} ({kind}) has a single child and is an identity; "
                    f"inline the child",
                    location=path,
                )
            )
        for i, child in enumerate(blocks):
            walk(child, f"{path}.{type(child).__name__}[{i}]")

    walk(rbd.root, type(rbd.root).__name__)
    repeat = _repeat_diagnostic(
        Counter(c.name for c in rbd.root.components()), "components"
    )
    if repeat is not None:
        diagnostics.append(repeat)
    return diagnostics


def lint_fault_tree(tree) -> List[Diagnostic]:
    """Lint a :class:`~repro.nonstate.FaultTree`."""
    from ..nonstate.faulttree import AndGate, BasicEvent, KofNGate, OrGate

    diagnostics: List[Diagnostic] = []
    seen_events = set()

    def walk(node, path: str) -> None:
        if isinstance(node, BasicEvent):
            if node.name not in seen_events:
                seen_events.add(node.name)
                diagnostics.extend(
                    lint_component(node.component, where=f"basic event {node.name!r}")
                )
            return
        children = getattr(node, "children", None)
        if children is None:  # NotGate and future single-child nodes
            child = getattr(node, "child", None)
            if child is not None:
                walk(child, f"{path}.{type(child).__name__}")
            return
        kind = type(node).__name__
        if isinstance(node, KofNGate):
            k, n = node.k, len(children)
            if not 1 <= k <= n:
                diagnostics.append(
                    Diagnostic(
                        "S002",
                        f"{path} is a {k}-of-{n} gate; need 1 <= k <= n",
                        location=path,
                    )
                )
        if isinstance(node, (AndGate, OrGate, KofNGate)) and len(children) < 2:
            diagnostics.append(
                Diagnostic(
                    "S003",
                    f"{path} ({kind}) has {len(children)} input(s); a gate needs "
                    f"at least 2 to do any logic",
                    location=path,
                )
            )
        for i, child in enumerate(children):
            walk(child, f"{path}.{type(child).__name__}[{i}]")

    walk(tree.top, type(tree.top).__name__)
    repeat = _repeat_diagnostic(
        Counter(e.name for e in tree.top.basic_events()), "basic events"
    )
    if repeat is not None:
        diagnostics.append(repeat)
    return diagnostics


def lint_relgraph(graph) -> List[Diagnostic]:
    """Lint a :class:`~repro.nonstate.ReliabilityGraph` (S005 + component checks)."""
    import networkx as nx

    diagnostics: List[Diagnostic] = []
    g = graph._graph
    reachable = set(nx.descendants(g, graph.source)) | {graph.source}
    coreachable = set(nx.ancestors(g, graph.target)) | {graph.target}
    # An edge can lie on a simple s-t path only when its tail is
    # reachable from s, its head co-reaches t, and it neither leaves the
    # target nor enters the source (simple paths start at s and end at
    # t, so such edges only occur on revisiting walks).  A *component*
    # is flagged when every one of its edges fails the test — undirected
    # graphs store both directions under one component, and the useful
    # direction redeems its reversed twin.
    edges_of: Dict[str, List[tuple]] = {}
    useful = set()
    for u, v, data in g.edges(data=True):
        name = data.get("component")
        edges_of.setdefault(name, []).append((u, v))
        if (
            u in reachable
            and v in coreachable
            and u != graph.target
            and v != graph.source
        ):
            useful.add(name)
    for name in sorted(set(edges_of) - useful, key=repr):
        u, v = edges_of[name][0]
        diagnostics.append(
            Diagnostic(
                "S005",
                f"component {name!r} (edge {u!r} -> {v!r}) cannot lie on any "
                f"{graph.source!r} -> {graph.target!r} path",
                location=f"component {name!r}",
            )
        )
    for name in sorted(graph._components):
        diagnostics.extend(
            lint_component(graph._components[name], where=f"component {name!r}")
        )
    return diagnostics
