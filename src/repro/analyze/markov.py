"""Analyzer passes for Markov models (CTMC / DTMC generators).

Two layers:

* :func:`generator_defects` is the **shared strict scan** — the single
  implementation of the generator-invariant checks (square, finite,
  non-negative off-diagonals, conservative rows) that
  :func:`repro.markov.solvers.validate_generator` raises from.  Check
  order, tolerances and messages are the contract: every steady-state
  solver, the fallback chain and the compiled kernels accept/reject
  bit-identically because they all call this one function.
* :func:`lint_generator` / :func:`lint_ctmc` / :func:`lint_dtmc` are the
  **full lint passes**: the strict scan plus the structural warnings the
  tutorial's pre-flight folklore consists of — absorbing states under a
  steady-state query, reducible chains, transient-only components,
  stiffness spread.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from .diagnostics import ERROR, Diagnostic

__all__ = [
    "STIFFNESS_THRESHOLD",
    "generator_defects",
    "lint_generator",
    "lint_ctmc",
    "lint_dtmc",
    "lint_mrgp",
]

#: Stiffness ratio above which M103 fires — the spread where naive
#: elimination starts losing precision (failures per 1e5 h vs repairs
#: per hour sits around 1e7–1e10).  Matches the ``stiffness_threshold``
#: default of :func:`repro.markov.fallback.solve_steady_state`.
STIFFNESS_THRESHOLD = 1e8


def _state_label(states: Optional[Sequence], index: int) -> str:
    if states is not None and index < len(states):
        return f"state {states[index]!r}"
    return f"row {index}"


def generator_defects(
    generator, tol: float = 1e-8
) -> Tuple[int, List[Diagnostic]]:
    """Strict error scan of a CTMC generator; returns ``(n, defects)``.

    The checks, their order, their tolerance scaling and their messages
    replicate the historical ``validate_generator`` exactly — that
    function now raises ``defects[0].message``, so accept/reject
    behaviour cannot drift between the solvers and the lint.

    Also valid for the ``P - I`` matrices the DTMC stationary solver
    feeds to GTH.
    """
    defects: List[Diagnostic] = []
    if sparse.issparse(generator):
        q = sparse.csr_matrix(generator, dtype=float)
        n = q.shape[0]
        if q.shape != (n, n):
            return n, [
                Diagnostic(
                    "M004",
                    f"generator must be square, got shape {q.shape}",
                    location=f"shape {q.shape}",
                )
            ]
        data = q.data
        finite = not (data.size and not np.all(np.isfinite(data)))
        scale = max(1.0, float(np.abs(data).max())) if data.size else 1.0
        off = q - sparse.diags(q.diagonal())
        min_off = float(off.data.min()) if off.data.size else 0.0
        row_sums = np.asarray(q.sum(axis=1)).ravel()
    else:
        a = np.asarray(generator, dtype=float)
        n = a.shape[0] if a.ndim == 2 else -1
        if a.ndim != 2 or a.shape != (n, n):
            return n, [
                Diagnostic(
                    "M004",
                    f"generator must be square, got shape {a.shape}",
                    location=f"shape {a.shape}",
                )
            ]
        finite = bool(np.all(np.isfinite(a)))
        scale = max(1.0, float(np.abs(a).max())) if a.size else 1.0
        off_mask = ~np.eye(n, dtype=bool)
        min_off = float(a[off_mask].min()) if n > 1 else 0.0
        row_sums = a.sum(axis=1)
    if not finite:
        defects.append(Diagnostic("M003", "generator contains non-finite entries"))
        # NaN propagates into scale; keep the remaining comparisons
        # meaningful by falling back to the unscaled tolerance.
        if not np.isfinite(scale):
            scale = 1.0
    if min_off < -tol * scale:
        defects.append(
            Diagnostic(
                "M002",
                f"generator has a negative off-diagonal rate {min_off:.6g}; "
                f"transition rates must be non-negative",
            )
        )
    if row_sums.size:
        finite_sums = np.where(np.isfinite(row_sums), row_sums, 0.0)
        worst = int(np.abs(finite_sums).argmax())
        deviation = float(row_sums[worst])
        if abs(deviation) > tol * scale:
            defects.append(
                Diagnostic(
                    "M001",
                    f"generator row {worst} sums to {deviation:.6g} (tolerance "
                    f"{tol * scale:.3g}); CTMC generator rows must sum to zero — "
                    f"check the diagonal of that row",
                    location=f"row {worst}",
                )
            )
    return n, defects


def lint_generator(
    generator,
    tol: float = 1e-8,
    query: Optional[str] = None,
    stiffness_threshold: float = STIFFNESS_THRESHOLD,
    states: Optional[Sequence] = None,
) -> List[Diagnostic]:
    """Full lint of a CTMC generator: strict scan + structural warnings.

    Parameters
    ----------
    query:
        ``None`` (generic lint), ``"steady_state"`` or ``"transient"``.
        Under a steady-state query, absorbing states and reducibility
        are **escalated to errors** — the stationary vector either
        collapses onto the absorbing states or is not unique, so the
        query is ill-posed.  Under a transient query those structural
        findings are suppressed entirely (an absorbing reliability
        chain is the textbook transient model).
    states:
        Optional state labels for location strings.
    """
    n, diagnostics = generator_defects(generator, tol)
    if n <= 0 or any(d.code == "M004" for d in diagnostics):
        return diagnostics
    has_errors = bool(diagnostics)
    q = sparse.csr_matrix(generator, dtype=float)
    off = q - sparse.diags(q.diagonal())
    off.eliminate_zeros()
    positive = off.data[off.data > 0.0]
    max_rate = float(positive.max()) if positive.size else 0.0
    min_rate = float(positive.min()) if positive.size else 0.0

    structural = query in (None, "steady_state") and not has_errors
    escalate = ERROR if query == "steady_state" else ""
    if structural:
        # Absorbing states: no positive off-diagonal rate in the row.
        out_rate = np.asarray(off.maximum(0.0).sum(axis=1)).ravel()
        absorbing = np.flatnonzero(out_rate <= 0.0)
        if n > 1:
            for i in absorbing[:8]:
                diagnostics.append(
                    Diagnostic(
                        "M101",
                        f"{_state_label(states, int(i))} is absorbing (no outgoing "
                        f"rate); steady-state probability concentrates on the "
                        f"absorbing set",
                        location=_state_label(states, int(i)),
                        severity=escalate,
                    )
                )
            if absorbing.size > 8:
                diagnostics.append(
                    Diagnostic(
                        "M101",
                        f"{absorbing.size - 8} further absorbing states (of "
                        f"{absorbing.size} total)",
                        severity=escalate,
                    )
                )
        n_comp, labels = csgraph.connected_components(
            off, directed=True, connection="strong"
        )
        if n_comp > 1:
            diagnostics.append(
                Diagnostic(
                    "M102",
                    f"chain is not irreducible ({n_comp} strongly connected "
                    f"components); the stationary vector is not unique — solve "
                    f"the recurrent class(es) separately",
                    severity=escalate,
                )
            )
            # Transient components: their states leak probability and
            # carry zero stationary mass.
            adjacency = off > 0.0
            rows, cols = adjacency.nonzero()
            escaping = {
                int(labels[i]) for i, j in zip(rows, cols) if labels[i] != labels[j]
            }
            n_transient = int(np.isin(labels, list(escaping)).sum()) if escaping else 0
            if n_transient:
                diagnostics.append(
                    Diagnostic(
                        "M104",
                        f"{n_transient} state(s) lie in transient components "
                        f"(paths leave, none return); they carry zero "
                        f"steady-state probability",
                    )
                )
    if min_rate > 0.0 and max_rate / min_rate >= stiffness_threshold:
        diagnostics.append(
            Diagnostic(
                "M103",
                f"stiffness ratio {max_rate / min_rate:.3g} (max rate "
                f"{max_rate:.3g} / min rate {min_rate:.3g}) exceeds "
                f"{stiffness_threshold:.1g}",
            )
        )
    return diagnostics


def lint_ctmc(chain, query: Optional[str] = None) -> List[Diagnostic]:
    """Lint a :class:`~repro.markov.CTMC` (labelled locations)."""
    if chain.n_states == 0:
        return [Diagnostic("M004", "chain has no states")]
    return lint_generator(chain.generator(), query=query, states=chain.states)


def lint_mrgp(mrgp, query: Optional[str] = None) -> List[Diagnostic]:
    """Lint a :class:`~repro.markov.MarkovRegenerativeProcess`.

    Rate checks on the exponential transitions (M002/M003) plus the
    structural checks on the *union* graph of exponential moves and
    general-transition firings — a state is only absorbing (M101) /
    a component only escapes (M102) if neither kind of transition
    leaves it.
    """
    states = mrgp._states
    n = len(states)
    if n == 0:
        return [Diagnostic("M004", "MRGP has no states")]
    index = {s: i for i, s in enumerate(states)}
    diagnostics: List[Diagnostic] = []
    adjacency = np.zeros((n, n))
    for (src, dst), rate in sorted(mrgp._exp_rates.items(), key=repr):
        if not np.isfinite(rate):
            diagnostics.append(
                Diagnostic(
                    "M003",
                    f"exponential transition {src!r} -> {dst!r} has non-finite "
                    f"rate {rate!r}",
                    location=f"transition {src!r}->{dst!r}",
                )
            )
        elif rate < 0.0:
            diagnostics.append(
                Diagnostic(
                    "M002",
                    f"exponential transition {src!r} -> {dst!r} has negative "
                    f"rate {rate:.6g}; transition rates must be non-negative",
                    location=f"transition {src!r}->{dst!r}",
                )
            )
        elif rate > 0.0:
            adjacency[index[src], index[dst]] = 1.0
    for transition in mrgp._generals:
        for src, dst in transition.targets.items():
            adjacency[index[src], index[dst]] = 1.0
    if query in (None, "steady_state") and not diagnostics and n > 1:
        escalate = ERROR if query == "steady_state" else ""
        for i in np.flatnonzero(adjacency.sum(axis=1) == 0.0)[:8]:
            diagnostics.append(
                Diagnostic(
                    "M101",
                    f"{_state_label(states, int(i))} is absorbing (no exponential "
                    f"or general transition leaves it); steady-state probability "
                    f"concentrates on the absorbing set",
                    location=_state_label(states, int(i)),
                    severity=escalate,
                )
            )
        n_comp, _labels = csgraph.connected_components(
            sparse.csr_matrix(adjacency), directed=True, connection="strong"
        )
        if n_comp > 1:
            diagnostics.append(
                Diagnostic(
                    "M102",
                    f"MRGP is not irreducible ({n_comp} strongly connected "
                    f"components); the stationary vector is not unique — solve "
                    f"the recurrent class(es) separately",
                    severity=escalate,
                )
            )
    return diagnostics


def lint_dtmc(chain) -> List[Diagnostic]:
    """Lint a :class:`~repro.markov.DTMC` transition matrix (M110)."""
    if chain.n_states == 0:
        return [Diagnostic("M004", "chain has no states")]
    p = chain.transition_matrix(validate=False)
    states = chain.states
    diagnostics: List[Diagnostic] = []
    row_sums = p.sum(axis=1)
    for i in range(p.shape[0]):
        bad_sum = not np.isclose(row_sums[i], 1.0, atol=1e-9)
        negative = bool((p[i] < 0.0).any())
        if bad_sum or negative:
            reason = "has a negative entry" if negative else f"sums to {row_sums[i]:.6g}"
            diagnostics.append(
                Diagnostic(
                    "M110",
                    f"transition-matrix row of {_state_label(states, i)} {reason}; "
                    f"each row must be a probability distribution",
                    location=_state_label(states, i),
                )
            )
    return diagnostics
