"""Analyzer passes for hierarchical models and their import graphs.

H001 replicates the unknown-submodel / unknown-export checks that
:meth:`HierarchicalModel._import_graph` performs at *solve* time, so a
bad composition is caught before any submodel is built.  H002 flags
cyclic import graphs: they are legal (the fixed-point solver handles
them) but convergence is a property of the models, not the graph, so the
cycle is surfaced as an informational finding.
"""

from __future__ import annotations

from typing import List

from .diagnostics import Diagnostic

__all__ = ["lint_hierarchy"]


def lint_hierarchy(model) -> List[Diagnostic]:
    """Lint a :class:`~repro.core.HierarchicalModel`."""
    import networkx as nx

    diagnostics: List[Diagnostic] = []
    submodels = model._submodels
    graph = nx.DiGraph()
    for name in submodels:
        graph.add_node(name)
    for name, sub in submodels.items():
        for param, (source, export) in sub.imports.items():
            location = f"submodel {name!r} import {param!r}"
            if source not in submodels:
                diagnostics.append(
                    Diagnostic(
                        "H001",
                        f"submodel {name!r} imports parameter {param!r} from "
                        f"unknown submodel {source!r}",
                        location=location,
                    )
                )
                continue
            if export not in submodels[source].exports:
                diagnostics.append(
                    Diagnostic(
                        "H001",
                        f"submodel {name!r} imports unknown export {export!r} "
                        f"of {source!r} for parameter {param!r}",
                        location=location,
                    )
                )
                continue
            graph.add_edge(source, name, param=param)
    if not diagnostics and not nx.is_directed_acyclic_graph(graph):
        cycle = nx.find_cycle(graph)
        path = " -> ".join(u for u, _v in cycle) + f" -> {cycle[-1][1]}"
        diagnostics.append(
            Diagnostic(
                "H002",
                f"import graph is cyclic ({path}); the hierarchy will be "
                f"solved by fixed-point iteration, whose convergence depends "
                f"on the submodels being a contraction",
            )
        )
    return diagnostics
