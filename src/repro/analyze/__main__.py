"""Command-line model lint: ``python -m repro.analyze [case-study ...]``.

With no arguments every case study is analyzed; with names only those.
Exit status is non-zero when any error-severity diagnostic is found, or
when a warning is not acknowledged by the case-study module.  A module
acknowledges genuine findings with::

    __diagnostics_acknowledged__ = {"M101": "reliability chain is absorbing by design"}

Acknowledged findings are printed with an ``(acknowledged)`` tag and do
not affect the exit status.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from . import AnalysisReport, analyze

#: case-study name -> builder returning [(label, model, params, query), ...]
ModelSpec = Tuple[str, object, Optional[dict], Optional[str]]
CASE_STUDIES: Dict[str, Callable[[], List[ModelSpec]]] = {}


def _register(name: str):
    def deco(fn: Callable[[], List[ModelSpec]]):
        CASE_STUDIES[name] = fn
        return fn

    return deco


@_register("bladecenter")
def _bladecenter() -> List[ModelSpec]:
    from ..casestudies import bladecenter

    return [
        ("hierarchy", bladecenter.build_bladecenter(), None, None),
        ("compiled evaluator", bladecenter.evaluate_availability, {}, "steady_state"),
    ]


@_register("boeing")
def _boeing() -> List[ModelSpec]:
    from ..casestudies import boeing

    return [("fault tree", boeing.generate_boeing_style_tree(), None, None)]


@_register("cisco")
def _cisco() -> List[ModelSpec]:
    from ..casestudies import cisco

    params = cisco.CiscoParameters()
    return [
        ("router RBD", cisco.build_router(params), None, None),
        ("redundant processor", cisco.build_redundant_processor(params), None, "steady_state"),
        ("compiled evaluator", cisco.evaluate_availability, {}, "steady_state"),
    ]


@_register("rejuvenation")
def _rejuvenation() -> List[ModelSpec]:
    from ..casestudies import rejuvenation

    return [("MRGP (240 h timer)", rejuvenation.build_rejuvenation_mrgp(240.0), None, None)]


@_register("sip")
def _sip() -> List[ModelSpec]:
    from ..casestudies import sip

    return [("hierarchy", sip.build_sip_service(), None, None)]


@_register("sun")
def _sun() -> List[ModelSpec]:
    from ..casestudies import sun

    params = sun.SunParameters()
    return [
        ("immediate policy", sun.build_platform(params, "immediate"), None, "steady_state"),
        ("deferred policy", sun.build_platform(params, "deferred"), None, "steady_state"),
        ("compiled evaluator", sun.evaluate_availability, {}, "steady_state"),
    ]


@_register("telecom")
def _telecom() -> List[ModelSpec]:
    from ..casestudies import telecom

    return [("switch CTMC", telecom.build_switch(telecom.TelecomParameters()), None, "steady_state")]


@_register("wfs")
def _wfs() -> List[ModelSpec]:
    from ..casestudies import wfs

    params = wfs.WFSParameters()
    return [
        ("workstation pool", wfs.build_workstation_pool(params), None, "steady_state"),
        ("file server", wfs.build_file_server(params), None, "steady_state"),
    ]


def _acknowledged(case: str) -> Dict[str, str]:
    import importlib

    module = importlib.import_module(f"repro.casestudies.{case}")
    return dict(getattr(module, "__diagnostics_acknowledged__", {}))


def lint_case_study(case: str) -> Tuple[List[Tuple[str, AnalysisReport]], List[str]]:
    """Analyze every registered model of one case study.

    Returns ``(reports, failures)`` where ``failures`` lists the
    human-readable reasons the case study is not clean: any error, or
    any warning whose code the module does not acknowledge.
    """
    acknowledged = _acknowledged(case)
    reports: List[Tuple[str, AnalysisReport]] = []
    failures: List[str] = []
    for label, model, params, query in CASE_STUDIES[case]():
        report = analyze(model, params=params, query=query)
        reports.append((label, report))
        for diag in report.errors:
            failures.append(f"{case}/{label}: {diag.render()}")
        for diag in report.warnings:
            if diag.code not in acknowledged:
                failures.append(f"{case}/{label}: unacknowledged {diag.render()}")
    return reports, failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Static model diagnostics over the tutorial case studies.",
    )
    parser.add_argument(
        "cases",
        nargs="*",
        metavar="case-study",
        help=f"case studies to lint (default: all of {', '.join(sorted(CASE_STUDIES))})",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="only print failures and the final verdict"
    )
    args = parser.parse_args(argv)
    cases = args.cases or sorted(CASE_STUDIES)
    unknown = sorted(set(cases) - set(CASE_STUDIES))
    if unknown:
        parser.error(f"unknown case stud{'y' if len(unknown) == 1 else 'ies'}: {', '.join(unknown)}")

    all_failures: List[str] = []
    for case in cases:
        acknowledged = _acknowledged(case)
        reports, failures = lint_case_study(case)
        all_failures.extend(failures)
        for label, report in reports:
            n = len(report.diagnostics)
            status = "clean" if n == 0 else f"{n} finding(s)"
            if not args.quiet:
                print(f"{case}/{label} [{report.model_type}]: {status}")
                for diag in report:
                    tag = " (acknowledged)" if diag.code in acknowledged else ""
                    print(f"  {diag.render()}{tag}")
    if all_failures:
        print(f"\nFAIL: {len(all_failures)} unacknowledged finding(s)")
        for failure in all_failures:
            print(f"  {failure}")
        return 1
    if not args.quiet:
        print(f"\nOK: {len(cases)} case stud{'y' if len(cases) == 1 else 'ies'} clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
