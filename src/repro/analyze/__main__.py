"""Command-line model lint: ``python -m repro.analyze [case-study ...]``.

With no arguments every case study is analyzed; with names only those.
Net-backed models (Petri nets / SRNs) additionally get the structural
pass summary: P/T-invariant counts, the conservation laws, and the
P-invariant state-space bound — computed without building reachability.

``--json`` emits one machine-readable JSON document (codes, severities,
invariants, predicted bounds, exit code) on stdout for CI consumption.

Exit status (documented contract, also in ``docs/DIAGNOSTICS.md``):

* ``0`` — clean: no unacknowledged findings;
* ``1`` — warnings: unacknowledged warning-severity findings only;
* ``2`` — errors: at least one error-severity finding (or a usage
  error, argparse's own convention).

A case-study module acknowledges genuine findings with::

    __diagnostics_acknowledged__ = {"M101": "reliability chain is absorbing by design"}

Acknowledged findings are printed with an ``(acknowledged)`` tag and do
not affect the exit status.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import AnalysisReport, analyze
from .invariants import StructuralAnalysis, structural_analysis

#: case-study name -> builder returning [(label, model, params, query), ...]
ModelSpec = Tuple[str, object, Optional[dict], Optional[str]]
CASE_STUDIES: Dict[str, Callable[[], List[ModelSpec]]] = {}


def _register(name: str):
    def deco(fn: Callable[[], List[ModelSpec]]):
        CASE_STUDIES[name] = fn
        return fn

    return deco


@_register("bladecenter")
def _bladecenter() -> List[ModelSpec]:
    from ..casestudies import bladecenter

    return [
        ("hierarchy", bladecenter.build_bladecenter(), None, None),
        ("compiled evaluator", bladecenter.evaluate_availability, {}, "steady_state"),
    ]


@_register("boeing")
def _boeing() -> List[ModelSpec]:
    from ..casestudies import boeing

    return [("fault tree", boeing.generate_boeing_style_tree(), None, None)]


@_register("cisco")
def _cisco() -> List[ModelSpec]:
    from ..casestudies import cisco

    params = cisco.CiscoParameters()
    return [
        ("router RBD", cisco.build_router(params), None, None),
        ("redundant processor", cisco.build_redundant_processor(params), None, "steady_state"),
        ("compiled evaluator", cisco.evaluate_availability, {}, "steady_state"),
    ]


@_register("nfvchain")
def _nfvchain() -> List[ModelSpec]:
    from ..casestudies import nfvchain

    spec = nfvchain.NFVChainSpec()
    return [
        # The raw net: the structural pass sizes the chain without
        # building a single marking (the whole point of the pre-flight).
        ("service-chain net", nfvchain.build_nfv_net(spec), None, None),
        ("compiled evaluator", nfvchain.evaluate_availability, {}, "steady_state"),
    ]


@_register("rejuvenation")
def _rejuvenation() -> List[ModelSpec]:
    from ..casestudies import rejuvenation

    return [("MRGP (240 h timer)", rejuvenation.build_rejuvenation_mrgp(240.0), None, None)]


@_register("sip")
def _sip() -> List[ModelSpec]:
    from ..casestudies import sip

    return [("hierarchy", sip.build_sip_service(), None, None)]


@_register("sun")
def _sun() -> List[ModelSpec]:
    from ..casestudies import sun

    params = sun.SunParameters()
    return [
        ("immediate policy", sun.build_platform(params, "immediate"), None, "steady_state"),
        ("deferred policy", sun.build_platform(params, "deferred"), None, "steady_state"),
        ("compiled evaluator", sun.evaluate_availability, {}, "steady_state"),
    ]


@_register("telecom")
def _telecom() -> List[ModelSpec]:
    from ..casestudies import telecom

    return [("switch CTMC", telecom.build_switch(telecom.TelecomParameters()), None, "steady_state")]


@_register("wfs")
def _wfs() -> List[ModelSpec]:
    from ..casestudies import wfs

    params = wfs.WFSParameters()
    return [
        ("workstation pool", wfs.build_workstation_pool(params), None, "steady_state"),
        ("file server", wfs.build_file_server(params), None, "steady_state"),
    ]


def _acknowledged(case: str) -> Dict[str, str]:
    import importlib

    module = importlib.import_module(f"repro.casestudies.{case}")
    return dict(getattr(module, "__diagnostics_acknowledged__", {}))


def _net_of(model) -> Optional[object]:
    """The underlying PetriNet of a net-backed model, else None."""
    candidate = model
    srn = getattr(candidate, "srn", None)  # SRNDependabilityModel
    if srn is not None:
        candidate = srn
    net = getattr(candidate, "net", None)  # StochasticRewardNet
    if net is not None:
        candidate = net
    if hasattr(candidate, "_places") and hasattr(candidate, "_transitions"):
        return candidate
    return None


def lint_case_study(
    case: str,
) -> Tuple[List[Tuple[str, AnalysisReport]], List[Tuple[str, str]]]:
    """Analyze every registered model of one case study.

    Returns ``(reports, failures)`` where ``failures`` lists
    ``(severity, reason)`` pairs for everything that makes the case
    study not clean: any error, or any warning whose code the module
    does not acknowledge.
    """
    acknowledged = _acknowledged(case)
    reports: List[Tuple[str, AnalysisReport]] = []
    failures: List[Tuple[str, str]] = []
    for label, model, params, query in CASE_STUDIES[case]():
        report = analyze(model, params=params, query=query)
        reports.append((label, report))
        for diag in report.errors:
            failures.append(("error", f"{case}/{label}: {diag.render()}"))
        for diag in report.warnings:
            if diag.code not in acknowledged:
                failures.append(
                    ("warning", f"{case}/{label}: unacknowledged {diag.render()}")
                )
    return reports, failures


def _structural_of(case: str) -> Dict[str, StructuralAnalysis]:
    """Structural pass per net-backed model label of one case study."""
    out: Dict[str, StructuralAnalysis] = {}
    for label, model, _params, _query in CASE_STUDIES[case]():
        net = _net_of(model)
        if net is not None:
            out[label] = structural_analysis(net)
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Static model diagnostics over the tutorial case studies.",
        epilog="exit status: 0 clean, 1 unacknowledged warnings, 2 errors",
    )
    parser.add_argument(
        "cases",
        nargs="*",
        metavar="case-study",
        help=f"case studies to lint (default: all of {', '.join(sorted(CASE_STUDIES))})",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="only print failures and the final verdict"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON report on stdout (codes, severities,"
        " invariants, predicted bounds, exit_code) instead of the human listing",
    )
    args = parser.parse_args(argv)
    cases = args.cases or sorted(CASE_STUDIES)
    unknown = sorted(set(cases) - set(CASE_STUDIES))
    if unknown:
        parser.error(f"unknown case stud{'y' if len(unknown) == 1 else 'ies'}: {', '.join(unknown)}")

    all_failures: List[Tuple[str, str]] = []
    json_cases: Dict[str, List[Dict[str, Any]]] = {}
    for case in cases:
        acknowledged = _acknowledged(case)
        reports, failures = lint_case_study(case)
        structural = _structural_of(case)
        all_failures.extend(failures)
        json_models: List[Dict[str, Any]] = []
        for label, report in reports:
            analysis = structural.get(label)
            if args.json:
                entry = report.to_dict()
                entry["label"] = label
                entry["acknowledged"] = {
                    code: acknowledged[code]
                    for code in report.codes
                    if code in acknowledged
                }
                entry["structural"] = analysis.to_dict() if analysis else None
                json_models.append(entry)
                continue
            n = len(report.diagnostics)
            status = "clean" if n == 0 else f"{n} finding(s)"
            if not args.quiet:
                print(f"{case}/{label} [{report.model_type}]: {status}")
                for diag in report:
                    tag = " (acknowledged)" if diag.code in acknowledged else ""
                    print(f"  {diag.render()}{tag}")
                if analysis is not None:
                    for line in analysis.render().splitlines():
                        print(f"  | {line}")
        json_cases[case] = json_models

    n_errors = sum(1 for sev, _m in all_failures if sev == "error")
    n_warnings = sum(1 for sev, _m in all_failures if sev == "warning")
    exit_code = 2 if n_errors else (1 if n_warnings else 0)

    if args.json:
        print(
            json.dumps(
                {
                    "cases": json_cases,
                    "failures": [
                        {"severity": sev, "message": msg} for sev, msg in all_failures
                    ],
                    "n_errors": n_errors,
                    "n_warnings": n_warnings,
                    "exit_code": exit_code,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return exit_code

    if all_failures:
        print(f"\nFAIL: {len(all_failures)} unacknowledged finding(s)")
        for _sev, failure in all_failures:
            print(f"  {failure}")
        return exit_code
    if not args.quiet:
        print(f"\nOK: {len(cases)} case stud{'y' if len(cases) == 1 else 'ies'} clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
