"""Static model diagnostics: a lint pass over every model family.

:func:`analyze` inspects a model *before* it is solved and returns an
:class:`AnalysisReport` of :class:`Diagnostic` findings — non-conservative
generator rows, absorbing states under a steady-state query, structurally
dead Petri transitions, out-of-range probabilities, dangling hierarchy
imports, symbolic rate terms reading unsupplied parameters, and so on.
The full code table lives in :data:`~repro.analyze.diagnostics.CODES`
and ``docs/DIAGNOSTICS.md``.

The same checks are wired into the solver front doors and the batch
engine through a ``diagnostics=`` mode:

* ``"ignore"`` (default) — no lint, no overhead;
* ``"warn"`` — lint once, emit a :class:`~repro.exceptions.DiagnosticWarning`
  and ``analyze.*`` observability counters for any finding;
* ``"strict"`` — lint once, raise
  :class:`~repro.exceptions.ModelDiagnosticError` when any
  error-severity finding exists (the report rides on the exception).

Examples
--------
>>> from repro.markov import CTMC
>>> from repro.analyze import analyze
>>> chain = CTMC().add_transition("up", "down", 1e-4).add_transition("down", "up", 0.1)
>>> analyze(chain).ok
True
>>> chain = CTMC().add_transition("up", "down", 1e-4)     # no repair
>>> [d.code for d in analyze(chain, query="steady_state")]
['M101', 'M102', 'M104']
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..exceptions import DiagnosticWarning, ModelDefinitionError, ModelDiagnosticError
from ..obs.trace import get_tracer
from .compiled import lint_compiled_ctmc, lint_compiled_evaluator
from .diagnostics import (
    CODES,
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    AnalysisReport,
    Diagnostic,
)
from .hierarchy import lint_hierarchy
from .invariants import (
    Invariant,
    StructuralAnalysis,
    compute_p_invariants,
    compute_t_invariants,
    incidence_matrix,
    minimal_siphons,
    minimal_traps,
    place_bounds,
    state_space_bound,
    structural_analysis,
)
from .markov import generator_defects, lint_ctmc, lint_dtmc, lint_generator, lint_mrgp
from .petri import lint_petri_net, lint_srn
from .structure import lint_fault_tree, lint_rbd, lint_relgraph

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "CODES",
    "Diagnostic",
    "AnalysisReport",
    "ModelDiagnosticError",
    "DiagnosticWarning",
    "DIAGNOSTIC_MODES",
    "analyze",
    "run_diagnostics",
    "generator_defects",
    "lint_generator",
    "lint_ctmc",
    "lint_dtmc",
    "lint_mrgp",
    "lint_petri_net",
    "lint_srn",
    "lint_rbd",
    "lint_fault_tree",
    "lint_relgraph",
    "lint_hierarchy",
    "lint_compiled_ctmc",
    "lint_compiled_evaluator",
    "Invariant",
    "StructuralAnalysis",
    "structural_analysis",
    "incidence_matrix",
    "compute_p_invariants",
    "compute_t_invariants",
    "place_bounds",
    "state_space_bound",
    "minimal_siphons",
    "minimal_traps",
]

#: Valid values of every ``diagnostics=`` keyword in the library.
DIAGNOSTIC_MODES: Tuple[str, ...] = ("ignore", "warn", "strict")

Runner = Callable[[Any, Optional[Mapping[str, float]], Optional[str]], List[Diagnostic]]

#: (defining module, class name) -> (pass name, runner).  Dispatch walks
#: the model's MRO and matches on *names*, so no model package is ever
#: imported by the analyzer — if the class exists, its module is loaded.
_DISPATCH: Dict[Tuple[str, str], Tuple[str, Runner]] = {
    ("repro.markov.ctmc", "CTMC"): (
        "markov.ctmc",
        lambda m, p, q: lint_ctmc(m, query=q),
    ),
    ("repro.markov.ctmc", "MarkovDependabilityModel"): (
        "markov.ctmc",
        lambda m, p, q: lint_ctmc(m.chain, query=q),
    ),
    ("repro.markov.dtmc", "DTMC"): (
        "markov.dtmc",
        lambda m, p, q: lint_dtmc(m),
    ),
    ("repro.markov.mrgp", "MarkovRegenerativeProcess"): (
        "markov.mrgp",
        lambda m, p, q: lint_mrgp(m, query=q),
    ),
    ("repro.sparse.ctmc", "SparseCTMC"): (
        "markov.generator",
        lambda m, p, q: lint_generator(m.generator(), query=q),
    ),
    ("repro.petrinet.net", "PetriNet"): (
        "petri.net",
        lambda m, p, q: lint_petri_net(m),
    ),
    ("repro.petrinet.srn", "StochasticRewardNet"): (
        "petri.srn",
        lambda m, p, q: lint_srn(m, query=q),
    ),
    ("repro.petrinet.srn", "SRNDependabilityModel"): (
        "petri.srn",
        lambda m, p, q: lint_srn(m.srn, query=q),
    ),
    ("repro.nonstate.rbd", "ReliabilityBlockDiagram"): (
        "structure.rbd",
        lambda m, p, q: lint_rbd(m),
    ),
    ("repro.nonstate.faulttree", "FaultTree"): (
        "structure.faulttree",
        lambda m, p, q: lint_fault_tree(m),
    ),
    ("repro.nonstate.relgraph", "ReliabilityGraph"): (
        "structure.relgraph",
        lambda m, p, q: lint_relgraph(m),
    ),
    ("repro.core.hierarchy", "HierarchicalModel"): (
        "hierarchy",
        lambda m, p, q: lint_hierarchy(m),
    ),
    ("repro.compile.ctmc", "CompiledCTMC"): (
        "compiled.ctmc",
        lambda m, p, q: lint_compiled_ctmc(m, values=p, query=q),
    ),
    ("repro.compile.model", "CompiledEvaluator"): (
        "compiled.evaluator",
        lambda m, p, q: lint_compiled_evaluator(m, values=p, query=q),
    ),
}


def _is_generator_like(model) -> bool:
    import numpy as np
    from scipy import sparse

    return isinstance(model, (np.ndarray, list, tuple)) or sparse.issparse(model)


def analyze(
    model,
    params: Optional[Mapping[str, float]] = None,
    query: Optional[str] = None,
) -> AnalysisReport:
    """Run every matching lint pass over ``model`` and report the findings.

    Parameters
    ----------
    model:
        Any library model: a :class:`~repro.markov.CTMC` or
        :class:`~repro.markov.DTMC`, a raw generator matrix (dense or
        sparse), a :class:`~repro.petrinet.PetriNet` /
        :class:`~repro.petrinet.StochasticRewardNet`, an RBD, fault
        tree or reliability graph, a
        :class:`~repro.core.HierarchicalModel`, a compiled model, or a
        case-study evaluator function advertising ``__compiles_to__``.
    params:
        Parameter values for compiled models — enables the value-level
        checks (C001/C002) and the lint of the filled generator.
    query:
        ``None``, ``"steady_state"`` or ``"transient"``.  Adjusts the
        severity of structural findings: absorbing states and reducible
        chains are *errors* under a steady-state query and silent under
        a transient one.

    Raises
    ------
    ModelDefinitionError
        When no analyzer pass knows the model type.
    """
    if query not in (None, "steady_state", "transient"):
        raise ModelDefinitionError(
            f"query must be None, 'steady_state' or 'transient', got {query!r}"
        )
    model_type = type(model).__name__
    passes: List[str] = []
    diagnostics: List[Diagnostic] = []
    if _is_generator_like(model):
        passes.append("markov.generator")
        diagnostics = lint_generator(model, query=query)
    else:
        for cls in type(model).__mro__:
            entry = _DISPATCH.get((cls.__module__, cls.__name__))
            if entry is not None:
                pass_name, runner = entry
                passes.append(pass_name)
                diagnostics = runner(model, params, query)
                break
        else:
            if getattr(model, "__compiles_to__", None) is not None:
                from ..compile.model import compile_model

                compiled = compile_model(model)
                model_type = f"{model_type}->{type(compiled).__name__}"
                passes.append("compiled.evaluator")
                diagnostics = lint_compiled_evaluator(compiled, values=params, query=query)
            else:
                raise ModelDefinitionError(
                    f"analyze() has no lint pass for {model_type}; supported "
                    f"families: Markov chains and generators, Petri nets/SRNs, "
                    f"RBDs, fault trees, reliability graphs, hierarchies and "
                    f"compiled models"
                )
    report = AnalysisReport(model_type, diagnostics, passes)
    tracer = get_tracer()
    if tracer.enabled:
        with tracer.span("analyze.run", kind=model_type, passes=len(passes)) as span:
            span.set(
                n_errors=len(report.errors),
                n_warnings=len(report.warnings),
                n_infos=len(report.infos),
            )
        tracer.metrics.counter("analyze.runs", kind=model_type).inc()
        for diag in report:
            tracer.metrics.counter(
                "analyze.diagnostics", code=diag.code, severity=diag.severity
            ).inc()
    return report


def run_diagnostics(
    model,
    mode: str,
    params: Optional[Mapping[str, float]] = None,
    query: Optional[str] = None,
    where: str = "",
) -> Optional[AnalysisReport]:
    """Shared ``diagnostics=`` plumbing of the solver and engine front doors.

    ``"ignore"`` returns ``None`` without analyzing; ``"warn"`` analyzes
    and emits one :class:`~repro.exceptions.DiagnosticWarning` listing
    the findings; ``"strict"`` analyzes and raises
    :class:`~repro.exceptions.ModelDiagnosticError` on any error-severity
    finding.  Returns the report in the last two modes.
    """
    if mode not in DIAGNOSTIC_MODES:
        raise ModelDefinitionError(
            f"diagnostics must be one of {DIAGNOSTIC_MODES}, got {mode!r}"
        )
    if mode == "ignore":
        return None
    report = analyze(model, params=params, query=query)
    if mode == "strict":
        report.raise_if_errors()
    if report.diagnostics:
        prefix = f"{where}: " if where else ""
        warnings.warn(
            f"{prefix}model diagnostics found {len(report.errors)} error(s), "
            f"{len(report.warnings)} warning(s), {len(report.infos)} info(s) "
            f"in {report.model_type}: "
            + "; ".join(d.render() for d in report.diagnostics),
            DiagnosticWarning,
            stacklevel=3,
        )
    return report
