"""Analyzer passes for Petri nets and stochastic reward nets.

Everything here is *structural* — the checks read the net description
(arcs, initial tokens, weights, priorities) without building the
reachability graph, so they are safe to run on nets whose state space
would explode.  When an SRN has already built its reachability, the
generated CTMC is linted too.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .diagnostics import Diagnostic

__all__ = ["lint_petri_net", "lint_srn"]


def lint_petri_net(net) -> List[Diagnostic]:
    """Lint a :class:`~repro.petrinet.PetriNet` (P101–P105)."""
    diagnostics: List[Diagnostic] = []
    places = net._places
    transitions = net._transitions

    touched: Set[int] = set()
    fed_places: Set[int] = set()  # places some transition outputs into
    for t in transitions.values():
        for idx, _mult in t.inputs + t.inhibitors:
            touched.add(idx)
        for idx, _mult in t.outputs:
            touched.add(idx)
            fed_places.add(idx)

    for t in sorted(transitions.values(), key=lambda t: t.name):
        location = f"transition {t.name!r}"
        produced = sum(m for _i, m in t.outputs)
        consumed = sum(m for _i, m in t.inputs)
        if produced > consumed and not t.inhibitors and t.guard is None:
            gaining = sorted(
                {places[i].name for i, _m in t.outputs}
                - {places[i].name for i, _m in t.inputs}
            )
            into = f" into {', '.join(repr(p) for p in gaining)}" if gaining else ""
            diagnostics.append(
                Diagnostic(
                    "P101",
                    f"{location} produces {produced} token(s) but consumes "
                    f"{consumed} with no inhibitor arc or guard{into}; the net "
                    f"may be unbounded and reachability may not terminate",
                    location=location,
                )
            )
        # Structurally dead: an input place that starts short of the arc
        # multiplicity and that nothing ever feeds.
        for idx, mult in t.inputs:
            if places[idx].initial < mult and idx not in fed_places:
                diagnostics.append(
                    Diagnostic(
                        "P102",
                        f"{location} needs {mult} token(s) in place "
                        f"{places[idx].name!r}, which starts with "
                        f"{places[idx].initial} and is never replenished; the "
                        f"transition can never fire",
                        location=location,
                    )
                )
        if t.is_immediate and not callable(t.weight) and float(t.weight) == 0.0:
            diagnostics.append(
                Diagnostic(
                    "P104",
                    f"immediate {location} has weight 0; it can never be "
                    f"selected among competing immediates",
                    location=location,
                )
            )

    diagnostics.extend(_vanishing_loops(net))

    for i, place in enumerate(places):
        if i not in touched:
            diagnostics.append(
                Diagnostic(
                    "P105",
                    f"place {place.name!r} is connected to no arc; its token "
                    f"count can never change",
                    location=f"place {place.name!r}",
                )
            )
    return diagnostics


def _vanishing_loops(net) -> List[Diagnostic]:
    """P103: cycles among immediate transitions (t1 feeds a place t2 reads).

    A cycle of immediates *can* loop forever inside vanishing markings —
    the elimination step then diverges.  Guards or priorities usually
    break such loops in practice, so this stays a warning.
    """
    immediates = [t for t in net._transitions.values() if t.is_immediate]
    if not immediates:
        return []
    feeds: Dict[str, Set[str]] = {t.name: set() for t in immediates}
    for t1 in immediates:
        out_places = {idx for idx, _m in t1.outputs}
        for t2 in immediates:
            if out_places & {idx for idx, _m in t2.inputs}:
                feeds[t1.name].add(t2.name)

    # Iterative DFS cycle detection over the small immediate subgraph.
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {name: WHITE for name in feeds}
    on_cycle: List[str] = []
    for start in sorted(feeds):
        if colour[start] != WHITE:
            continue
        stack = [(start, iter(sorted(feeds[start])))]
        colour[start] = GREY
        while stack:
            node, children = stack[-1]
            for child in children:
                if colour[child] == GREY:
                    on_cycle.append(child)
                elif colour[child] == WHITE:
                    colour[child] = GREY
                    stack.append((child, iter(sorted(feeds[child]))))
                    break
            else:
                colour[node] = BLACK
                stack.pop()
    if not on_cycle:
        return []
    shown = ", ".join(repr(n) for n in sorted(set(on_cycle))[:6])
    return [
        Diagnostic(
            "P103",
            f"immediate transitions form a cycle (through {shown}); vanishing "
            f"markings may loop and the elimination step may not terminate "
            f"unless guards or priorities break the loop",
        )
    ]


def lint_srn(srn, query=None) -> List[Diagnostic]:
    """Lint a :class:`~repro.petrinet.StochasticRewardNet`.

    The net is always linted structurally.  The generated CTMC is linted
    only when the reachability graph has *already* been built — analysis
    must never be the thing that triggers a state-space explosion.
    """
    diagnostics = lint_petri_net(srn.net)
    if srn._reach is not None:
        from .markov import lint_ctmc

        diagnostics.extend(lint_ctmc(srn.chain, query=query))
    return diagnostics
