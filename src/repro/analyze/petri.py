"""Analyzer passes for Petri nets and stochastic reward nets.

Everything here is *structural* — the checks read the net description
(arcs, initial tokens, weights, priorities) without building the
reachability graph, so they are safe to run on nets whose state space
would explode.  Since the :mod:`repro.analyze.invariants` pass landed,
the lint is certificate-driven: where P/T-invariant analysis *proves*
unboundedness (P106), a conservation leak (P107), a dead transition
(P108) or an over-budget state space (P109), the proven code is
emitted; the heuristic codes P101/P102 survive only where no proof
exists either way (and say "heuristic" so the two cannot be confused).
When an SRN has already built its reachability, the generated CTMC is
linted too.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .diagnostics import Diagnostic
from .invariants import StructuralAnalysis, structural_analysis

__all__ = ["lint_petri_net", "lint_srn"]


def lint_petri_net(
    net,
    structural: Optional[bool] = None,
    max_markings: Optional[int] = None,
) -> List[Diagnostic]:
    """Lint a :class:`~repro.petrinet.PetriNet` (P101–P109).

    Parameters
    ----------
    structural:
        ``None``/``True`` runs the budgeted P/T-invariant pass and emits
        proven codes (P106–P108); ``False`` skips it and falls back to
        the pre-invariant heuristics (P101/P102, marked "heuristic").
        The pass also falls back automatically when its Farkas budget is
        exhausted — soundness over coverage.
    max_markings:
        When given, P109 fires if the invariant-implied state-space
        bound exceeds it (:func:`lint_srn` passes the SRN's configured
        budget here).
    """
    diagnostics: List[Diagnostic] = []
    places = net._places
    transitions = net._transitions

    touched: Set[int] = set()
    for t in transitions.values():
        for idx, _mult in t.inputs + t.inhibitors:
            touched.add(idx)
        for idx, _mult in t.outputs:
            touched.add(idx)

    analysis: Optional[StructuralAnalysis] = None
    if structural is not False:
        analysis = structural_analysis(net)
        if not analysis.complete:
            analysis = None

    if analysis is not None:
        diagnostics.extend(_structural_findings(net, analysis, max_markings))
    else:
        diagnostics.extend(_heuristic_findings(net))

    for t in sorted(transitions.values(), key=lambda t: t.name):
        if t.is_immediate and not callable(t.weight) and float(t.weight) == 0.0:
            location = f"transition {t.name!r}"
            diagnostics.append(
                Diagnostic(
                    "P104",
                    f"immediate {location} has weight 0; it can never be "
                    f"selected among competing immediates",
                    location=location,
                )
            )

    diagnostics.extend(_vanishing_loops(net))

    for i, place in enumerate(places):
        if i not in touched:
            diagnostics.append(
                Diagnostic(
                    "P105",
                    f"place {place.name!r} is connected to no arc; its token "
                    f"count can never change",
                    location=f"place {place.name!r}",
                )
            )
    return diagnostics


def _structural_findings(
    net,
    analysis: StructuralAnalysis,
    max_markings: Optional[int],
) -> List[Diagnostic]:
    """Certificate-backed findings: P106, P107, P108, P109 — plus the
    heuristic P101 for places the pass could not decide either way."""
    diagnostics: List[Diagnostic] = []

    for name in sorted(analysis.bounds):
        location = f"place {name!r}"
        if name in analysis.unbounded and analysis.bounds[name] is None:
            multiset = analysis.unbounded[name]
            fired = ", ".join(
                t if k == 1 else f"{k}×{t}" for t, k in sorted(multiset.items())
            )
            diagnostics.append(
                Diagnostic(
                    "P106",
                    f"{location} is structurally unbounded: repeatedly firing "
                    f"{{{fired}}} strictly pumps tokens into it and no guard or "
                    f"inhibitor arc can stop the multiset; reachability cannot "
                    f"terminate",
                    location=location,
                )
            )
        elif analysis.bounds[name] is None:
            diagnostics.append(
                Diagnostic(
                    "P101",
                    f"{location} has no structural token bound (no covering "
                    f"P-invariant, producers lack inhibitor arcs) and no "
                    f"pumping certificate either; heuristic — the net may be "
                    f"unbounded and reachability may not terminate",
                    location=location,
                )
            )

    for t_name, law, delta in analysis.conservation_violations:
        location = f"transition {t_name!r}"
        diagnostics.append(
            Diagnostic(
                "P107",
                f"{location} violates the conservation law {law.render()} "
                f"kept by every other transition (leaks {delta:+d} per "
                f"firing); check its arc multiplicities",
                location=location,
            )
        )

    for t_name in sorted(analysis.dead_transitions):
        location = f"transition {t_name!r}"
        diagnostics.append(
            Diagnostic(
                "P108",
                f"{location} can never fire: "
                f"{analysis.dead_transitions[t_name]}",
                location=location,
            )
        )

    if (
        max_markings is not None
        and analysis.state_bound is not None
        and analysis.state_bound > max_markings
    ):
        diagnostics.append(
            Diagnostic(
                "P109",
                f"P-invariant analysis predicts up to {analysis.state_bound} "
                f"reachable markings, above the max_markings budget of "
                f"{max_markings}; the sparse pre-flight will refuse to build "
                f"this net",
            )
        )
    return diagnostics


def _heuristic_findings(net) -> List[Diagnostic]:
    """Pre-invariant heuristics (P101/P102), used when the structural
    pass is disabled or its Farkas budget was exhausted."""
    diagnostics: List[Diagnostic] = []
    places = net._places
    fed_places: Set[int] = set()
    for t in net._transitions.values():
        for idx, _mult in t.outputs:
            fed_places.add(idx)

    for t in sorted(net._transitions.values(), key=lambda t: t.name):
        location = f"transition {t.name!r}"
        produced = sum(m for _i, m in t.outputs)
        consumed = sum(m for _i, m in t.inputs)
        if produced > consumed and not t.inhibitors and t.guard is None:
            gaining = sorted(
                {places[i].name for i, _m in t.outputs}
                - {places[i].name for i, _m in t.inputs}
            )
            into = f" into {', '.join(repr(p) for p in gaining)}" if gaining else ""
            diagnostics.append(
                Diagnostic(
                    "P101",
                    f"{location} produces {produced} token(s) but consumes "
                    f"{consumed} with no inhibitor arc or guard{into}; "
                    f"heuristic — the net may be unbounded and reachability "
                    f"may not terminate",
                    location=location,
                )
            )
        for idx, mult in t.inputs:
            if places[idx].initial < mult and idx not in fed_places:
                diagnostics.append(
                    Diagnostic(
                        "P102",
                        f"{location} needs {mult} token(s) in place "
                        f"{places[idx].name!r}, which starts with "
                        f"{places[idx].initial} and is never replenished; "
                        f"heuristic — the transition looks dead (the "
                        f"structural pass would report P108 with a proof)",
                        location=location,
                    )
                )
    return diagnostics


def _vanishing_loops(net) -> List[Diagnostic]:
    """P103: cycles among immediate transitions (t1 feeds a place t2 reads).

    A cycle of immediates *can* loop forever inside vanishing markings —
    the elimination step then diverges.  Guards or priorities usually
    break such loops in practice, so this stays a warning.
    """
    immediates = [t for t in net._transitions.values() if t.is_immediate]
    if not immediates:
        return []
    feeds: Dict[str, Set[str]] = {t.name: set() for t in immediates}
    for t1 in immediates:
        out_places = {idx for idx, _m in t1.outputs}
        for t2 in immediates:
            if out_places & {idx for idx, _m in t2.inputs}:
                feeds[t1.name].add(t2.name)

    # Iterative DFS cycle detection over the small immediate subgraph.
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {name: WHITE for name in feeds}
    on_cycle: List[str] = []
    for start in sorted(feeds):
        if colour[start] != WHITE:
            continue
        stack = [(start, iter(sorted(feeds[start])))]
        colour[start] = GREY
        while stack:
            node, children = stack[-1]
            for child in children:
                if colour[child] == GREY:
                    on_cycle.append(child)
                elif colour[child] == WHITE:
                    colour[child] = GREY
                    stack.append((child, iter(sorted(feeds[child]))))
                    break
            else:
                colour[node] = BLACK
                stack.pop()
    if not on_cycle:
        return []
    shown = ", ".join(repr(n) for n in sorted(set(on_cycle))[:6])
    return [
        Diagnostic(
            "P103",
            f"immediate transitions form a cycle (through {shown}); vanishing "
            f"markings may loop and the elimination step may not terminate "
            f"unless guards or priorities break the loop",
        )
    ]


def lint_srn(srn, query=None) -> List[Diagnostic]:
    """Lint a :class:`~repro.petrinet.StochasticRewardNet`.

    The net is always linted structurally, with the SRN's configured
    ``max_markings`` budget so P109 can flag nets the pre-flight will
    refuse.  The generated CTMC is linted only when the reachability
    graph has *already* been built — analysis must never be the thing
    that triggers a state-space explosion.
    """
    diagnostics = lint_petri_net(srn.net, max_markings=srn._max_markings)
    if srn._reach is not None:
        from .markov import lint_ctmc

        diagnostics.extend(lint_ctmc(srn.chain, query=query))
    return diagnostics
