"""Diagnostic records and the :class:`AnalysisReport` container.

A *diagnostic* is one finding of the static model lint: a stable code
(``M001``), a severity, a location path inside the model, a human
message, and a fix hint.  An :class:`AnalysisReport` collects the
diagnostics of one :func:`repro.analyze.analyze` pass and implements the
library-wide :class:`~repro.obs.Observation` protocol (``to_dict`` /
``summary``), so reports attach to trace spans and print like every
other instrumentation object.

Codes are grouped by model family:

* ``Mxxx`` — Markov chains (CTMC / DTMC generators)
* ``Pxxx`` — Petri nets / stochastic reward nets
* ``Sxxx`` — structure models (RBDs, fault trees, reliability graphs)
* ``Hxxx`` — hierarchical / fixed-point compositions
* ``Cxxx`` — compiled models (symbolic rate terms)
* ``Uxxx`` — engine/evaluator-level pre-flight checks

``M0xx``-style low numbers are errors (the model cannot be trusted),
``x1xx`` are warnings (legal but suspicious), and the remainder are
informational.  The full table with fix hints lives in
``docs/DIAGNOSTICS.md`` and in :data:`CODES`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..exceptions import ModelDiagnosticError

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "CODES",
    "Diagnostic",
    "AnalysisReport",
]

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Severities in decreasing order of importance.
SEVERITIES: Tuple[str, ...] = (ERROR, WARNING, INFO)

#: code -> (severity, one-line meaning, fix hint).  The canonical table;
#: ``docs/DIAGNOSTICS.md`` renders it and the seeded-defect test suite
#: walks it to assert every code is demonstrable.
CODES: Dict[str, Tuple[str, str, str]] = {
    # ---- Markov (generators, CTMC/DTMC) --------------------------------
    "M001": (
        ERROR,
        "generator row does not sum to zero (non-conservative)",
        "fix the diagonal of the named row: q[i,i] must equal -sum of the off-diagonal rates",
    ),
    "M002": (
        ERROR,
        "negative off-diagonal transition rate",
        "transition rates must be non-negative; check the sign of the named rate",
    ),
    "M003": (
        ERROR,
        "non-finite (NaN/Inf) generator entry",
        "a rate expression produced NaN or Inf; check for 0/0 or overflow in the rate parameters",
    ),
    "M004": (
        ERROR,
        "generator is not square / chain has no states",
        "build the chain before solving; a generator must be a square matrix with >= 1 state",
    ),
    "M101": (
        WARNING,
        "absorbing state present; steady-state mass concentrates there",
        "for availability models add a repair transition out of the state; for reliability/MTTA"
        " models this is intentional — use transient or absorption analysis, not steady state",
    ),
    "M102": (
        WARNING,
        "chain is not irreducible (multiple strongly connected components)",
        "the stationary vector is not unique; solve the recurrent class(es) separately or add"
        " the missing transitions",
    ),
    "M103": (
        WARNING,
        "stiffness ratio max_rate/min_rate exceeds 1e8",
        "prefer the GTH solver (method='gth' or 'auto'); naive elimination and ODE integration"
        " lose precision at this spread",
    ),
    "M104": (
        INFO,
        "transient-only strongly connected component (no return path)",
        "states in this component carry zero stationary probability; drop them for steady-state"
        " queries to shrink the model",
    ),
    "M110": (
        ERROR,
        "DTMC row is not a probability distribution",
        "each transition-matrix row must be non-negative and sum to 1; renormalize the named row",
    ),
    # ---- Petri nets / SRNs ---------------------------------------------
    "P101": (
        WARNING,
        "place may be unbounded (heuristic; no structural proof either way)",
        "no P-invariant covers the place and no pumping certificate exists — the structural"
        " pass cannot decide; add an inhibitor arc or a complementary place to make"
        " boundedness provable (P-invariant analysis then silences this warning)",
    ),
    "P102": (
        WARNING,
        "possibly dead transition (heuristic; structural pass unavailable)",
        "the transition consumes from a place that never receives tokens; wire the missing"
        " output arc or drop the transition — when the structural pass runs, proven cases"
        " are reported as P108 instead",
    ),
    "P103": (
        WARNING,
        "possible vanishing loop among immediate transitions",
        "immediate transitions form a token cycle that timed transitions never interrupt;"
        " add a priority/guard or make one transition timed to avoid a vanishing livelock",
    ),
    "P104": (
        WARNING,
        "immediate transition with zero weight",
        "a zero weight can make the vanishing-marking resolution degenerate; give every"
        " competing immediate transition a positive weight",
    ),
    "P105": (
        INFO,
        "isolated place (no arcs touch it)",
        "the place never changes marking and only inflates state descriptions; remove it or"
        " connect it",
    ),
    "P106": (
        WARNING,
        "place is structurally unbounded (proven by a pumping certificate)",
        "the message lists a repeatable guard-free transition multiset that strictly pumps"
        " tokens into the place — reachability cannot terminate; add an inhibitor arc or a"
        " complementary place to close the conservation law",
    ),
    "P107": (
        WARNING,
        "transition breaks a conservation law the rest of the net maintains",
        "without the named transition the other transitions conserve a weighted token sum;"
        " check the transition's arc multiplicities — a missing or doubled arc is the usual"
        " cause of the leak",
    ),
    "P108": (
        WARNING,
        "provably dead transition (structural certificate)",
        "the proof is in the message (initially-empty siphon, contradictory inhibitor arc, or"
        " an input demand above the place's proven bound); wire the missing arc or drop the"
        " transition",
    ),
    "P109": (
        WARNING,
        "predicted state-space bound exceeds the max_markings budget",
        "P-invariant analysis bounds the reachable markings above max_markings, so the sparse"
        " pre-flight will refuse to build; raise max_markings, shrink the net, or pass"
        " preflight=False to attempt the build anyway",
    ),
    # ---- structure models (RBD / fault tree / relgraph) ----------------
    "S001": (
        ERROR,
        "component probability outside [0, 1]",
        "fixed component/event probabilities must be in [0, 1]; check the named component",
    ),
    "S002": (
        ERROR,
        "k-of-n with k out of range",
        "a k-of-n block/gate needs 1 <= k <= n; fix k or the child list",
    ),
    "S003": (
        WARNING,
        "gate or composite block with a single input",
        "a 1-input AND/OR/series/parallel is an identity; inline the child or add the missing"
        " inputs",
    ),
    "S004": (
        INFO,
        "repeated components/basic events (BDD evaluation engaged)",
        "repeated events make compositional products invalid; the exact BDD path is used —"
        " variable order follows first occurrence, so group repeats for smaller BDDs",
    ),
    "S005": (
        WARNING,
        "reliability-graph edge cannot lie on any source-target path",
        "the edge (or its component) never affects connectivity; check the arc direction or"
        " remove it",
    ),
    "S006": (
        INFO,
        "basic event has no fixed probability",
        "quantification will need an explicit q= mapping or per-component distributions",
    ),
    # ---- hierarchy / fixed point ---------------------------------------
    "H001": (
        ERROR,
        "import references an unknown submodel or export",
        "declare the exporting submodel first or fix the (submodel, export) spelling in"
        " imports=",
    ),
    "H002": (
        INFO,
        "cyclic import graph (fixed-point iteration will run)",
        "convergence is only guaranteed for contraction maps; seed initial_guesses and"
        " consider damping if the iteration oscillates",
    ),
    # ---- compiled models -----------------------------------------------
    "C001": (
        ERROR,
        "symbolic rate term references an unsupplied parameter",
        "add the named parameter to the sweep assignment or bake it in as a Const term",
    ),
    "C002": (
        ERROR,
        "symbolic rate term evaluates to an invalid rate",
        "the term produced a non-positive or non-finite rate for the supplied values; check"
        " the parameter ranges",
    ),
    # ---- engine pre-flight ---------------------------------------------
    "U001": (
        ERROR,
        "batch assignment uses a parameter the evaluator does not accept",
        "the compiled evaluator advertises its parameter names; fix the assignment key or"
        " sweep the uncompiled function",
    ),
}


def _known_severity(code: str, severity: Optional[str]) -> str:
    if severity is not None:
        return severity
    try:
        return CODES[code][0]
    except KeyError:
        raise ValueError(f"unknown diagnostic code {code!r} and no explicit severity") from None


def _known_hint(code: str, hint: Optional[str]) -> str:
    if hint is not None:
        return hint
    entry = CODES.get(code)
    return entry[2] if entry is not None else ""


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a model lint pass.

    Attributes
    ----------
    code:
        Stable identifier (``"M001"``); see :data:`CODES`.
    severity:
        ``"error"`` / ``"warning"`` / ``"info"``.  Defaults to the
        registered severity of ``code``.
    location:
        Path inside the model (``"row 3"``, ``"place 'queue'"``,
        ``"gate AndGate[2]"``); empty when the finding is model-global.
    message:
        Human-readable description of this specific finding.
    hint:
        How to fix it.  Defaults to the registered hint of ``code``.
    """

    code: str
    message: str
    location: str = ""
    severity: str = field(default="")
    hint: str = field(default="")

    def __post_init__(self) -> None:
        object.__setattr__(self, "severity", _known_severity(self.code, self.severity or None))
        object.__setattr__(self, "hint", _known_hint(self.code, self.hint or None))
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}; use one of {SEVERITIES}")

    @property
    def is_error(self) -> bool:
        """True for error-severity findings."""
        return self.severity == ERROR

    def render(self) -> str:
        """One-line ``CODE severity [location] message`` form."""
        where = f" [{self.location}]" if self.location else ""
        return f"{self.code} {self.severity}{where}: {self.message}"

    def __str__(self) -> str:
        return self.render()


class AnalysisReport:
    """All diagnostics of one :func:`repro.analyze.analyze` pass.

    Implements the :class:`~repro.obs.Observation` protocol; iterable
    and indexable like a list of :class:`Diagnostic`.

    Attributes
    ----------
    model_type:
        Class name of the analyzed model.
    diagnostics:
        Findings in discovery order.
    passes:
        Names of the analyzer passes that ran (one per matching
        registered analyzer).
    """

    def __init__(
        self,
        model_type: str,
        diagnostics: Optional[Iterable[Diagnostic]] = None,
        passes: Optional[Iterable[str]] = None,
    ):
        self.model_type = model_type
        self.diagnostics: List[Diagnostic] = list(diagnostics or [])
        self.passes: List[str] = list(passes or [])

    # ----------------------------------------------------------- filtering
    @property
    def errors(self) -> List[Diagnostic]:
        """Error-severity findings."""
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        """Warning-severity findings."""
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        """Info-severity findings."""
        return [d for d in self.diagnostics if d.severity == INFO]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was found."""
        return not self.errors

    @property
    def codes(self) -> List[str]:
        """Distinct codes found, in first-occurrence order."""
        return list(dict.fromkeys(d.code for d in self.diagnostics))

    def filter(
        self, severity: Optional[str] = None, code: Optional[str] = None
    ) -> List[Diagnostic]:
        """Findings matching a severity and/or code."""
        out = self.diagnostics
        if severity is not None:
            out = [d for d in out if d.severity == severity]
        if code is not None:
            out = [d for d in out if d.code == code]
        return list(out)

    # --------------------------------------------------------- aggregation
    def extend(self, diagnostics: Iterable[Diagnostic]) -> "AnalysisReport":
        """Append findings (used by multi-pass analysis); returns self."""
        self.diagnostics.extend(diagnostics)
        return self

    def raise_if_errors(self) -> "AnalysisReport":
        """Raise :class:`~repro.exceptions.ModelDiagnosticError` on errors.

        The strict-mode contract: the exception message lists every
        error finding, and the full report travels on the exception's
        ``report`` attribute.  Returns self when clean.
        """
        errors = self.errors
        if errors:
            listing = "; ".join(d.render() for d in errors)
            raise ModelDiagnosticError(
                f"model diagnostics found {len(errors)} error(s) in "
                f"{self.model_type}: {listing}",
                report=self,
            )
        return self

    # -------------------------------------------------------- observation
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe nested dict (the :class:`~repro.obs.Observation` form)."""
        return {
            "model_type": self.model_type,
            "ok": self.ok,
            "passes": list(self.passes),
            "n_errors": len(self.errors),
            "n_warnings": len(self.warnings),
            "n_infos": len(self.infos),
            "diagnostics": [asdict(d) for d in self.diagnostics],
        }

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline numbers (for table printing)."""
        return {
            "n_diagnostics": float(len(self.diagnostics)),
            "n_errors": float(len(self.errors)),
            "n_warnings": float(len(self.warnings)),
            "n_infos": float(len(self.infos)),
            "n_passes": float(len(self.passes)),
        }

    def render(self) -> str:
        """Multi-line human listing (the CLI output form)."""
        lines = [
            f"{self.model_type}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.infos)} info(s)"
        ]
        lines.extend(f"  {d.render()}" for d in self.diagnostics)
        return "\n".join(lines)

    # ------------------------------------------------------------ dunders
    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __getitem__(self, index):
        return self.diagnostics[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AnalysisReport({self.model_type!r}, {len(self.errors)}E/"
            f"{len(self.warnings)}W/{len(self.infos)}I)"
        )
