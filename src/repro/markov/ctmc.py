"""Continuous-time Markov chains (system S9 in DESIGN.md).

State-space models capture what non-state-space models cannot: shared
repair facilities, imperfect coverage, warm/cold spares, operational
dependencies.  The price is state-space explosion — benchmark E06
measures it — and this module is the solution engine those models rest
on: steady-state (GTH / sparse-direct / power), transient (uniformization
/ ODE), cumulative transient, and absorbing-chain analysis (MTTA,
absorption probabilities).

States are arbitrary hashable labels; matrices are built lazily and
cached.

Examples
--------
A two-unit parallel system with a single shared repair facility::

    >>> from repro.markov import CTMC
    >>> chain = CTMC()
    >>> lam, mu = 0.001, 0.1
    >>> _ = chain.add_transition(2, 1, 2 * lam)   # either unit fails
    >>> _ = chain.add_transition(1, 0, lam)       # remaining unit fails
    >>> _ = chain.add_transition(1, 2, mu)        # single repair crew
    >>> _ = chain.add_transition(0, 1, mu)
    >>> pi = chain.steady_state()
    >>> round(pi[2] + pi[1], 8)                   # availability (2 or 1 up)
    0.99980396
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse

from .._validation import check_rate
from ..core.model import DependabilityModel
from ..exceptions import ModelDefinitionError, SolverError, StateSpaceError
from ..obs.trace import get_tracer
from .solvers import (
    cumulative_uniformization,
    gth_solve,
    solve_transient,
    steady_state_direct,
    steady_state_power,
    transient_ode,
)

__all__ = ["CTMC", "MarkovDependabilityModel"]

State = Hashable


class CTMC:
    """A finite continuous-time Markov chain with labelled states.

    Transitions are added with :meth:`add_transition`; parallel additions
    between the same pair of states accumulate.  All analysis methods
    accept and return state labels, never raw indices.
    """

    def __init__(self, states: Iterable[State] = ()):
        self._states: List[State] = []
        self._index: Dict[State, int] = {}
        self._rates: Dict[Tuple[int, int], float] = {}
        # COO triplet buffers kept in sync with _rates: one slot per
        # distinct (i, j) pair in first-insertion order, so generator()
        # assembles the CSR matrix from flat arrays in O(nnz) instead of
        # re-walking the dict on every build-modify-build cycle.
        self._coo_pos: Dict[Tuple[int, int], int] = {}
        self._coo_rows: List[int] = []
        self._coo_cols: List[int] = []
        self._coo_vals: List[float] = []
        self._generator_cache: Optional[sparse.csr_matrix] = None
        for state in states:
            self.add_state(state)

    # --------------------------------------------------------------- build
    def add_state(self, state: State) -> "CTMC":
        """Register a state (no-op when already present)."""
        if state not in self._index:
            self._index[state] = len(self._states)
            self._states.append(state)
            self._generator_cache = None
        return self

    def add_transition(self, source: State, target: State, rate: float) -> "CTMC":
        """Add (or accumulate) a transition ``source → target`` at ``rate``."""
        if source == target:
            raise ModelDefinitionError("self-loops are meaningless in a CTMC")
        check_rate(rate)
        self.add_state(source)
        self.add_state(target)
        key = (self._index[source], self._index[target])
        value = self._rates.get(key, 0.0) + float(rate)
        self._rates[key] = value
        pos = self._coo_pos.get(key)
        if pos is None:
            self._coo_pos[key] = len(self._coo_rows)
            self._coo_rows.append(key[0])
            self._coo_cols.append(key[1])
            self._coo_vals.append(value)
        else:
            self._coo_vals[pos] = value
        self._generator_cache = None
        return self

    # -------------------------------------------------------------- access
    @property
    def states(self) -> List[State]:
        """State labels in index order."""
        return list(self._states)

    @property
    def n_states(self) -> int:
        """Number of states."""
        return len(self._states)

    def index_of(self, state: State) -> int:
        """Index of a state label."""
        try:
            return self._index[state]
        except KeyError:
            raise ModelDefinitionError(f"unknown state: {state!r}") from None

    def rate(self, source: State, target: State) -> float:
        """Transition rate between two states (0 when absent)."""
        return self._rates.get((self.index_of(source), self.index_of(target)), 0.0)

    def exit_rate(self, state: State) -> float:
        """Total rate out of ``state``."""
        i = self.index_of(state)
        return sum(rate for (src, _), rate in self._rates.items() if src == i)

    def generator(self) -> sparse.csr_matrix:
        """The infinitesimal generator ``Q`` as a sparse CSR matrix."""
        if self._generator_cache is None:
            n = self.n_states
            if n == 0:
                raise ModelDefinitionError("chain has no states")
            nnz = len(self._coo_rows)
            rows = np.empty(nnz + n, dtype=np.int64)
            cols = np.empty(nnz + n, dtype=np.int64)
            vals = np.empty(nnz + n, dtype=float)
            rows[:nnz] = self._coo_rows
            cols[:nnz] = self._coo_cols
            vals[:nnz] = self._coo_vals
            diag = np.zeros(n)
            # In-order subtraction matches the historical per-entry
            # `diag[i] -= rate` loop bit for bit.
            np.subtract.at(diag, rows[:nnz], vals[:nnz])
            rows[nnz:] = np.arange(n)
            cols[nnz:] = np.arange(n)
            vals[nnz:] = diag
            self._generator_cache = sparse.csr_matrix(
                (vals, (rows, cols)), shape=(n, n), dtype=float
            )
        return self._generator_cache

    def absorbing_states(self) -> List[State]:
        """States with no outgoing transitions."""
        sources = {i for (i, _) in self._rates}
        return [state for state, i in self._index.items() if i not in sources]

    def _initial_vector(self, initial) -> np.ndarray:
        n = self.n_states
        vec = np.zeros(n)
        if isinstance(initial, Mapping):
            total = 0.0
            for state, prob in initial.items():
                vec[self.index_of(state)] = float(prob)
                total += float(prob)
            if not math.isclose(total, 1.0, abs_tol=1e-9):
                raise ModelDefinitionError(f"initial probabilities sum to {total}, expected 1")
        else:
            vec[self.index_of(initial)] = 1.0
        return vec

    # ------------------------------------------------------- steady state
    def steady_state(
        self, method: str = "gth", diagnostics: str = "ignore"
    ) -> Dict[State, float]:
        """Stationary distribution of an irreducible chain.

        Parameters
        ----------
        method:
            ``"gth"`` (default, dense, stiffness-proof), ``"direct"``
            (sparse LU), ``"power"`` (power iteration on the uniformized
            chain), or ``"auto"`` — the diagnosed fallback chain of
            :func:`~repro.markov.fallback.solve_steady_state` (use
            :meth:`steady_state_report` to also see which stage won and
            why).
        diagnostics:
            ``"ignore"`` (default), ``"warn"`` or ``"strict"`` — run the
            :mod:`repro.analyze` lint pass (steady-state query, so
            absorbing states and reducibility are errors under
            ``"strict"``) before solving.
        """
        if diagnostics != "ignore":
            from ..analyze import run_diagnostics

            run_diagnostics(
                self, diagnostics, query="steady_state", where="CTMC.steady_state"
            )
        q = self.generator()
        if method == "auto":
            from .fallback import solve_steady_state

            pi = solve_steady_state(q, method="auto").pi
            return {state: float(pi[i]) for state, i in self._index.items()}
        kernels = {
            "gth": lambda: gth_solve(q.toarray()),
            "direct": lambda: steady_state_direct(q),
            "power": lambda: steady_state_power(q),
        }
        if method not in kernels:
            from .registry import STEADY_STATE

            if method in STEADY_STATE:
                # Registry backends (gmres, bicgstab, third-party) run
                # through the guarded fallback front door as a
                # single-stage chain.
                from .fallback import solve_steady_state

                pi = solve_steady_state(q, method=method).pi
                return {state: float(pi[i]) for state, i in self._index.items()}
            raise SolverError(f"unknown steady-state method {method!r}")
        tracer = get_tracer()
        with tracer.span(
            "solver.steady_state", method=method, n_states=self.n_states
        ):
            with tracer.span("solver.stage", method=method) as span:
                pi = kernels[method]()
                span.set(success=True)
            tracer.metrics.counter("solver.stage.success", method=method).inc()
        return {state: float(pi[i]) for state, i in self._index.items()}

    def steady_state_report(self, method: str = None, strategy: str = None, **kwargs):
        """Stationary solve with full fallback diagnostics.

        Runs :func:`~repro.markov.fallback.solve_steady_state` on the
        generator and returns its :class:`~repro.markov.fallback.SolverReport`
        (``report.pi`` follows :attr:`states` order; extra keyword
        arguments — ``order``, ``residual_tol``, ``stages``, ... — are
        forwarded).  ``method`` defaults to ``"auto"``; the pre-unification
        spelling ``strategy=`` keeps working with a
        :class:`DeprecationWarning`.
        """
        from .fallback import resolve_method_kwarg, solve_steady_state

        method = resolve_method_kwarg(method, strategy, "steady_state_report")
        return solve_steady_state(self.generator(), method=method, **kwargs)

    def expected_reward_rate(
        self, rewards: Mapping[State, float], method: str = "gth"
    ) -> float:
        """Steady-state expected reward rate ``Σ_s r(s) π_s``."""
        pi = self.steady_state(method=method)
        return sum(float(rewards.get(state, 0.0)) * prob for state, prob in pi.items())

    # ---------------------------------------------------------- transient
    def transient(
        self,
        times,
        initial,
        method: str = "uniformization",
        tol: float = 1e-10,
        diagnostics: str = "ignore",
    ) -> "np.ndarray | Dict[State, float]":
        """State probabilities at one or many time points.

        Parameters
        ----------
        times:
            Scalar time (returns a dict state → probability) or an array
            of times (returns an array of shape ``(len(times), n)`` whose
            columns follow :attr:`states` order).
        initial:
            A state label or a mapping state → probability.
        method:
            ``"uniformization"`` (default, error-controlled), ``"ode"``
            (``scipy.integrate.solve_ivp``, the E09 ablation), or
            ``"auto"`` — delegate the choice to
            :func:`~repro.markov.solvers.solve_transient`.
        diagnostics:
            ``"ignore"`` (default), ``"warn"`` or ``"strict"`` — run the
            :mod:`repro.analyze` lint pass (transient query: absorbing
            states and reducibility are fine) before solving.
        """
        if diagnostics != "ignore":
            from ..analyze import run_diagnostics

            run_diagnostics(
                self, diagnostics, query="transient", where="CTMC.transient"
            )
        scalar = np.isscalar(times)
        ts = np.atleast_1d(np.asarray(times, dtype=float))
        p0 = self._initial_vector(initial)
        q = self.generator()
        if method in ("auto", "uniformization"):
            probs = solve_transient(q, p0, ts, method=method, tol=tol)
        elif method == "ode":
            probs = self._transient_ode(q, p0, ts, tol)
        else:
            from .registry import TRANSIENT

            if method not in TRANSIENT:
                raise SolverError(f"unknown transient method {method!r}")
            probs = solve_transient(q, p0, ts, method=method, tol=tol)
        if scalar:
            return {state: float(probs[0, i]) for state, i in self._index.items()}
        return probs

    @staticmethod
    def _transient_ode(
        q: sparse.spmatrix, p0: np.ndarray, ts: np.ndarray, tol: float
    ) -> np.ndarray:
        return transient_ode(q, p0, ts, tol=tol)

    def cumulative_transient(self, times, initial, tol: float = 1e-10) -> np.ndarray:
        """Expected total time spent in each state during ``[0, t]``.

        Returns an array of shape ``(len(times), n)`` (row sums = t).
        """
        ts = np.atleast_1d(np.asarray(times, dtype=float))
        p0 = self._initial_vector(initial)
        return cumulative_uniformization(self.generator(), p0, ts, tol=tol)

    # ----------------------------------------------------------- absorbing
    def _split_transient_absorbing(
        self, absorbing: Optional[Iterable[State]] = None
    ) -> Tuple[List[int], List[int]]:
        if absorbing is None:
            absorbing_set = {self._index[s] for s in self.absorbing_states()}
        else:
            absorbing_set = {self.index_of(s) for s in absorbing}
        transient = [i for i in range(self.n_states) if i not in absorbing_set]
        return transient, sorted(absorbing_set)

    def mean_time_to_absorption(
        self, initial, absorbing: Optional[Iterable[State]] = None
    ) -> float:
        """Expected time until the chain enters an absorbing state.

        Parameters
        ----------
        initial:
            Starting state label or distribution.
        absorbing:
            Optional explicit absorbing set (states are *treated* as
            absorbing: their outgoing transitions are ignored).  Defaults
            to the structurally absorbing states.
        """
        transient, absorbing_idx = self._split_transient_absorbing(absorbing)
        if not absorbing_idx:
            raise StateSpaceError("chain has no absorbing states; MTTA is infinite")
        q = self.generator().toarray()
        sub = q[np.ix_(transient, transient)]
        p0 = self._initial_vector(initial)[transient]
        if p0.sum() <= 0.0:
            return 0.0
        # Solve  tau^T sub = -p0^T  (tau_i = expected total time in i).
        try:
            tau = np.linalg.solve(sub.T, -p0)
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                "singular transient block: some transient state cannot reach absorption"
            ) from exc
        if np.any(tau < -1e-9):
            raise SolverError("negative expected sojourn time; chain structure is inconsistent")
        return float(tau.sum())

    def absorption_probabilities(
        self, initial, absorbing: Optional[Iterable[State]] = None
    ) -> Dict[State, float]:
        """Probability of ultimately being absorbed in each absorbing state."""
        transient, absorbing_idx = self._split_transient_absorbing(absorbing)
        if not absorbing_idx:
            raise StateSpaceError("chain has no absorbing states")
        q = self.generator().toarray()
        sub = q[np.ix_(transient, transient)]
        cross = q[np.ix_(transient, absorbing_idx)]
        p0_full = self._initial_vector(initial)
        p0 = p0_full[transient]
        # Expected sojourn times, then flow into each absorbing state.
        tau = np.linalg.solve(sub.T, -p0) if transient else np.zeros(0)
        flows = tau @ cross if transient else np.zeros(len(absorbing_idx))
        result: Dict[State, float] = {}
        for pos, idx in enumerate(absorbing_idx):
            direct = p0_full[idx]
            result[self._states[idx]] = float(flows[pos] + direct)
        return result

    def first_passage_mean(self, initial, targets: Iterable[State]) -> float:
        """Mean first-passage time from ``initial`` into the target set."""
        return self.mean_time_to_absorption(initial, absorbing=targets)

    # ------------------------------------------------------------- utility
    def restricted(self, keep: Iterable[State]) -> "CTMC":
        """Sub-chain over ``keep``; transitions leaving the set are dropped."""
        keep_set = set(keep)
        chain = CTMC(states=[s for s in self._states if s in keep_set])
        for (i, j), rate in self._rates.items():
            src, dst = self._states[i], self._states[j]
            if src in keep_set and dst in keep_set:
                chain.add_transition(src, dst, rate)
        return chain

    def with_absorbing(self, absorbing: Iterable[State]) -> "CTMC":
        """Copy of the chain with the given states made absorbing."""
        absorbing_set = set(absorbing)
        chain = CTMC(states=self._states)
        for (i, j), rate in self._rates.items():
            src = self._states[i]
            if src in absorbing_set:
                continue
            chain.add_transition(src, self._states[j], rate)
        return chain

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CTMC(n_states={self.n_states}, n_transitions={len(self._rates)})"


class MarkovDependabilityModel(DependabilityModel):
    """Dependability measures of a CTMC with designated up states.

    Bridges a :class:`CTMC` into the common
    :class:`~repro.core.model.DependabilityModel` interface:

    * availability measures come from the chain as given (repairs
      included);
    * reliability measures come from a derived chain in which every down
      state is absorbing (first system failure ends the mission).

    Parameters
    ----------
    chain:
        The availability CTMC.
    up_states:
        States in which the system is considered operational.
    initial:
        Initial state label or distribution.
    """

    def __init__(self, chain: CTMC, up_states: Iterable[State], initial):
        self.chain = chain
        self.up_states = set(up_states)
        unknown = [s for s in self.up_states if s not in set(chain.states)]
        if unknown:
            raise ModelDefinitionError(f"up states not in the chain: {unknown}")
        if not self.up_states:
            raise ModelDefinitionError("at least one up state is required")
        self.initial = initial
        self._down_states = [s for s in chain.states if s not in self.up_states]
        self._reliability_chain = chain.with_absorbing(self._down_states)

    def availability(self, t):
        """Point availability ``A(t) = Σ_{s up} π_s(t)``."""
        scalar = np.isscalar(t)
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        probs = self.chain.transient(ts, self.initial)
        idx = [self.chain.index_of(s) for s in self.up_states]
        out = probs[:, idx].sum(axis=1)
        return float(out[0]) if scalar else out

    def steady_state_availability(self) -> float:
        """Long-run availability ``Σ_{s up} π_s``."""
        pi = self.chain.steady_state()
        return sum(pi[s] for s in self.up_states)

    def interval_availability(self, t) -> float:
        """Expected fraction of ``[0, t]`` up, via cumulative uniformization."""
        t = float(t)
        if t <= 0:
            raise SolverError("interval availability requires t > 0")
        cumulative = self.chain.cumulative_transient([t], self.initial)[0]
        idx = [self.chain.index_of(s) for s in self.up_states]
        return float(cumulative[idx].sum()) / t

    def reliability(self, t):
        """Probability of no system failure in ``[0, t]``."""
        scalar = np.isscalar(t)
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        probs = self._reliability_chain.transient(ts, self.initial)
        idx = [self._reliability_chain.index_of(s) for s in self.up_states]
        out = probs[:, idx].sum(axis=1)
        return float(out[0]) if scalar else out

    def mttf(self) -> float:
        """Mean time to first system failure."""
        return self._reliability_chain.mean_time_to_absorption(
            self.initial, absorbing=self._down_states
        )
