"""Pluggable solver-method registries for the Markov front doors.

Before this module, the method names accepted by
:func:`~repro.markov.fallback.solve_steady_state` and
:func:`~repro.markov.solvers.solve_transient` were hardcoded if/elif
chains: adding a backend meant editing the front door.  The registries
here make the dispatch data: a :class:`SolverRegistry` maps method
names (plus aliases) to kernel callables with optional *pre-checks*
(cheap applicability guards run before the kernel, e.g. "GTH refuses to
densify above 20 000 states") and a *supports* predicate consulted with
the pre-flight :class:`~repro.markov.fallback.GeneratorDiagnostics`.

Two module-level registries back the front doors:

* :data:`STEADY_STATE` — ``gth`` / ``direct`` / ``power`` (the historic
  trio, registered with identical kernels so existing ``method=``
  strings stay bit-identical) plus the large-state-space backends
  ``gmres`` and ``bicgstab`` (preconditioned Krylov iteration from
  :mod:`repro.sparse.krylov`, imported lazily);
* :data:`TRANSIENT` — ``uniformization`` / ``ode`` plus ``krylov``
  (alias ``expm_multiply``).

Third-party backends plug in with::

    from repro.markov import registry
    registry.STEADY_STATE.register_method("mymethod", my_kernel)
    solve_steady_state(q, method="mymethod")

Kernels receive the CSR generator (steady state: ``fn(q) -> π``;
transient: ``fn(q, initial, times, tol=...) -> (T, n) array``) and run
inside the front doors' guard/report machinery, so a registered method
automatically participates in fallback chains, ``SolverReport``
attempts, tracing and ``diagnostics=`` pre-flights.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import SolverError
from .solvers import (
    gth_solve,
    steady_state_direct,
    steady_state_power,
    transient_ode,
    transient_uniformization,
)

__all__ = [
    "SolverMethod",
    "SolverRegistry",
    "STEADY_STATE",
    "TRANSIENT",
    "GTH_DENSE_LIMIT",
    "TRANSIENT_KRYLOV_LIMIT",
    "record_iterations",
    "consume_iterations",
]

PreCheck = Callable[..., None]
Supports = Callable[[Any], bool]

#: GTH materializes a dense n×n copy; above this many states the dense
#: buffer alone exceeds ~3 GiB and the O(n³) elimination is hopeless, so
#: the registry pre-check fails the stage over to sparse methods.
GTH_DENSE_LIMIT = 20_000

#: ``solve_transient(method="auto")`` switches from uniformization
#: (which stores one vector per Poisson term) to Krylov ``expm_multiply``
#: stepping above this many states.
TRANSIENT_KRYLOV_LIMIT = 50_000

#: Thread-local side channel carrying the last kernel's iteration count
#: out to the front door (kernel signatures return only π, and SolverReport
#: assembly happens a frame above the kernel call).
_ITERATIONS = threading.local()


def record_iterations(count: Optional[int]) -> None:
    """Publish an iterative kernel's iteration count for this thread.

    Called by the Krylov kernels at the end of a solve; the front door
    picks it up with :func:`consume_iterations` and attaches it to the
    stage's :class:`~repro.markov.fallback.SolverAttempt`.
    """
    _ITERATIONS.value = None if count is None else int(count)


def consume_iterations() -> Optional[int]:
    """Read and clear this thread's recorded iteration count."""
    value = getattr(_ITERATIONS, "value", None)
    _ITERATIONS.value = None
    return value


class SolverMethod:
    """One registered solver backend: kernel + guards + metadata."""

    __slots__ = ("name", "fn", "pre_checks", "supports", "accepts_x0")

    def __init__(
        self,
        name: str,
        fn: Callable,
        pre_checks: Tuple[PreCheck, ...] = (),
        supports: Optional[Supports] = None,
        accepts_x0: bool = False,
    ):
        self.name = name
        self.fn = fn
        self.pre_checks = tuple(pre_checks)
        self.supports = supports
        self.accepts_x0 = accepts_x0

    def __call__(self, *args, **kwargs):
        """Run the pre-checks in registration order, then the kernel."""
        for check in self.pre_checks:
            check(*args, **kwargs)
        return self.fn(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolverMethod({self.name!r}, pre_checks={len(self.pre_checks)}, "
            f"supports={'yes' if self.supports else 'any'})"
        )


class SolverRegistry:
    """A named collection of solver methods with aliasing and override guard.

    Parameters
    ----------
    kind:
        Human-readable registry name used in error messages
        (``"steady-state"`` / ``"transient"``).
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._methods: Dict[str, SolverMethod] = {}
        self._aliases: Dict[str, str] = {}

    def register_method(
        self,
        name: str,
        fn: Callable,
        *,
        pre_checks: Sequence[PreCheck] = (),
        supports: Optional[Supports] = None,
        aliases: Sequence[str] = (),
        replace: bool = False,
        accepts_x0: bool = False,
    ) -> SolverMethod:
        """Register a solver backend under ``name``.

        Parameters
        ----------
        name:
            The ``method=`` string users will pass to the front door.
        fn:
            The kernel callable (front-door-specific signature).
        pre_checks:
            Cheap guards run (in order) before the kernel with the same
            arguments; raising :class:`~repro.exceptions.SolverError`
            fails the stage over to the next one in a fallback chain.
        supports:
            Optional predicate on the pre-flight
            :class:`~repro.markov.fallback.GeneratorDiagnostics`;
            returning ``False`` removes the method from ``"auto"``
            orderings (explicit ``method=`` requests still run it,
            pre-checks permitting).
        aliases:
            Alternative spellings resolving to the same method.
        replace:
            Re-registering an existing name (or alias) without
            ``replace=True`` raises — silent shadowing of a production
            solver is exactly the bug class registries invite.
        accepts_x0:
            The kernel takes an ``x0=`` initial-guess kwarg; the front
            door forwards warm starts only to stages that declare it.
        """
        if not replace:
            taken = [n for n in (name, *aliases) if n in self._methods or n in self._aliases]
            if taken:
                raise SolverError(
                    f"{self.kind} method name(s) {taken} already registered; "
                    "pass replace=True to override"
                )
        method = SolverMethod(name, fn, tuple(pre_checks), supports, accepts_x0)
        self._methods[name] = method
        self._aliases.pop(name, None)
        for alias in aliases:
            self._aliases[alias] = name
            self._methods.pop(alias, None)
        return method

    def resolve(self, name: str) -> str:
        """Canonical method name for ``name`` (follows aliases)."""
        return self._aliases.get(name, name)

    def get(self, name: str) -> SolverMethod:
        """Look up a method (by name or alias); raises SolverError if unknown."""
        canonical = self.resolve(name)
        try:
            return self._methods[canonical]
        except KeyError:
            raise SolverError(
                f"unknown {self.kind} method {name!r}; "
                f"registered: {sorted(self.names())}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """Registered canonical method names."""
        return tuple(self._methods)

    def __contains__(self, name: str) -> bool:
        return self.resolve(name) in self._methods

    def stages(self) -> Dict[str, SolverMethod]:
        """Canonical-name → method mapping (a fresh dict)."""
        return dict(self._methods)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SolverRegistry({self.kind!r}, methods={sorted(self._methods)})"


# --------------------------------------------------------------- steady state
def _check_gth_size(q, *args, **kwargs) -> None:
    n = q.shape[0]
    if n > GTH_DENSE_LIMIT:
        raise SolverError(
            f"GTH would materialize a dense {n}×{n} matrix "
            f"({8 * n * n / 1e9:.1f} GB); use 'direct', 'gmres' or 'power' "
            f"above {GTH_DENSE_LIMIT} states"
        )


def _stage_gth(q) -> np.ndarray:
    return gth_solve(q.toarray(), validated=True)


def _stage_direct(q) -> np.ndarray:
    return steady_state_direct(q, validated=True)


def _stage_power(q) -> np.ndarray:
    return steady_state_power(q, validated=True)


def _stage_gmres(q, x0=None) -> np.ndarray:
    from ..sparse.krylov import steady_state_gmres

    return steady_state_gmres(q, validated=True, x0=x0)


def _stage_bicgstab(q, x0=None) -> np.ndarray:
    from ..sparse.krylov import steady_state_bicgstab

    return steady_state_bicgstab(q, validated=True, x0=x0)


#: The steady-state method registry behind
#: :func:`repro.markov.fallback.solve_steady_state`.
STEADY_STATE = SolverRegistry("steady-state")
STEADY_STATE.register_method(
    "gth",
    _stage_gth,
    pre_checks=(_check_gth_size,),
    supports=lambda diag: diag.n_states <= GTH_DENSE_LIMIT,
)
STEADY_STATE.register_method("direct", _stage_direct)
STEADY_STATE.register_method("power", _stage_power)
STEADY_STATE.register_method("gmres", _stage_gmres, accepts_x0=True)
STEADY_STATE.register_method("bicgstab", _stage_bicgstab, accepts_x0=True)


# ------------------------------------------------------------------ transient
def _transient_uniformization(q, initial, times, tol=1e-10, max_terms=100_000):
    return transient_uniformization(q, initial, times, tol=tol, max_terms=max_terms)


def _transient_ode(q, initial, times, tol=1e-10, **_ignored):
    return transient_ode(q, initial, times, tol=tol)


def _transient_krylov(q, initial, times, tol=1e-10, **_ignored):
    from ..sparse.krylov import transient_krylov

    return transient_krylov(q, initial, times, tol=tol)


#: The transient method registry behind
#: :func:`repro.markov.solvers.solve_transient`.
TRANSIENT = SolverRegistry("transient")
TRANSIENT.register_method("uniformization", _transient_uniformization)
TRANSIENT.register_method("ode", _transient_ode)
TRANSIENT.register_method("krylov", _transient_krylov, aliases=("expm_multiply",))
