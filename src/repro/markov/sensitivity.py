"""Exact parametric sensitivity of CTMC steady-state measures.

Differentiating the global balance equations ``π Q(θ) = 0``,
``Σ π = 1`` gives a *linear system* for the derivative vector::

    (dπ/dθ) Q = -π (dQ/dθ),      Σ dπ/dθ = 0

so steady-state sensitivities are available exactly — no finite-
difference step-size tuning, and one extra linear solve per parameter.
This is the state-space counterpart of Birnbaum importance and the
method production tools (SHARPE) implement.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Tuple

import numpy as np

from ..exceptions import ModelDefinitionError, SolverError
from .ctmc import CTMC

__all__ = ["steady_state_derivative", "reward_rate_derivative"]

State = Hashable
#: derivative of each transition's rate w.r.t. the parameter
RateDerivatives = Mapping[Tuple[State, State], float]


def _dq_matrix(chain: CTMC, rate_derivatives: RateDerivatives) -> np.ndarray:
    n = chain.n_states
    dq = np.zeros((n, n))
    for (src, dst), value in rate_derivatives.items():
        i, j = chain.index_of(src), chain.index_of(dst)
        if i == j:
            raise ModelDefinitionError("self-loops have no rate to differentiate")
        if chain.rate(src, dst) <= 0.0 and value != 0.0:
            raise ModelDefinitionError(
                f"transition {src!r} -> {dst!r} does not exist in the chain"
            )
        dq[i, j] += float(value)
        dq[i, i] -= float(value)
    return dq


def steady_state_derivative(
    chain: CTMC, rate_derivatives: RateDerivatives
) -> Dict[State, float]:
    """``dπ/dθ`` for an irreducible chain.

    Parameters
    ----------
    chain:
        The CTMC (irreducible).
    rate_derivatives:
        ``{(src, dst): d rate / d θ}`` for every transition whose rate
        depends on the parameter θ.  E.g. if θ is a failure rate λ used
        as ``2λ`` on one transition and ``λ`` on another, pass 2.0 and
        1.0.

    Returns
    -------
    Mapping state → ``dπ_state/dθ`` (entries sum to 0).

    Examples
    --------
    >>> chain = CTMC()
    >>> _ = chain.add_transition("up", "down", 0.1)
    >>> _ = chain.add_transition("down", "up", 1.0)
    >>> d = steady_state_derivative(chain, {("up", "down"): 1.0})
    >>> round(d["up"], 6)                  # d/dλ [μ/(λ+μ)] = -μ/(λ+μ)²
    -0.826446
    """
    q = chain.generator().toarray()
    n = chain.n_states
    pi_map = chain.steady_state()
    pi = np.array([pi_map[s] for s in chain.states])
    dq = _dq_matrix(chain, rate_derivatives)

    # Solve x Q = -pi dQ with the normalization Σ x = 0 replacing one
    # (redundant) balance column.
    a = q.T.copy()
    b = -(pi @ dq)
    a[-1, :] = 1.0
    b = np.array(b)
    b[-1] = 0.0
    try:
        x = np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise SolverError("sensitivity system is singular; is the chain irreducible?") from exc
    return {state: float(x[i]) for i, state in enumerate(chain.states)}


def reward_rate_derivative(
    chain: CTMC,
    rewards: Mapping[State, float],
    rate_derivatives: RateDerivatives,
) -> float:
    """``d/dθ Σ_s r(s) π_s`` — e.g. the derivative of availability.

    Examples
    --------
    >>> chain = CTMC()
    >>> _ = chain.add_transition("up", "down", 0.1)
    >>> _ = chain.add_transition("down", "up", 1.0)
    >>> dA = reward_rate_derivative(chain, {"up": 1.0}, {("up", "down"): 1.0})
    >>> round(dA, 6)
    -0.826446
    """
    d_pi = steady_state_derivative(chain, rate_derivatives)
    return sum(float(rewards.get(s, 0.0)) * d for s, d in d_pi.items())
