"""Numerical kernels for Markov chain analysis.

Three steady-state solvers (the E24 ablation set) and the uniformization
transient kernel:

* **GTH elimination** — the Grassmann–Taksar–Heyman variant of Gaussian
  elimination.  It never subtracts (all quantities stay non-negative), so
  it is backward stable even on stiff generators where rates span ten
  orders of magnitude — exactly the situation in availability models
  (failures per 10^5 h vs repairs per hour).  Default.
* **Sparse direct** — solve ``Q^T π = 0`` with one equation replaced by
  normalization, via SuperLU.  Fast for large sparse chains, but can lose
  accuracy on stiff problems.
* **Power iteration** — on the uniformized DTMC.  Matrix-free and memory
  light; linear convergence governed by the subdominant eigenvalue.

The transient kernel implements Jensen's uniformization with strict
truncation-error control, plus the cumulative (integrated) variant needed
for expected accumulated reward and interval availability.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from ..exceptions import ConvergenceError, SolverError

__all__ = [
    "gth_solve",
    "steady_state_direct",
    "steady_state_power",
    "uniformized_matrix",
    "poisson_truncation_point",
    "transient_uniformization",
    "cumulative_uniformization",
]


def gth_solve(generator: np.ndarray) -> np.ndarray:
    """Steady-state vector of an irreducible CTMC by GTH elimination.

    Parameters
    ----------
    generator:
        Dense infinitesimal generator ``Q`` (rows sum to zero).

    Returns
    -------
    The stationary probability vector π with ``π Q = 0`` and ``Σ π = 1``.

    Notes
    -----
    Runs in O(n³) time on a dense copy; intended for chains up to a few
    thousand states.  The algorithm uses only additions, multiplications
    and divisions of non-negative numbers, which is what makes it immune
    to the catastrophic cancellation that plagues naive elimination on
    stiff availability models.
    """
    a = np.array(generator, dtype=float)
    n = a.shape[0]
    if a.shape != (n, n):
        raise SolverError(f"generator must be square, got shape {a.shape}")
    if n == 1:
        return np.ones(1)

    # Work with the off-diagonal rates only; diagonals are implicit.
    np.fill_diagonal(a, 0.0)
    for k in range(n - 1, 0, -1):
        total = a[k, :k].sum()
        if total <= 0.0:
            raise SolverError(
                "GTH elimination hit a state with no transitions back into the "
                "remaining block; the chain is not irreducible"
            )
        a[:k, :k] += np.outer(a[:k, k], a[k, :k]) / total

    pi = np.zeros(n)
    pi[0] = 1.0
    for k in range(1, n):
        total = a[k, :k].sum()
        pi[k] = float(pi[:k] @ a[:k, k]) / total
    pi /= pi.sum()
    return pi


def steady_state_direct(generator: sparse.spmatrix) -> np.ndarray:
    """Steady state by sparse LU on ``Q^T π = 0`` with a normalization row."""
    q = sparse.csr_matrix(generator, dtype=float)
    n = q.shape[0]
    if q.shape != (n, n):
        raise SolverError(f"generator must be square, got shape {q.shape}")
    a = q.transpose().tolil()
    a[n - 1, :] = 1.0  # replace last balance equation with Σ π = 1
    b = np.zeros(n)
    b[n - 1] = 1.0
    try:
        pi = sparse_linalg.spsolve(sparse.csc_matrix(a), b)
    except RuntimeError as exc:  # pragma: no cover - SuperLU failure path
        raise SolverError(f"sparse direct solve failed: {exc}") from exc
    if not np.all(np.isfinite(pi)):
        raise SolverError("sparse direct solve produced non-finite probabilities")
    pi = np.maximum(pi, 0.0)
    total = pi.sum()
    if total <= 0:
        raise SolverError("sparse direct solve produced a zero vector")
    return pi / total


def uniformized_matrix(
    generator: sparse.spmatrix, rate_multiplier: float = 1.02
) -> Tuple[sparse.csr_matrix, float]:
    """Uniformized DTMC ``P = I + Q/Λ`` and the uniformization rate Λ.

    Λ is ``rate_multiplier`` times the largest exit rate, which keeps the
    diagonal of ``P`` strictly positive and makes the chain aperiodic —
    required for power iteration and harmless for transient analysis.
    """
    q = sparse.csr_matrix(generator, dtype=float)
    diag = -q.diagonal()
    max_rate = float(diag.max()) if diag.size else 0.0
    if max_rate <= 0.0:
        # All states absorbing: P is the identity.
        return sparse.identity(q.shape[0], format="csr"), 1.0
    lam = max_rate * float(rate_multiplier)
    p = sparse.identity(q.shape[0], format="csr") + q / lam
    return p.tocsr(), lam


def steady_state_power(
    generator: sparse.spmatrix,
    tol: float = 1e-12,
    max_iterations: int = 500_000,
) -> np.ndarray:
    """Steady state by power iteration on the uniformized chain."""
    p, _ = uniformized_matrix(generator)
    n = p.shape[0]
    pi = np.full(n, 1.0 / n)
    pt = p.transpose().tocsr()
    for iteration in range(1, max_iterations + 1):
        new = pt @ pi
        new_sum = new.sum()
        if new_sum <= 0:
            raise SolverError("power iteration collapsed to the zero vector")
        new /= new_sum
        delta = float(np.abs(new - pi).max())
        pi = new
        if delta < tol:
            return pi
    raise ConvergenceError(
        f"power iteration did not reach tol={tol} in {max_iterations} iterations",
        iterations=max_iterations,
        residual=delta,
    )


def poisson_truncation_point(lam_t: float, tol: float) -> int:
    """Smallest K with Poisson(λt) tail mass beyond K below ``tol``."""
    if lam_t < 0:
        raise SolverError(f"λt must be non-negative, got {lam_t}")
    if lam_t == 0.0:
        return 0
    # Walk the Poisson pmf in log space until the accumulated mass
    # reaches 1 - tol; bound the walk generously past the mean.
    log_pmf = -lam_t  # log P[N=0]
    cumulative = math.exp(log_pmf)
    k = 0
    limit = int(lam_t + 12.0 * math.sqrt(lam_t) + 50.0)
    while cumulative < 1.0 - tol and k < limit:
        k += 1
        log_pmf += math.log(lam_t / k)
        cumulative += math.exp(log_pmf)
    return k


def transient_uniformization(
    generator: sparse.spmatrix,
    initial: np.ndarray,
    times: np.ndarray,
    tol: float = 1e-10,
) -> np.ndarray:
    """Transient state probabilities π(t) = π(0) e^{Qt} by uniformization.

    Parameters
    ----------
    generator:
        CTMC generator (rows sum to zero; absorbing rows all zero).
    initial:
        Initial probability vector.
    times:
        Non-decreasing array of evaluation times.
    tol:
        Bound on the truncation error of each output vector (1-norm).

    Returns
    -------
    Array of shape ``(len(times), n)``.
    """
    times = np.asarray(times, dtype=float)
    if times.size and times.min() < 0:
        raise SolverError("times must be non-negative")
    p, lam = uniformized_matrix(generator)
    pt = p.transpose().tocsr()
    n = p.shape[0]
    initial = np.asarray(initial, dtype=float)
    if initial.shape != (n,):
        raise SolverError(f"initial vector has shape {initial.shape}, expected ({n},)")

    out = np.empty((times.size, n))
    max_time = float(times.max()) if times.size else 0.0
    k_max = poisson_truncation_point(lam * max_time, tol)

    # Precompute the Krylov-style sequence v_k = initial P^k once, then
    # combine with each time's Poisson weights.
    vectors = [initial]
    vec = initial
    for _ in range(k_max):
        vec = pt @ vec
        vectors.append(vec)

    for idx, t in enumerate(times):
        lam_t = lam * float(t)
        if lam_t == 0.0:
            out[idx] = initial
            continue
        k_t = poisson_truncation_point(lam_t, tol)
        acc = np.zeros(n)
        log_w = -lam_t
        for k in range(0, k_t + 1):
            weight = math.exp(log_w)
            if weight > 0.0:
                acc += weight * vectors[min(k, k_max)]
            log_w += math.log(lam_t) - math.log(k + 1)
        out[idx] = acc
    return out


def cumulative_uniformization(
    generator: sparse.spmatrix,
    initial: np.ndarray,
    times: np.ndarray,
    tol: float = 1e-10,
) -> np.ndarray:
    """Integrated transient probabilities ``L(t) = ∫_0^t π(u) du``.

    Uses the standard uniformization identity::

        L(t) = (1/Λ) Σ_k  [1 - Σ_{j<=k} pois(j; Λt)] · π(0) P^k

    Truncation is controlled so the 1-norm error of ``L(t)`` is below
    ``tol * t``.

    Returns an array of shape ``(len(times), n)``; row sums equal ``t``.
    """
    times = np.asarray(times, dtype=float)
    if times.size and times.min() < 0:
        raise SolverError("times must be non-negative")
    p, lam = uniformized_matrix(generator)
    pt = p.transpose().tocsr()
    n = p.shape[0]
    initial = np.asarray(initial, dtype=float)

    out = np.empty((times.size, n))
    max_time = float(times.max()) if times.size else 0.0
    # The tail weights decay like the Poisson tail; adding a margin to the
    # truncation point keeps the integrated error within tolerance.
    k_max = poisson_truncation_point(lam * max_time, tol * 1e-3) + 10

    vectors = [initial]
    vec = initial
    for _ in range(k_max):
        vec = pt @ vec
        vectors.append(vec)

    for idx, t in enumerate(times):
        lam_t = lam * float(t)
        if lam_t == 0.0:
            out[idx] = np.zeros(n)
            continue
        acc = np.zeros(n)
        log_pmf = -lam_t
        cdf = math.exp(log_pmf)
        k = 0
        while True:
            tail = max(0.0, 1.0 - cdf)
            acc += tail * vectors[min(k, k_max)]
            if tail < tol * 1e-3 and k > lam_t:
                break
            if k >= k_max:
                break
            k += 1
            log_pmf += math.log(lam_t) - math.log(k)
            cdf += math.exp(log_pmf)
        out[idx] = acc / lam
    return out
