"""Numerical kernels for Markov chain analysis.

Three steady-state solvers (the E24 ablation set) and the uniformization
transient kernel:

* **GTH elimination** — the Grassmann–Taksar–Heyman variant of Gaussian
  elimination.  It never subtracts (all quantities stay non-negative), so
  it is backward stable even on stiff generators where rates span ten
  orders of magnitude — exactly the situation in availability models
  (failures per 10^5 h vs repairs per hour).  Default.
* **Sparse direct** — solve ``Q^T π = 0`` with one equation replaced by
  normalization, via SuperLU.  Fast for large sparse chains, but can lose
  accuracy on stiff problems.
* **Power iteration** — on the uniformized DTMC.  Matrix-free and memory
  light; linear convergence governed by the subdominant eigenvalue.

The transient kernel implements Jensen's uniformization with strict
truncation-error control, plus the cumulative (integrated) variant needed
for expected accumulated reward and interval availability.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np
from scipy import integrate as scipy_integrate
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from ..exceptions import ConvergenceError, ModelDefinitionError, SolverError
from ..obs.trace import get_tracer

__all__ = [
    "validate_generator",
    "gth_solve",
    "steady_state_direct",
    "steady_state_power",
    "uniformized_matrix",
    "poisson_truncation_point",
    "solve_transient",
    "transient_uniformization",
    "transient_ode",
    "cumulative_uniformization",
]


def validate_generator(generator, tol: float = 1e-8) -> int:
    """Check that a matrix is a CTMC generator; return its dimension.

    Shared pre-flight for every steady-state solver: ``generator`` must
    be square with finite entries, non-negative off-diagonal rates, and
    rows summing to zero — all within ``tol`` scaled by the largest
    absolute rate.  Raises
    :class:`~repro.exceptions.ModelDefinitionError` naming the worst
    offending row, which turns the solvers' downstream garbage
    (singular factorizations, non-converging iterations, negative
    "probabilities") into one early, diagnosable failure.

    Accepts dense arrays and scipy sparse matrices.  Also valid for the
    ``P - I`` matrices the DTMC stationary solver feeds to GTH.

    The checks themselves live in
    :func:`repro.analyze.markov.generator_defects` — the same scan the
    :func:`repro.analyze.analyze` lint runs — so the solvers and the
    static analyzer accept/reject bit-identically by construction; this
    wrapper raises the first defect's message.
    """
    if tol < 0.0:
        raise ModelDefinitionError(f"tolerance must be >= 0, got {tol}")
    from ..analyze.markov import generator_defects

    n, defects = generator_defects(generator, tol)
    if defects:
        raise ModelDefinitionError(defects[0].message)
    return n


def gth_solve(generator: np.ndarray, validated: bool = False) -> np.ndarray:
    """Steady-state vector of an irreducible CTMC by GTH elimination.

    Parameters
    ----------
    generator:
        Dense infinitesimal generator ``Q`` (rows sum to zero).

    Returns
    -------
    The stationary probability vector π with ``π Q = 0`` and ``Σ π = 1``.

    Notes
    -----
    Runs in O(n³) time on a dense copy; intended for chains up to a few
    thousand states.  The algorithm uses only additions, multiplications
    and divisions of non-negative numbers, which is what makes it immune
    to the catastrophic cancellation that plagues naive elimination on
    stiff availability models.

    ``validated=True`` skips the :func:`validate_generator` pre-flight —
    for callers (the fallback chain, compiled models) that have already
    validated the exact same matrix.
    """
    a = np.array(generator, dtype=float)
    n = a.shape[0] if validated else validate_generator(a)
    if n == 1:
        return np.ones(1)

    # Work with the off-diagonal rates only; diagonals are implicit.
    np.fill_diagonal(a, 0.0)
    for k in range(n - 1, 0, -1):
        total = a[k, :k].sum()
        if total <= 0.0:
            raise SolverError(
                "GTH elimination hit a state with no transitions back into the "
                "remaining block; the chain is not irreducible"
            )
        a[:k, :k] += np.outer(a[:k, k], a[k, :k]) / total

    pi = np.zeros(n)
    pi[0] = 1.0
    for k in range(1, n):
        total = a[k, :k].sum()
        pi[k] = float(pi[:k] @ a[:k, k]) / total
    pi /= pi.sum()
    return pi


def steady_state_direct(
    generator: sparse.spmatrix, validated: bool = False
) -> np.ndarray:
    """Steady state by sparse LU on ``Q^T π = 0`` with a normalization row.

    ``validated=True`` skips the shared pre-flight check for callers that
    have already run :func:`validate_generator` on this matrix.
    """
    q = sparse.csr_matrix(generator, dtype=float)
    n = q.shape[0] if validated else validate_generator(q)
    a = q.transpose().tolil()
    a[n - 1, :] = 1.0  # replace last balance equation with Σ π = 1
    b = np.zeros(n)
    b[n - 1] = 1.0
    try:
        pi = sparse_linalg.spsolve(sparse.csc_matrix(a), b)
    except RuntimeError as exc:  # pragma: no cover - SuperLU failure path
        raise SolverError(f"sparse direct solve failed: {exc}") from exc
    if not np.all(np.isfinite(pi)):
        raise SolverError("sparse direct solve produced non-finite probabilities")
    pi = np.maximum(pi, 0.0)
    total = pi.sum()
    if total <= 0:
        raise SolverError("sparse direct solve produced a zero vector")
    return pi / total


def uniformized_matrix(
    generator: sparse.spmatrix, rate_multiplier: float = 1.02
) -> Tuple[sparse.csr_matrix, float]:
    """Uniformized DTMC ``P = I + Q/Λ`` and the uniformization rate Λ.

    Λ is ``rate_multiplier`` times the largest exit rate, which keeps the
    diagonal of ``P`` strictly positive and makes the chain aperiodic —
    required for power iteration and harmless for transient analysis.
    """
    q = sparse.csr_matrix(generator, dtype=float)
    diag = -q.diagonal()
    max_rate = float(diag.max()) if diag.size else 0.0
    if max_rate <= 0.0:
        # All states absorbing: P is the identity.
        return sparse.identity(q.shape[0], format="csr"), 1.0
    lam = max_rate * float(rate_multiplier)
    p = sparse.identity(q.shape[0], format="csr") + q / lam
    return p.tocsr(), lam


def steady_state_power(
    generator: sparse.spmatrix,
    tol: float = 1e-12,
    max_iterations: int = 500_000,
    validated: bool = False,
) -> np.ndarray:
    """Steady state by power iteration on the uniformized chain.

    ``validated=True`` skips the shared pre-flight check for callers that
    have already run :func:`validate_generator` on this matrix.
    """
    if not validated:
        validate_generator(generator)
    p, _ = uniformized_matrix(generator)
    n = p.shape[0]
    pi = np.full(n, 1.0 / n)
    pt = p.transpose().tocsr()
    for iteration in range(1, max_iterations + 1):
        new = pt @ pi
        new_sum = new.sum()
        if new_sum <= 0:
            raise SolverError("power iteration collapsed to the zero vector")
        new /= new_sum
        delta = float(np.abs(new - pi).max())
        pi = new
        if delta < tol:
            return pi
    raise ConvergenceError(
        f"power iteration did not reach tol={tol} in {max_iterations} iterations",
        iterations=max_iterations,
        residual=delta,
    )


def poisson_truncation_point(lam_t: float, tol: float, limit: Optional[int] = None) -> int:
    """Smallest K with Poisson(λt) tail mass beyond K below ``tol``.

    ``limit`` bounds the walk (default ``λt + 12·√λt + 50``, generously
    past any realistic truncation point).  Hitting the bound with more
    than ``tol`` tail mass still missing raises
    :class:`~repro.exceptions.SolverError` instead of silently
    returning a too-small K — a truncated uniformization sum that
    *looks* converged but is not would corrupt every downstream
    transient measure.  In practice the error fires only for
    tolerances below floating-point resolution or a caller-supplied
    ``limit`` that is genuinely too small.
    """
    if lam_t < 0:
        raise SolverError(f"λt must be non-negative, got {lam_t}")
    if lam_t == 0.0:
        return 0
    if limit is None:
        limit = int(lam_t + 12.0 * math.sqrt(lam_t) + 50.0)
    # Walk the Poisson pmf in log space until the accumulated mass
    # reaches 1 - tol.  Kahan-compensated summation keeps the rounding
    # error of the O(λt)-term sum near one ulp, so the stop condition
    # stays meaningful for tolerances down to ~1e-15.
    log_pmf = -lam_t  # log P[N=0]
    cumulative = math.exp(log_pmf)
    compensation = 0.0
    k = 0
    while cumulative < 1.0 - tol:
        if k + 1.0 > lam_t:
            # Geometric tail bound: beyond the mode the pmf decays faster
            # than ratio^j with ratio = λt/(k+1), so the true remaining
            # mass is below pmf(k)·ratio/(1-ratio).  This second stop
            # criterion keeps the walk finite when accumulated rounding
            # error pins `cumulative` just below 1-tol for tolerances
            # near machine epsilon.
            ratio = lam_t / (k + 1.0)
            if math.exp(log_pmf) * ratio / (1.0 - ratio) < tol:
                return k
        if k >= limit:
            raise SolverError(
                f"Poisson truncation for λt={lam_t:.6g} did not reach mass "
                f"1-tol within {limit} terms (accumulated {cumulative:.17g}, "
                f"tol={tol:.3g}); raise `limit` or loosen `tol` — a silently "
                f"truncated sum would lose more than the requested accuracy"
            )
        k += 1
        log_pmf += math.log(lam_t / k)
        term = math.exp(log_pmf) - compensation
        total = cumulative + term
        compensation = (total - cumulative) - term
        cumulative = total
    return k


@lru_cache(maxsize=4096)
def _truncation_point_cached(lam_t: float, tol: float) -> int:
    """Memoized :func:`poisson_truncation_point` on ``(λt, tol)``.

    Sweeps over non-rate parameters (coverage factors, structure
    probabilities) solve transients with identical ``λt`` at every point;
    the truncation walk is O(λt) and pure, so caching it turns the
    repeated work into a dict hit.  Failures (SolverError at the limit)
    are never cached by ``lru_cache``, preserving the raise-every-time
    contract, and the default ``limit`` is derived from ``lam_t`` so the
    two-argument key is complete.
    """
    return poisson_truncation_point(lam_t, tol)


def transient_ode(
    generator: sparse.spmatrix,
    initial: np.ndarray,
    times: np.ndarray,
    tol: float = 1e-10,
) -> np.ndarray:
    """Transient probabilities by stiff ODE integration (LSODA).

    The E09 ablation partner of :func:`transient_uniformization` and its
    overflow fallback for huge ``Λt``: the Kolmogorov forward equations
    ``dπ/dt = π Q`` integrated with adaptive step control, whose cost
    scales with stiffness rather than with ``Λ·t`` terms.

    Returns an array of shape ``(len(times), n)``; ``times`` may be in
    any order (rows follow the input order).
    """
    times = np.asarray(times, dtype=float)
    if times.size and times.min() < 0:
        raise SolverError("times must be non-negative")
    qt = sparse.csr_matrix(generator, dtype=float).transpose().tocsr()
    p0 = np.asarray(initial, dtype=float)
    if p0.shape != (qt.shape[0],):
        raise SolverError(
            f"initial vector has shape {p0.shape}, expected ({qt.shape[0]},)"
        )

    def rhs(_t: float, y: np.ndarray) -> np.ndarray:
        return qt @ y

    horizon = float(times.max()) if times.size else 0.0
    if horizon == 0.0:
        return np.tile(p0, (times.size, 1))
    with get_tracer().span(
        "solver.transient",
        method="ode",
        n_states=qt.shape[0],
        n_times=int(times.size),
        horizon=horizon,
    ):
        solution = scipy_integrate.solve_ivp(
            rhs,
            (0.0, horizon),
            p0,
            t_eval=np.sort(times),
            method="LSODA",
            rtol=max(tol, 1e-12),
            atol=max(tol * 1e-2, 1e-14),
        )
        if not solution.success:  # pragma: no cover - scipy failure path
            raise SolverError(f"ODE transient solver failed: {solution.message}")
    order = np.argsort(times)
    out = np.empty((times.size, p0.size))
    out[order] = solution.y.T
    return out


def _uniformization_overflow_fallback(
    generator,
    initial: np.ndarray,
    times: np.ndarray,
    tol: float,
    n: int,
    tracer,
    truncation_point: Optional[int],
) -> np.ndarray:
    """Escape hatch when the uniformization series is too long to store.

    Krylov ``expm_multiply`` stepping first — it handles very large
    ``Λt`` with bounded memory and keeps near-machine accuracy — then
    stiff ODE integration if the Krylov kernel itself fails.
    """
    attrs = {"method": "uniformization", "n_states": n}
    if truncation_point is not None:
        attrs["truncation_point"] = truncation_point
    try:
        from ..sparse.krylov import transient_krylov

        with tracer.span("solver.transient", fallback="krylov", **attrs):
            return transient_krylov(generator, initial, times, tol=tol)
    except SolverError:
        with tracer.span("solver.transient", fallback="ode", **attrs):
            return transient_ode(generator, initial, times, tol)


def transient_uniformization(
    generator: sparse.spmatrix,
    initial: np.ndarray,
    times: np.ndarray,
    tol: float = 1e-10,
    max_terms: int = 100_000,
) -> np.ndarray:
    """Transient state probabilities π(t) = π(0) e^{Qt} by uniformization.

    Parameters
    ----------
    generator:
        CTMC generator (rows sum to zero; absorbing rows all zero).
    initial:
        Initial probability vector.
    times:
        Non-decreasing array of evaluation times.
    tol:
        Bound on the truncation error of each output vector (1-norm).
    max_terms:
        Overflow guard.  Uniformization needs ~``Λ·t_max`` matrix-vector
        products and as many stored vectors; when the truncation point
        exceeds this bound — very stiff generator, very long horizon —
        the computation silently switches to Krylov ``expm_multiply``
        stepping (:func:`repro.sparse.krylov.transient_krylov`, whose
        cost does not store ``Λt`` vectors), with stiff ODE integration
        (:func:`transient_ode`) as the final fallback.

    Returns
    -------
    Array of shape ``(len(times), n)``.
    """
    times = np.asarray(times, dtype=float)
    if times.size and times.min() < 0:
        raise SolverError("times must be non-negative")
    p, lam = uniformized_matrix(generator)
    pt = p.transpose().tocsr()
    n = p.shape[0]
    initial = np.asarray(initial, dtype=float)
    if initial.shape != (n,):
        raise SolverError(f"initial vector has shape {initial.shape}, expected ({n},)")

    out = np.empty((times.size, n))
    max_time = float(times.max()) if times.size else 0.0
    tracer = get_tracer()
    try:
        k_max = _truncation_point_cached(lam * max_time, tol)
    except SolverError:
        # Truncation point unreachable (tol below float resolution for
        # this Λt): hand off to a kernel whose cost is Λt-independent.
        return _uniformization_overflow_fallback(
            generator, initial, times, tol, n, tracer, truncation_point=None
        )
    if k_max > max_terms:
        return _uniformization_overflow_fallback(
            generator, initial, times, tol, n, tracer, truncation_point=k_max
        )

    with tracer.span(
        "solver.transient",
        method="uniformization",
        n_states=n,
        n_times=int(times.size),
        truncation_point=k_max,
        uniformization_rate=float(lam),
    ):
        # Precompute the Krylov-style sequence v_k = initial P^k once,
        # then combine with each time's Poisson weights.
        vectors = [initial]
        vec = initial
        for _ in range(k_max):
            vec = pt @ vec
            vectors.append(vec)

        for idx, t in enumerate(times):
            lam_t = lam * float(t)
            if lam_t == 0.0:
                out[idx] = initial
                continue
            k_t = _truncation_point_cached(lam_t, tol)
            acc = np.zeros(n)
            log_w = -lam_t
            for k in range(0, k_t + 1):
                weight = math.exp(log_w)
                if weight > 0.0:
                    acc += weight * vectors[min(k, k_max)]
                log_w += math.log(lam_t) - math.log(k + 1)
            out[idx] = acc
    return out


def solve_transient(
    generator: sparse.spmatrix,
    initial: np.ndarray,
    times: np.ndarray,
    method: str = "auto",
    tol: float = 1e-10,
    max_terms: int = 100_000,
    diagnostics: str = "ignore",
) -> np.ndarray:
    """Unified front door for transient analysis π(t) = π(0) e^{Qt}.

    The transient counterpart of
    :func:`repro.markov.fallback.solve_steady_state`: pick a kernel by
    name instead of importing it.

    Parameters
    ----------
    method:
        ``"auto"`` (default) — uniformization for chains up to 50 000
        states (with its built-in Krylov/ODE escape hatch for huge
        ``Λt``), Krylov ``expm_multiply`` stepping above; or any name
        registered in :data:`repro.markov.registry.TRANSIENT` —
        ``"uniformization"``, ``"ode"``, ``"krylov"`` (alias
        ``"expm_multiply"``) or a third-party backend added with
        ``register_method``.
    tol:
        Truncation-error bound (uniformization) or integration tolerance
        (ODE); advisory for Krylov stepping, which controls its own
        error to near machine precision.
    diagnostics:
        ``"ignore"`` (default), ``"warn"`` or ``"strict"`` — run the
        :mod:`repro.analyze` lint pass (transient query) before solving.

    Returns
    -------
    Array of shape ``(len(times), n)``.
    """
    if diagnostics != "ignore":
        from ..analyze import run_diagnostics

        run_diagnostics(
            generator, diagnostics, query="transient", where="solve_transient"
        )
    from .registry import TRANSIENT, TRANSIENT_KRYLOV_LIMIT

    if method == "auto":
        n = generator.shape[0]
        method = "krylov" if n > TRANSIENT_KRYLOV_LIMIT else "uniformization"
    try:
        kernel = TRANSIENT.get(method)
    except SolverError:
        raise ModelDefinitionError(
            f"unknown transient method {method!r}; use 'auto' or one of "
            f"{sorted(TRANSIENT.names())}"
        ) from None
    return kernel(generator, initial, times, tol=tol, max_terms=max_terms)


def cumulative_uniformization(
    generator: sparse.spmatrix,
    initial: np.ndarray,
    times: np.ndarray,
    tol: float = 1e-10,
) -> np.ndarray:
    """Integrated transient probabilities ``L(t) = ∫_0^t π(u) du``.

    Uses the standard uniformization identity::

        L(t) = (1/Λ) Σ_k  [1 - Σ_{j<=k} pois(j; Λt)] · π(0) P^k

    Truncation is controlled so the 1-norm error of ``L(t)`` is below
    ``tol * t``.

    Returns an array of shape ``(len(times), n)``; row sums equal ``t``.
    """
    times = np.asarray(times, dtype=float)
    if times.size and times.min() < 0:
        raise SolverError("times must be non-negative")
    p, lam = uniformized_matrix(generator)
    pt = p.transpose().tocsr()
    n = p.shape[0]
    initial = np.asarray(initial, dtype=float)

    out = np.empty((times.size, n))
    max_time = float(times.max()) if times.size else 0.0
    # The tail weights decay like the Poisson tail; adding a margin to the
    # truncation point keeps the integrated error within tolerance.
    k_max = _truncation_point_cached(lam * max_time, tol * 1e-3) + 10

    vectors = [initial]
    vec = initial
    for _ in range(k_max):
        vec = pt @ vec
        vectors.append(vec)

    for idx, t in enumerate(times):
        lam_t = lam * float(t)
        if lam_t == 0.0:
            out[idx] = np.zeros(n)
            continue
        acc = np.zeros(n)
        log_pmf = -lam_t
        cdf = math.exp(log_pmf)
        k = 0
        while True:
            tail = max(0.0, 1.0 - cdf)
            acc += tail * vectors[min(k, k_max)]
            if tail < tol * 1e-3 and k > lam_t:
                break
            if k >= k_max:
                break
            k += 1
            log_pmf += math.log(lam_t) - math.log(k)
            cdf += math.exp(log_pmf)
        out[idx] = acc / lam
    return out
