"""Semi-Markov processes (system S11 in DESIGN.md).

An SMP relaxes the CTMC's exponential-sojourn requirement: on entering
state ``i`` the process picks the next state ``j`` with probability
``p_ij`` and holds for a duration drawn from an arbitrary distribution
``H_ij``.  This is the tutorial's first tool for non-exponential
failure/repair times — steady-state results need only the *means* of the
holding times, which is why steady-state availability is famously
insensitive to repair-time distribution shape (benchmark E13 demonstrates
it).

Construction styles:

* **kernel style** — :meth:`SemiMarkovProcess.add_transition` with an
  explicit branch probability and holding distribution;
* **competing style** — :meth:`SemiMarkovProcess.from_competing`, where
  each transition has its own firing distribution and the earliest one
  wins (race semantics); branch probabilities and conditional holding
  times are derived numerically.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from .._validation import check_probability
from ..distributions import EmpiricalDistribution, LifetimeDistribution
from ..exceptions import ModelDefinitionError, SolverError, StateSpaceError
from .dtmc import DTMC

__all__ = ["SemiMarkovProcess"]

State = Hashable


class SemiMarkovProcess:
    """A finite semi-Markov process with labelled states.

    Examples
    --------
    An up/down system with exponential failures and *deterministic*
    repairs — no CTMC can express this, but the SMP steady state is
    immediate::

        >>> from repro.distributions import Exponential, Deterministic
        >>> smp = SemiMarkovProcess()
        >>> _ = smp.add_transition("up", "down", 1.0, Exponential(rate=0.01))
        >>> _ = smp.add_transition("down", "up", 1.0, Deterministic(5.0))
        >>> pi = smp.steady_state()
        >>> round(pi["up"], 6)                    # 100 / (100 + 5)
        0.952381
    """

    def __init__(self):
        self._states: List[State] = []
        self._index: Dict[State, int] = {}
        # source -> list of (target, probability, holding distribution)
        self._transitions: Dict[State, List[Tuple[State, float, LifetimeDistribution]]] = {}

    # --------------------------------------------------------------- build
    def add_state(self, state: State) -> "SemiMarkovProcess":
        """Register a state (no-op when already present)."""
        if state not in self._index:
            self._index[state] = len(self._states)
            self._states.append(state)
            self._transitions.setdefault(state, [])
        return self

    def add_transition(
        self,
        source: State,
        target: State,
        probability: float,
        holding: LifetimeDistribution,
    ) -> "SemiMarkovProcess":
        """Add a kernel entry: with ``probability``, go to ``target`` after
        a holding time drawn from ``holding``."""
        check_probability(probability, "branch probability")
        if probability == 0.0:
            return self
        self.add_state(source)
        self.add_state(target)
        self._transitions[source].append((target, float(probability), holding))
        return self

    @classmethod
    def from_competing(
        cls,
        transitions: Mapping[State, Mapping[State, LifetimeDistribution]],
        n_grid: int = 2000,
    ) -> "SemiMarkovProcess":
        """Build an SMP from competing (race) transitions.

        ``transitions[source][target]`` is the firing-time distribution of
        that transition; on state entry all clocks restart and the
        earliest firing wins.  Branch probabilities
        ``p_ij = ∫ f_j(u) Π_{k≠j} S_k(u) du`` and the conditional holding
        distributions are computed on a numeric grid.

        Parameters
        ----------
        n_grid:
            Number of grid points used for the race integrals.
        """
        smp = cls()
        for source, targets in transitions.items():
            smp.add_state(source)
            if not targets:
                continue
            if len(targets) == 1:
                (target, dist), = targets.items()
                smp.add_transition(source, target, 1.0, dist)
                continue
            dists = list(targets.items())
            # Grid to ~the 99.999th percentile of the sojourn (min of clocks).
            horizon = min(dist.ppf(0.99999) for _, dist in dists)
            if not math.isfinite(horizon) or horizon <= 0:
                horizon = max(dist.mean() for _, dist in dists) * 20.0
            grid = np.linspace(0.0, horizon, n_grid)
            mid = 0.5 * (grid[:-1] + grid[1:])
            # Stieltjes integration over each clock's CDF increments
            # handles atoms (deterministic timers) that a pdf cannot.
            survs_mid = [np.asarray(dist.sf(mid), dtype=float) for _, dist in dists]
            cdf_inc = [
                np.diff(np.asarray(dist.cdf(grid), dtype=float)) for _, dist in dists
            ]
            all_sf_mid = np.prod(survs_mid, axis=0)
            for j, (target, _dist) in enumerate(dists):
                others_mid = np.where(
                    survs_mid[j] > 0, all_sf_mid / np.where(survs_mid[j] > 0, survs_mid[j], 1.0), 0.0
                )
                # P[j wins in bin l] ≈ dF_j(bin) * P[others survive past bin mid]
                win_mass = cdf_inc[j] * others_mid
                prob = float(win_mass.sum())
                if prob <= 1e-12:
                    continue
                win_cdf = np.concatenate([[0.0], np.cumsum(win_mass)])
                win_cdf /= win_cdf[-1]
                holding = EmpiricalDistribution(grid, win_cdf)
                smp.add_transition(source, target, prob, holding)
            # Renormalize branch probabilities to absorb grid error.
            entries = smp._transitions[source]
            total = sum(p for _, p, _ in entries)
            smp._transitions[source] = [(t, p / total, h) for t, p, h in entries]
        return smp

    # -------------------------------------------------------------- access
    @property
    def states(self) -> List[State]:
        """State labels in insertion order."""
        return list(self._states)

    def _check_probabilities(self) -> None:
        for state, entries in self._transitions.items():
            if not entries:
                continue
            total = sum(p for _, p, _ in entries)
            if not math.isclose(total, 1.0, abs_tol=1e-6):
                raise ModelDefinitionError(
                    f"branch probabilities from state {state!r} sum to {total}, expected 1"
                )

    def absorbing_states(self) -> List[State]:
        """States with no outgoing kernel entries."""
        return [s for s in self._states if not self._transitions[s]]

    def embedded_dtmc(self) -> DTMC:
        """The embedded (jump) DTMC with probabilities ``p_ij``."""
        self._check_probabilities()
        chain = DTMC(states=self._states)
        for source, entries in self._transitions.items():
            for target, prob, _holding in entries:
                chain.add_transition(source, target, prob)
        return chain

    def mean_sojourn(self, state: State) -> float:
        """Mean unconditional sojourn time ``h_i = Σ_j p_ij E[H_ij]``."""
        if state not in self._index:
            raise ModelDefinitionError(f"unknown state: {state!r}")
        entries = self._transitions[state]
        if not entries:
            raise StateSpaceError(f"state {state!r} is absorbing; its sojourn is infinite")
        return sum(p * holding.mean() for _, p, holding in entries)

    # ------------------------------------------------------------ analysis
    def steady_state(self) -> Dict[State, float]:
        """Long-run fraction of time in each state.

        ``π_i = ν_i h_i / Σ_j ν_j h_j`` with ν the embedded-chain
        stationary vector and ``h_i`` the mean sojourns — only the *means*
        of the holding distributions matter.
        """
        nu = self.embedded_dtmc().steady_state()
        weights = {s: nu[s] * self.mean_sojourn(s) for s in self._states}
        total = sum(weights.values())
        if total <= 0:
            raise SolverError("total weighted sojourn is zero; chain is degenerate")
        return {s: w / total for s, w in weights.items()}

    def expected_reward_rate(self, rewards: Mapping[State, float]) -> float:
        """Steady-state expected reward rate over the SMP."""
        pi = self.steady_state()
        return sum(float(rewards.get(s, 0.0)) * p for s, p in pi.items())

    def mean_time_to_absorption(self, initial: State) -> float:
        """Mean first-passage time into the absorbing set.

        Solves ``m_i = h_i + Σ_{j transient} p_ij m_j`` over transient
        states.
        """
        self._check_probabilities()
        absorbing = set(self.absorbing_states())
        if not absorbing:
            raise StateSpaceError("SMP has no absorbing states; MTTA is infinite")
        transient = [s for s in self._states if s not in absorbing]
        if initial in absorbing:
            return 0.0
        idx = {s: k for k, s in enumerate(transient)}
        n = len(transient)
        a = np.eye(n)
        b = np.zeros(n)
        for s in transient:
            b[idx[s]] = self.mean_sojourn(s)
            for target, prob, _holding in self._transitions[s]:
                if target in idx:
                    a[idx[s], idx[target]] -= prob
        try:
            m = np.linalg.solve(a, b)
        except np.linalg.LinAlgError as exc:
            raise SolverError("some transient state cannot reach absorption") from exc
        return float(m[idx[initial]])

    def transient(
        self,
        times,
        initial: State,
        dt: Optional[float] = None,
    ) -> np.ndarray:
        """Transient state probabilities by solving the Markov renewal equation.

        Discretizes ``V_ij(t) = δ_ij (1 - H_i(t)) + Σ_k ∫_0^t dK_ik(u)
        V_kj(t-u)`` on a uniform grid (first-order accurate in ``dt``).

        Parameters
        ----------
        times:
            Evaluation times (array).  Returns shape ``(len(times), n)``
            with columns in :attr:`states` order.
        initial:
            Starting state.
        dt:
            Grid step; defaults to ``max(times) / 2000``.
        """
        self._check_probabilities()
        ts = np.atleast_1d(np.asarray(times, dtype=float))
        if ts.size == 0:
            return np.zeros((0, len(self._states)))
        horizon = float(ts.max())
        if horizon == 0.0:
            out = np.zeros((ts.size, len(self._states)))
            out[:, self._index[initial]] = 1.0
            return out
        if dt is None:
            dt = horizon / 2000.0
        m = int(np.ceil(horizon / dt)) + 1
        grid = np.arange(m) * dt
        n = len(self._states)

        # Kernel increments dK[i][j][l] = K_ij(grid[l]) - K_ij(grid[l-1]).
        increments: Dict[Tuple[int, int], np.ndarray] = {}
        sojourn_sf = np.ones((n, m))
        for source, entries in self._transitions.items():
            i = self._index[source]
            total_cdf = np.zeros(m)
            for target, prob, holding in entries:
                j = self._index[target]
                cdf = prob * np.asarray(holding.cdf(grid), dtype=float)
                total_cdf += cdf
                inc = np.diff(np.concatenate([[0.0], cdf]))
                key = (i, j)
                increments[key] = increments.get(key, 0.0) + inc
            sojourn_sf[i] = np.clip(1.0 - total_cdf, 0.0, 1.0)

        # f[l][i] = probability mass of an entry (regeneration) into state
        # i at grid point l; march forward, spreading each entry's jump
        # kernel over later grid points.
        start = self._index[initial]
        f = np.zeros((m, n))
        f[0, start] = 1.0
        for l in range(m):
            active = np.nonzero(f[l] > 0)[0]
            for i in active:
                weight = f[l, i]
                state_i = self._states[i]
                for target, _prob, _holding in self._transitions[state_i]:
                    j = self._index[target]
                    inc = increments[(i, j)]
                    upto = m - l
                    f[l : l + upto, j] += weight * inc[:upto]

        # Occupancy: v_i(t_l) = Σ_k f[k, i] · sf_i(t_l - t_k).
        v = np.zeros((m, n))
        for i in range(n):
            v[:, i] = np.convolve(f[:, i], sojourn_sf[i])[:m]

        # Normalize drift from first-order discretization.
        row_sums = v.sum(axis=1)
        row_sums[row_sums == 0.0] = 1.0
        v = v / row_sums[:, None]

        out = np.empty((ts.size, n))
        for pos, t in enumerate(ts):
            l = min(int(round(t / dt)), m - 1)
            out[pos] = v[l]
        return out
