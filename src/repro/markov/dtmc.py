"""Discrete-time Markov chains (system S8 in DESIGN.md).

DTMCs appear in dependability practice as embedded chains of SMPs and
MRGPs, and directly in models that evolve per demand/cycle rather than in
continuous time (e.g. per-request failure models).  The steady-state
solver reuses GTH elimination on ``P - I``, inheriting its stiffness
robustness.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from .._validation import check_probability
from ..exceptions import ModelDefinitionError, SolverError, StateSpaceError
from .solvers import gth_solve

__all__ = ["DTMC"]

State = Hashable


class DTMC:
    """A finite discrete-time Markov chain with labelled states.

    Examples
    --------
    >>> chain = DTMC()
    >>> _ = chain.add_transition("sunny", "sunny", 0.8)
    >>> _ = chain.add_transition("sunny", "rainy", 0.2)
    >>> _ = chain.add_transition("rainy", "sunny", 0.5)
    >>> _ = chain.add_transition("rainy", "rainy", 0.5)
    >>> pi = chain.steady_state()
    >>> round(pi["sunny"], 6)
    0.714286
    """

    def __init__(self, states: Iterable[State] = ()):
        self._states: List[State] = []
        self._index: Dict[State, int] = {}
        self._probs: Dict[Tuple[int, int], float] = {}
        for state in states:
            self.add_state(state)

    # --------------------------------------------------------------- build
    def add_state(self, state: State) -> "DTMC":
        """Register a state (no-op when already present)."""
        if state not in self._index:
            self._index[state] = len(self._states)
            self._states.append(state)
        return self

    def add_transition(self, source: State, target: State, probability: float) -> "DTMC":
        """Add (or accumulate) a one-step transition probability."""
        check_probability(probability, "transition probability")
        self.add_state(source)
        self.add_state(target)
        key = (self._index[source], self._index[target])
        self._probs[key] = self._probs.get(key, 0.0) + float(probability)
        return self

    # -------------------------------------------------------------- access
    @property
    def states(self) -> List[State]:
        """State labels in index order."""
        return list(self._states)

    @property
    def n_states(self) -> int:
        """Number of states."""
        return len(self._states)

    def index_of(self, state: State) -> int:
        """Index of a state label."""
        try:
            return self._index[state]
        except KeyError:
            raise ModelDefinitionError(f"unknown state: {state!r}") from None

    def transition_matrix(self, validate: bool = True) -> np.ndarray:
        """Dense one-step transition matrix ``P``.

        States with no outgoing probability are treated as absorbing
        (``P[i, i] = 1``).  With ``validate`` (default) every row must sum
        to one within tolerance.
        """
        n = self.n_states
        if n == 0:
            raise ModelDefinitionError("chain has no states")
        p = np.zeros((n, n))
        for (i, j), prob in self._probs.items():
            p[i, j] += prob
        row_sums = p.sum(axis=1)
        for i in range(n):
            if row_sums[i] == 0.0:
                p[i, i] = 1.0
                row_sums[i] = 1.0
        if validate and not np.allclose(row_sums, 1.0, atol=1e-9):
            bad = [self._states[i] for i in np.where(~np.isclose(row_sums, 1.0, atol=1e-9))[0]]
            raise ModelDefinitionError(f"rows do not sum to 1 for states: {bad}")
        return p

    def absorbing_states(self) -> List[State]:
        """States whose only move is the implicit (or explicit) self-loop."""
        p = self.transition_matrix()
        return [self._states[i] for i in range(self.n_states) if p[i, i] >= 1.0 - 1e-12]

    def _initial_vector(self, initial) -> np.ndarray:
        vec = np.zeros(self.n_states)
        if isinstance(initial, Mapping):
            total = 0.0
            for state, prob in initial.items():
                vec[self.index_of(state)] = float(prob)
                total += float(prob)
            if not math.isclose(total, 1.0, abs_tol=1e-9):
                raise ModelDefinitionError(f"initial probabilities sum to {total}, expected 1")
        else:
            vec[self.index_of(initial)] = 1.0
        return vec

    # ------------------------------------------------------------ analysis
    def steady_state(self) -> Dict[State, float]:
        """Stationary distribution of an irreducible, aperiodic chain."""
        p = self.transition_matrix()
        pi = gth_solve(p - np.eye(self.n_states))
        return {state: float(pi[i]) for state, i in self._index.items()}

    def transient(self, steps: int, initial) -> Dict[State, float]:
        """Distribution after ``steps`` one-step transitions."""
        if steps < 0:
            raise ModelDefinitionError(f"steps must be >= 0, got {steps}")
        vec = self._initial_vector(initial)
        p = self.transition_matrix()
        for _ in range(steps):
            vec = vec @ p
        return {state: float(vec[i]) for state, i in self._index.items()}

    def _transient_block(
        self, absorbing: Optional[Iterable[State]]
    ) -> Tuple[List[int], List[int], np.ndarray]:
        if absorbing is None:
            absorbing_idx = {self._index[s] for s in self.absorbing_states()}
        else:
            absorbing_idx = {self.index_of(s) for s in absorbing}
        transient = [i for i in range(self.n_states) if i not in absorbing_idx]
        if not absorbing_idx:
            raise StateSpaceError("chain has no absorbing states")
        p = self.transition_matrix(validate=absorbing is None)
        if absorbing is not None:
            for i in absorbing_idx:
                p[i, :] = 0.0
                p[i, i] = 1.0
        return transient, sorted(absorbing_idx), p

    def fundamental_matrix(self, absorbing: Optional[Iterable[State]] = None) -> np.ndarray:
        """``N = (I - Q)^{-1}`` over the transient block.

        ``N[i, j]`` is the expected number of visits to transient state j
        starting from transient state i before absorption.
        """
        transient, _, p = self._transient_block(absorbing)
        q = p[np.ix_(transient, transient)]
        try:
            return np.linalg.inv(np.eye(len(transient)) - q)
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                "singular (I - Q): some transient state cannot reach absorption"
            ) from exc

    def expected_steps_to_absorption(
        self, initial, absorbing: Optional[Iterable[State]] = None
    ) -> float:
        """Expected number of steps until absorption."""
        transient, _, _ = self._transient_block(absorbing)
        n = self.fundamental_matrix(absorbing)
        p0 = self._initial_vector(initial)[transient]
        return float(p0 @ n.sum(axis=1))

    def absorption_probabilities(
        self, initial, absorbing: Optional[Iterable[State]] = None
    ) -> Dict[State, float]:
        """Probability of ending in each absorbing state (``B = N R``)."""
        transient, absorbing_idx, p = self._transient_block(absorbing)
        n = self.fundamental_matrix(absorbing)
        r = p[np.ix_(transient, absorbing_idx)]
        p0_full = self._initial_vector(initial)
        b = (p0_full[transient] @ n @ r) if transient else np.zeros(len(absorbing_idx))
        return {
            self._states[idx]: float(b[pos] + p0_full[idx])
            for pos, idx in enumerate(absorbing_idx)
        }

    def expected_visits(self, initial, absorbing: Optional[Iterable[State]] = None) -> Dict[State, float]:
        """Expected visits to each transient state before absorption."""
        transient, _, _ = self._transient_block(absorbing)
        n = self.fundamental_matrix(absorbing)
        p0 = self._initial_vector(initial)[transient]
        visits = p0 @ n
        return {self._states[idx]: float(visits[pos]) for pos, idx in enumerate(transient)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DTMC(n_states={self.n_states}, n_transitions={len(self._probs)})"
