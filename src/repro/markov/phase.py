"""Phase-type distributions and expansion into CTMCs (system S13).

A phase-type (PH) distribution is the time to absorption of a CTMC — the
densest Markov-friendly family: Erlang, hypo-/hyper-exponential and Coxian
distributions are all PH, and PH distributions are dense in the
non-negative laws.  The tutorial's recipe for non-exponential activities
inside an otherwise Markovian model is: fit a PH distribution to the
activity's first moments, then *expand* the activity's state into the PH
phases, recovering a (larger) CTMC.

This module provides the PH representation, closure operations
(convolution, probabilistic mixture, minimum), conversion of the
library's analytic distributions to PH form, and the two-state
up/down expansion used by benchmark E14.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import expm

from ..distributions import (
    Erlang,
    Exponential,
    HyperExponential,
    HypoExponential,
    LifetimeDistribution,
    fit_two_moments,
)
from ..distributions.base import LifetimeDistribution as _Base
from ..exceptions import DistributionError
from .ctmc import CTMC

__all__ = ["PhaseType", "as_phase_type", "fit_phase_type", "expand_two_state_availability"]


class PhaseType(_Base):
    """Continuous phase-type distribution ``PH(α, T)``.

    Parameters
    ----------
    alpha:
        Initial probability vector over the transient phases (its sum may
        be < 1; the deficit is an atom at zero).
    subgenerator:
        The transient block ``T`` of the defining CTMC's generator: strictly
        negative diagonal, non-negative off-diagonal, row sums <= 0.

    Examples
    --------
    >>> import numpy as np
    >>> ph = PhaseType([1.0, 0.0], [[-2.0, 2.0], [0.0, -3.0]])  # hypoexp(2, 3)
    >>> round(ph.mean(), 6)
    0.833333
    """

    def __init__(self, alpha: Sequence[float], subgenerator: Sequence[Sequence[float]]):
        alpha_arr = np.asarray(alpha, dtype=float)
        t = np.asarray(subgenerator, dtype=float)
        n = alpha_arr.size
        if t.shape != (n, n):
            raise DistributionError(
                f"subgenerator shape {t.shape} does not match alpha length {n}"
            )
        if np.any(alpha_arr < -1e-12) or alpha_arr.sum() > 1.0 + 1e-9:
            raise DistributionError("alpha must be non-negative with sum <= 1")
        if np.any(np.diag(t) >= 0):
            raise DistributionError("subgenerator diagonal must be strictly negative")
        off = t - np.diag(np.diag(t))
        if np.any(off < -1e-12):
            raise DistributionError("subgenerator off-diagonals must be non-negative")
        if np.any(t.sum(axis=1) > 1e-9):
            raise DistributionError("subgenerator row sums must be <= 0")
        self._alpha = np.clip(alpha_arr, 0.0, None)
        self._t = t
        self._exit = -t.sum(axis=1)

    # -------------------------------------------------------------- access
    @property
    def alpha(self) -> np.ndarray:
        """Initial phase distribution (copy)."""
        return self._alpha.copy()

    @property
    def subgenerator(self) -> np.ndarray:
        """Transient generator block ``T`` (copy)."""
        return self._t.copy()

    @property
    def n_phases(self) -> int:
        """Number of transient phases."""
        return self._alpha.size

    # ---------------------------------------------------------- interface
    def cdf(self, t):
        scalar = np.isscalar(t)
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        ones = np.ones(self.n_phases)
        out = np.empty(ts.shape)
        for k, ti in enumerate(ts):
            if ti <= 0:
                out[k] = 1.0 - self._alpha.sum() if ti == 0 else 0.0
                continue
            out[k] = 1.0 - float(self._alpha @ expm(self._t * ti) @ ones)
        out = np.clip(out, 0.0, 1.0)
        return float(out[0]) if scalar else out

    def pdf(self, t):
        scalar = np.isscalar(t)
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        out = np.empty(ts.shape)
        for k, ti in enumerate(ts):
            if ti < 0:
                out[k] = 0.0
                continue
            out[k] = float(self._alpha @ expm(self._t * ti) @ self._exit)
        out = np.maximum(out, 0.0)
        return float(out[0]) if scalar else out

    def moment(self, k: int) -> float:
        if k < 0:
            raise DistributionError(f"moment order must be >= 0, got {k}")
        if k == 0:
            return 1.0
        # E[T^k] = k! * alpha (-T)^{-k} 1
        neg_t_inv = np.linalg.inv(-self._t)
        vec = self._alpha.copy()
        for _ in range(k):
            vec = vec @ neg_t_inv
        return math.factorial(k) * float(vec.sum())

    def mean(self) -> float:
        return self.moment(1)

    def variance(self) -> float:
        mu = self.moment(1)
        return self.moment(2) - mu * mu

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        n = 1 if size is None else int(size)
        rates = -np.diag(self._t)
        # Jump probabilities among phases and to absorption.
        jump = self._t - np.diag(np.diag(self._t))
        draws = np.empty(n)
        alpha_total = self._alpha.sum()
        for idx in range(n):
            total = 0.0
            if rng.uniform() >= alpha_total:
                draws[idx] = 0.0
                continue
            phase = int(rng.choice(self.n_phases, p=self._alpha / alpha_total))
            while True:
                rate = rates[phase]
                total += rng.exponential(1.0 / rate)
                exit_prob = self._exit[phase] / rate
                u = rng.uniform()
                if u < exit_prob:
                    break
                probs = jump[phase] / rate
                remaining = probs.sum()
                probs = probs / remaining
                phase = int(rng.choice(self.n_phases, p=probs))
            draws[idx] = total
        return float(draws[0]) if size is None else draws

    # ------------------------------------------------------------ closure
    def convolve(self, other: "PhaseType") -> "PhaseType":
        """Distribution of the sum of two independent PH variables."""
        n, m = self.n_phases, other.n_phases
        t = np.zeros((n + m, n + m))
        t[:n, :n] = self._t
        t[n:, n:] = other._t
        t[:n, n:] = np.outer(self._exit, other._alpha)
        alpha = np.concatenate([self._alpha, (1.0 - self._alpha.sum()) * other._alpha])
        return PhaseType(alpha, t)

    def mixture(self, other: "PhaseType", weight: float) -> "PhaseType":
        """``weight``-mixture of self and ``other``."""
        if not 0.0 <= weight <= 1.0:
            raise DistributionError(f"mixture weight must be in [0, 1], got {weight}")
        n, m = self.n_phases, other.n_phases
        t = np.zeros((n + m, n + m))
        t[:n, :n] = self._t
        t[n:, n:] = other._t
        alpha = np.concatenate([weight * self._alpha, (1.0 - weight) * other._alpha])
        return PhaseType(alpha, t)

    def minimum(self, other: "PhaseType") -> "PhaseType":
        """Distribution of the minimum (Kronecker-sum construction)."""
        n, m = self.n_phases, other.n_phases
        t = np.kron(self._t, np.eye(m)) + np.kron(np.eye(n), other._t)
        alpha = np.kron(self._alpha, other._alpha)
        return PhaseType(alpha, t)

    # ---------------------------------------------------------- expansion
    def to_absorbing_ctmc(self, phase_prefix: str = "ph", absorbed: str = "done") -> CTMC:
        """The defining absorbing CTMC with labelled phases."""
        chain = CTMC()
        labels = [f"{phase_prefix}{i}" for i in range(self.n_phases)]
        for i in range(self.n_phases):
            for j in range(self.n_phases):
                if i != j and self._t[i, j] > 0.0:
                    chain.add_transition(labels[i], labels[j], self._t[i, j])
            if self._exit[i] > 0.0:
                chain.add_transition(labels[i], absorbed, self._exit[i])
        return chain


def as_phase_type(dist: LifetimeDistribution) -> PhaseType:
    """Exact PH representation of an analytically PH distribution.

    Supports :class:`Exponential`, :class:`Erlang`,
    :class:`HypoExponential` and :class:`HyperExponential`; other
    distributions need :func:`fit_phase_type`.
    """
    if isinstance(dist, PhaseType):
        return dist
    if isinstance(dist, Exponential):
        return PhaseType([1.0], [[-dist.rate]])
    if isinstance(dist, Erlang):
        return as_phase_type(HypoExponential(rates=(dist.rate,) * dist.stages))
    if isinstance(dist, HypoExponential):
        n = len(dist.rates)
        t = np.zeros((n, n))
        for i, r in enumerate(dist.rates):
            t[i, i] = -r
            if i + 1 < n:
                t[i, i + 1] = r
        alpha = np.zeros(n)
        alpha[0] = 1.0
        return PhaseType(alpha, t)
    if isinstance(dist, HyperExponential):
        n = len(dist.rates)
        t = np.diag([-r for r in dist.rates])
        return PhaseType(list(dist.probs), t)
    raise DistributionError(
        f"{type(dist).__name__} has no exact PH form; use fit_phase_type instead"
    )


def fit_phase_type(dist: LifetimeDistribution) -> PhaseType:
    """Two-moment PH approximation of an arbitrary lifetime distribution."""
    return as_phase_type(fit_two_moments(dist.mean(), dist.squared_cv()))


def expand_two_state_availability(
    uptime: LifetimeDistribution, downtime: LifetimeDistribution
) -> Tuple[CTMC, list, list]:
    """CTMC expansion of an alternating up/down process with PH durations.

    Converts (or fits) both durations to PH form, then builds the CTMC in
    which "up" phases cycle to "down" phases and back.  Returns
    ``(chain, up_states, down_states)`` ready for
    :class:`~repro.markov.ctmc.MarkovDependabilityModel`.
    """
    up_ph = as_phase_type(uptime) if _is_ph(uptime) else fit_phase_type(uptime)
    down_ph = as_phase_type(downtime) if _is_ph(downtime) else fit_phase_type(downtime)
    chain = CTMC()
    up_labels = [("up", i) for i in range(up_ph.n_phases)]
    down_labels = [("down", i) for i in range(down_ph.n_phases)]

    def wire(t: np.ndarray, labels, exit_rates, next_alpha, next_labels):
        for i, src in enumerate(labels):
            for j, dst in enumerate(labels):
                if i != j and t[i, j] > 0.0:
                    chain.add_transition(src, dst, t[i, j])
            if exit_rates[i] > 0.0:
                for j, dst in enumerate(next_labels):
                    rate = exit_rates[i] * next_alpha[j]
                    if rate > 0.0:
                        chain.add_transition(src, dst, rate)

    wire(up_ph.subgenerator, up_labels, -up_ph.subgenerator.sum(axis=1), down_ph.alpha, down_labels)
    wire(
        down_ph.subgenerator,
        down_labels,
        -down_ph.subgenerator.sum(axis=1),
        up_ph.alpha,
        up_labels,
    )
    return chain, up_labels, down_labels


def _is_ph(dist: LifetimeDistribution) -> bool:
    return isinstance(dist, (PhaseType, Exponential, Erlang, HypoExponential, HyperExponential))
