"""Dependability-protocol adapters for SMP and MRGP models.

Completes the "everything is a Model" story: semi-Markov and Markov
regenerative models plug into the same hierarchy/uncertainty machinery
as CTMCs and fault trees.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core.model import DependabilityModel
from ..exceptions import ModelDefinitionError
from .mrgp import MarkovRegenerativeProcess
from .smp import SemiMarkovProcess

__all__ = ["SemiMarkovDependabilityModel", "MRGPAvailabilityModel"]


class SemiMarkovDependabilityModel(DependabilityModel):
    """Dependability measures of an SMP with designated up states.

    Reliability measures are computed on a derived SMP in which every
    down state is absorbing (the mission ends at the first system
    failure); availability measures use the process as given.

    Parameters
    ----------
    smp:
        The semi-Markov process.
    up_states:
        Operational states.
    initial:
        Starting state.
    """

    def __init__(self, smp: SemiMarkovProcess, up_states: Iterable, initial):
        self.smp = smp
        self.up_states = set(up_states)
        unknown = [s for s in self.up_states if s not in set(smp.states)]
        if unknown:
            raise ModelDefinitionError(f"up states not in the SMP: {unknown}")
        if not self.up_states:
            raise ModelDefinitionError("at least one up state is required")
        self.initial = initial
        self._reliability_smp = self._absorb_down()

    def _absorb_down(self) -> SemiMarkovProcess:
        absorbed = SemiMarkovProcess()
        for state in self.smp.states:
            absorbed.add_state(state)
        for state in self.smp.states:
            if state not in self.up_states:
                continue  # down states become absorbing
            for target, prob, holding in self.smp._transitions[state]:
                absorbed.add_transition(state, target, prob, holding)
        return absorbed

    def steady_state_availability(self) -> float:
        """Long-run fraction of time in up states."""
        pi = self.smp.steady_state()
        return sum(pi[s] for s in self.up_states)

    def availability(self, t):
        """Point availability by the Markov renewal transient solution."""
        scalar = np.isscalar(t)
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        probs = self.smp.transient(ts, self.initial)
        idx = [self.smp.states.index(s) for s in self.up_states]
        out = probs[:, idx].sum(axis=1)
        return float(out[0]) if scalar else out

    def reliability(self, t):
        """Survival of the first passage into a down state."""
        scalar = np.isscalar(t)
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        probs = self._reliability_smp.transient(ts, self.initial)
        idx = [self._reliability_smp.states.index(s) for s in self.up_states]
        out = probs[:, idx].sum(axis=1)
        return float(out[0]) if scalar else out

    def mttf(self) -> float:
        """Mean first-passage time into the down set."""
        return self._reliability_smp.mean_time_to_absorption(self.initial)


class MRGPAvailabilityModel(DependabilityModel):
    """Steady-state availability adapter for an MRGP.

    MRGP transient analysis is out of scope (the tutorial's practical use
    of MRGPs is steady-state optimization, e.g. rejuvenation intervals);
    the adapter therefore implements only the steady-state measures of
    the protocol.
    """

    def __init__(self, mrgp: MarkovRegenerativeProcess, up_states: Iterable,
                 n_quadrature: int = 64):
        self.mrgp = mrgp
        self.up_states = set(up_states)
        unknown = [s for s in self.up_states if s not in set(mrgp.states)]
        if unknown:
            raise ModelDefinitionError(f"up states not in the MRGP: {unknown}")
        if not self.up_states:
            raise ModelDefinitionError("at least one up state is required")
        self.n_quadrature = int(n_quadrature)

    def steady_state_availability(self) -> float:
        """Long-run fraction of time in up states."""
        return self.mrgp.steady_state_availability(
            self.up_states, n_quadrature=self.n_quadrature
        )
