"""Markov reward models (system S10 in DESIGN.md).

A Markov reward model attaches a reward rate to every CTMC state; the
dependability measures of practice are all reward expectations:

* availability — reward 1 on up states, 0 on down states;
* capacity-oriented availability — reward = delivered capacity
  (e.g. number of working processors);
* expected cost rate — reward = cost per hour of each configuration.

Supported measures: steady-state expected reward rate, transient expected
reward rate ``E[X(t)]``, expected accumulated reward ``E[Y(t)]``, and its
time average.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import numpy as np

from ..exceptions import ModelDefinitionError
from .ctmc import CTMC

__all__ = ["MarkovRewardModel"]

State = Hashable


class MarkovRewardModel:
    """Reward-rate expectations over a CTMC.

    Parameters
    ----------
    chain:
        The underlying CTMC.
    rewards:
        Mapping state → reward rate.  Missing states earn zero.
    initial:
        Initial state (or distribution) for transient measures; optional
        when only steady-state measures are used.

    Examples
    --------
    >>> from repro.markov import CTMC
    >>> chain = CTMC()
    >>> _ = chain.add_transition("up", "down", 1.0)
    >>> _ = chain.add_transition("down", "up", 9.0)
    >>> model = MarkovRewardModel(chain, {"up": 1.0}, initial="up")
    >>> round(model.steady_state_reward_rate(), 6)
    0.9
    """

    def __init__(
        self,
        chain: CTMC,
        rewards: Mapping[State, float],
        initial=None,
    ):
        unknown = [s for s in rewards if s not in set(chain.states)]
        if unknown:
            raise ModelDefinitionError(f"rewards reference unknown states: {unknown}")
        self.chain = chain
        self.rewards = dict(rewards)
        self.initial = initial
        self._reward_vector = np.array(
            [float(self.rewards.get(s, 0.0)) for s in chain.states]
        )

    def _require_initial(self, initial):
        chosen = initial if initial is not None else self.initial
        if chosen is None:
            raise ModelDefinitionError("an initial state is required for transient measures")
        return chosen

    # ------------------------------------------------------------ measures
    def steady_state_reward_rate(self, method: str = "gth") -> float:
        """``Σ_s r(s) π_s`` — long-run expected reward rate."""
        return self.chain.expected_reward_rate(self.rewards, method=method)

    def expected_reward_rate(self, t, initial=None):
        """Transient expected reward rate ``E[X(t)] = Σ_s r(s) π_s(t)``."""
        initial = self._require_initial(initial)
        scalar = np.isscalar(t)
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        probs = self.chain.transient(ts, initial)
        out = probs @ self._reward_vector
        return float(out[0]) if scalar else out

    def expected_accumulated_reward(self, t, initial=None):
        """``E[Y(t)] = E[∫_0^t X(u) du]`` via cumulative uniformization."""
        initial = self._require_initial(initial)
        scalar = np.isscalar(t)
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        cumulative = self.chain.cumulative_transient(ts, initial)
        out = cumulative @ self._reward_vector
        return float(out[0]) if scalar else out

    def time_averaged_reward(self, t, initial=None):
        """``E[Y(t)] / t`` — e.g. interval availability for 0/1 rewards."""
        scalar = np.isscalar(t)
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        if np.any(ts <= 0):
            raise ModelDefinitionError("time-averaged reward requires t > 0")
        out = np.asarray(self.expected_accumulated_reward(ts, initial)) / ts
        return float(out[0]) if scalar else out

    def accumulated_reward_until_absorption(self, initial=None) -> float:
        """``E[Y(∞)]`` for an absorbing chain — e.g. expected total up time
        before the first unrecoverable failure."""
        initial = self._require_initial(initial)
        absorbing = self.chain.absorbing_states()
        if not absorbing:
            raise ModelDefinitionError("chain has no absorbing states; E[Y(∞)] diverges")
        # Expected total time in each transient state, weighted by reward.
        transient_states = [s for s in self.chain.states if s not in set(absorbing)]
        q = self.chain.generator().toarray()
        idx = [self.chain.index_of(s) for s in transient_states]
        sub = q[np.ix_(idx, idx)]
        p0 = np.zeros(len(idx))
        full0 = np.zeros(self.chain.n_states)
        if isinstance(initial, Mapping):
            for state, prob in initial.items():
                full0[self.chain.index_of(state)] = float(prob)
        else:
            full0[self.chain.index_of(initial)] = 1.0
        p0 = full0[idx]
        tau = np.linalg.solve(sub.T, -p0)
        rewards = np.array([float(self.rewards.get(s, 0.0)) for s in transient_states])
        return float(tau @ rewards)
