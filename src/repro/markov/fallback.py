"""Robust steady-state solving: pre-flight checks + solver fallback chains.

The three steady-state kernels fail differently: GTH is stiffness-proof
but dense and O(n³); SuperLU is fast for large sparse chains but can
lose the solution on extreme stiffness; power iteration is memory-light
but converges slowly when the subdominant eigenvalue hugs 1.  A
dependability toolchain should not make the user learn this the hard
way, so :func:`solve_steady_state` pre-checks the generator
(:func:`generator_diagnostics` — row sums, irreducibility via strongly
connected components, stiffness ratio), picks an order, and walks the
chain GTH → sparse-direct → power with NaN/Inf and residual guards
between stages.  Every attempt is recorded in a structured
:class:`SolverReport`, so a production sweep can log *why* a point was
solved by the second-choice method instead of silently diverging.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from ..exceptions import ModelDefinitionError, ReproError, SolverError
from ..obs.trace import get_tracer
from .registry import STEADY_STATE, SolverMethod, consume_iterations
from .solvers import validate_generator

__all__ = [
    "GeneratorDiagnostics",
    "generator_diagnostics",
    "SolverAttempt",
    "SolverReport",
    "solve_steady_state",
    "resolve_method_kwarg",
]

@dataclass(frozen=True)
class GeneratorDiagnostics:
    """Pre-flight facts about a CTMC generator.

    Attributes
    ----------
    n_states / nnz:
        Dimension and stored off-diagonal entry count.
    max_rate / min_rate:
        Largest and smallest positive off-diagonal rate.
    stiffness_ratio:
        ``max_rate / min_rate`` — availability models routinely span
        8–10 orders of magnitude (failures per 1e5 h vs repairs per
        hour), the regime where naive elimination loses precision and
        GTH must lead the fallback chain.
    max_row_sum_error:
        Largest absolute row sum (0 for an exact generator).
    n_strong_components:
        Number of strongly connected components of the transition
        structure; 1 means irreducible, the precondition for a unique
        stationary vector.
    """

    n_states: int
    nnz: int
    max_rate: float
    min_rate: float
    stiffness_ratio: float
    max_row_sum_error: float
    n_strong_components: int

    @property
    def irreducible(self) -> bool:
        """Whether the chain has a single strongly connected component."""
        return self.n_strong_components == 1


def generator_diagnostics(generator) -> GeneratorDiagnostics:
    """Compute :class:`GeneratorDiagnostics` for a dense or sparse generator.

    Purely observational — never raises on a defective generator (use
    :func:`~repro.markov.solvers.validate_generator` to enforce).
    """
    q = sparse.csr_matrix(generator, dtype=float)
    n = q.shape[0]
    off = q - sparse.diags(q.diagonal())
    off.eliminate_zeros()
    positive = off.data[off.data > 0.0]
    max_rate = float(positive.max()) if positive.size else 0.0
    min_rate = float(positive.min()) if positive.size else 0.0
    stiffness = max_rate / min_rate if min_rate > 0.0 else float("inf") if max_rate else 1.0
    row_sums = np.asarray(q.sum(axis=1)).ravel()
    max_row_err = float(np.abs(row_sums).max()) if row_sums.size else 0.0
    n_components = (
        int(csgraph.connected_components(off, directed=True, connection="strong")[0])
        if n
        else 0
    )
    return GeneratorDiagnostics(
        n_states=n,
        nnz=int(off.nnz),
        max_rate=max_rate,
        min_rate=min_rate,
        stiffness_ratio=float(stiffness),
        max_row_sum_error=max_row_err,
        n_strong_components=n_components,
    )


@dataclass(frozen=True)
class SolverAttempt:
    """One stage of a fallback chain: what ran and how it ended.

    Attributes
    ----------
    method:
        Stage name (``"gth"``, ``"direct"``, ``"power"`` or a custom
        stage key).
    success:
        Whether the stage produced a vector that passed the guards.
    duration:
        Wall-clock seconds spent in the stage.
    residual:
        Relative residual ``‖π Q‖∞ / max(1, max|Q|)`` of the produced
        vector (``NaN`` when the stage raised before producing one).
    error:
        ``"ExceptionType: message"`` for a failed stage, ``None`` on
        success.
    iterations:
        Krylov iterations the stage spent (``None`` for direct stages
        and kernels that don't report a count) — the number the
        preconditioner-refresh policy and tolerance tuning read.
    """

    method: str
    success: bool
    duration: float
    residual: float = float("nan")
    error: Optional[str] = None
    iterations: Optional[int] = None


class SolverReport:
    """Structured outcome of one :func:`solve_steady_state` call.

    Attributes
    ----------
    pi:
        The stationary vector (``None`` only while the report is under
        construction; a returned report always carries a solution).
    strategy:
        The strategy string the caller asked for.
    order:
        The stage order actually walked.
    attempts:
        One :class:`SolverAttempt` per stage tried, in order.
    diagnostics:
        The pre-flight :class:`GeneratorDiagnostics`.
    """

    def __init__(
        self,
        strategy: str,
        order: Tuple[str, ...],
        diagnostics: GeneratorDiagnostics,
        validation_seconds: float = 0.0,
    ):
        self.strategy = strategy
        self.order = tuple(order)
        self.diagnostics = diagnostics
        self.attempts: List[SolverAttempt] = []
        self.pi: Optional[np.ndarray] = None
        #: The generator is validated exactly once, up front; the stage
        #: solvers run with ``validated=True`` and skip the re-check.
        self.validations = 1
        self.validation_seconds = validation_seconds

    @property
    def ok(self) -> bool:
        """Whether a stage succeeded."""
        return self.pi is not None

    @property
    def method(self) -> Optional[str]:
        """Name of the winning stage (``None`` if every stage failed)."""
        for attempt in self.attempts:
            if attempt.success:
                return attempt.method
        return None

    @property
    def fallbacks_used(self) -> int:
        """How many stages failed before one succeeded."""
        return sum(1 for attempt in self.attempts if not attempt.success)

    @property
    def iterations(self) -> Optional[int]:
        """Krylov iterations of the winning stage (``None`` if unknown)."""
        for attempt in self.attempts:
            if attempt.success:
                return attempt.iterations
        return None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of the solve — the :class:`~repro.obs.Observation`
        archival form attached to ``solver.steady_state`` trace spans
        (the stationary vector itself is not embedded)."""
        return {
            "strategy": self.strategy,
            "order": list(self.order),
            "method": self.method,
            "ok": self.ok,
            "fallbacks_used": self.fallbacks_used,
            "validations": self.validations,
            "validation_seconds": self.validation_seconds,
            "diagnostics": asdict(self.diagnostics),
            "attempts": [asdict(attempt) for attempt in self.attempts],
        }

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline numbers (handy for table printing)."""
        winning = next((a for a in self.attempts if a.success), None)
        return {
            "n_states": float(self.diagnostics.n_states),
            "stiffness_ratio": self.diagnostics.stiffness_ratio,
            "n_attempts": float(len(self.attempts)),
            "fallbacks_used": float(self.fallbacks_used),
            "solve_time_s": float(sum(a.duration for a in self.attempts)),
            "residual": winning.residual if winning is not None else float("nan"),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        trail = " -> ".join(
            f"{a.method}{'✓' if a.success else '✗'}" for a in self.attempts
        )
        return (
            f"SolverReport({self.strategy!r}: {trail or 'no attempts'}, "
            f"n={self.diagnostics.n_states}, "
            f"stiffness {self.diagnostics.stiffness_ratio:.3g})"
        )


def _relative_residual(q: sparse.csr_matrix, pi: np.ndarray, max_rate: float) -> float:
    residual = np.abs(q.transpose().tocsr() @ pi)
    return float(residual.max()) / max(1.0, max_rate)


def resolve_method_kwarg(
    method: Optional[str],
    strategy: Optional[str],
    function: str,
    default: str = "auto",
) -> str:
    """Fold the deprecated ``strategy=`` kwarg into ``method=``.

    The shim behind the library-wide solver API unification: ``method=``
    is the one spelling (matching :meth:`CTMC.steady_state` and
    :meth:`CTMC.transient`), ``strategy=`` keeps working with a
    :class:`DeprecationWarning`, and passing both with different values
    is an error.
    """
    if strategy is not None:
        warnings.warn(
            f"{function}(strategy=...) is deprecated; use method=... "
            f"(same values, same semantics)",
            DeprecationWarning,
            stacklevel=3,
        )
        if method is not None and method != strategy:
            raise ModelDefinitionError(
                f"{function}() got both method={method!r} and the deprecated "
                f"strategy={strategy!r}; pass method= only"
            )
        return strategy
    return default if method is None else method


def solve_steady_state(
    generator,
    method: Optional[str] = None,
    order: Optional[Sequence[str]] = None,
    residual_tol: float = 1e-8,
    dense_limit: int = 2000,
    stiffness_threshold: float = 1e8,
    iterative_limit: int = 50_000,
    stages: Optional[Mapping[str, Callable]] = None,
    strategy: Optional[str] = None,
    diagnostics: str = "ignore",
    x0: Optional[np.ndarray] = None,
) -> SolverReport:
    """Steady-state vector via a diagnosed, guarded solver fallback chain.

    Parameters
    ----------
    generator:
        Dense or sparse CTMC generator.  Validated up front
        (:func:`~repro.markov.solvers.validate_generator`) and checked
        for irreducibility — a reducible chain has no unique stationary
        vector and raises
        :class:`~repro.exceptions.ModelDefinitionError` before any
        solver runs.
    method:
        ``"auto"`` (default) walks a fallback chain ordered by the
        diagnostics: GTH first for chains that are small
        (``n <= dense_limit``) or stiff
        (``stiffness_ratio >= stiffness_threshold``), sparse-direct
        first for large well-conditioned chains, and preconditioned
        Krylov iteration (``gmres`` → ``bicgstab`` → ``power``) above
        ``iterative_limit`` states, where factorizations stop being
        affordable.  Any single method name registered in
        :data:`repro.markov.registry.STEADY_STATE` — the built-ins
        ``"gth"`` / ``"direct"`` / ``"power"`` / ``"gmres"`` /
        ``"bicgstab"`` or a third-party backend added with
        ``register_method`` — runs as a one-stage chain (guards still
        applied).  Matches the ``method=`` kwarg of
        :meth:`repro.CTMC.steady_state`.
    order:
        Explicit stage order overriding the heuristic (implies
        ``"auto"`` semantics).
    residual_tol:
        Guard between stages: a stage's vector is accepted only when it
        is finite, non-negative and normalizable with relative residual
        ``‖π Q‖∞ / max(1, max|Q|) <= residual_tol``; otherwise the next
        stage runs.
    dense_limit / stiffness_threshold / iterative_limit:
        Knobs of the ``"auto"`` ordering heuristic.
    stages:
        Optional overrides ``{name: callable}`` for individual stages —
        the injection point used by the fault-injection harness
        (:class:`~repro.robust.FailingCallable`) to force and test
        fallbacks.  Overridden stages run exactly as given, without the
        registered method's pre-checks.
    strategy:
        Deprecated alias of ``method`` (the pre-unification spelling).
        Accepted with a :class:`DeprecationWarning`; results are
        bit-identical to the ``method=`` path.
    diagnostics:
        ``"ignore"`` (default), ``"warn"`` or ``"strict"`` — run the
        full :mod:`repro.analyze` lint pass (steady-state query) before
        solving.  Independent of the hard pre-flight validation, which
        always runs.
    x0:
        Optional warm-start vector forwarded to stages whose registered
        :class:`~repro.markov.registry.SolverMethod` declares
        ``accepts_x0`` (the Krylov backends).  Direct stages ignore it,
        so a chain stays correct when a warm-started iterative stage
        falls back to GTH.  Stage iteration counts land on
        ``SolverAttempt.iterations`` either way.

    Returns
    -------
    A :class:`SolverReport` whose ``pi`` holds the stationary vector and
    whose ``attempts`` record every stage tried.  Raises
    :class:`~repro.exceptions.SolverError` carrying the report as its
    ``report`` attribute when every stage fails.

    Examples
    --------
    >>> import numpy as np
    >>> q = np.array([[-1.0, 1.0], [2.0, -2.0]])
    >>> report = solve_steady_state(q)
    >>> report.method
    'gth'
    >>> np.round(report.pi, 8).tolist()
    [0.66666667, 0.33333333]
    """
    method = resolve_method_kwarg(method, strategy, "solve_steady_state")
    q = sparse.csr_matrix(generator, dtype=float)
    if diagnostics != "ignore":
        from ..analyze import run_diagnostics

        run_diagnostics(q, diagnostics, query="steady_state", where="solve_steady_state")
    validation_start = time.perf_counter()
    validate_generator(q)
    validation_seconds = time.perf_counter() - validation_start
    diagnostics = generator_diagnostics(q)
    if diagnostics.n_states == 0:
        raise ModelDefinitionError("generator has no states")
    if not diagnostics.irreducible and diagnostics.n_states > 1:
        raise ModelDefinitionError(
            f"chain is not irreducible ({diagnostics.n_strong_components} strongly "
            f"connected components); the stationary vector is not unique — solve "
            f"the recurrent class(es) separately"
        )

    known: Dict[str, Callable] = dict(STEADY_STATE.stages())
    if stages:
        # Explicit overrides (fault injection, experiments) replace the
        # whole stage including its pre-checks.
        known.update(stages)
    if order is not None:
        chain = tuple(STEADY_STATE.resolve(name) if name not in known else name
                      for name in order)
    elif method == "auto":
        if diagnostics.n_states > iterative_limit:
            chain = ("gmres", "bicgstab", "power")
        elif (
            diagnostics.n_states <= dense_limit
            or diagnostics.stiffness_ratio >= stiffness_threshold
        ):
            chain = ("gth", "direct", "power")
        else:
            chain = ("direct", "power", "gth")
        # Methods whose supports-predicate rejects this chain drop out of
        # the auto ordering (an explicit method= still runs them).
        chain = tuple(
            name
            for name in chain
            if not (
                isinstance(known.get(name), SolverMethod)
                and known[name].supports is not None
                and not known[name].supports(diagnostics)
            )
        )
    elif STEADY_STATE.resolve(method) in known:
        chain = (STEADY_STATE.resolve(method),)
    else:
        raise SolverError(
            f"unknown method {method!r}; use 'auto', one of "
            f"{sorted(known)}, or pass an explicit order"
        )
    unknown = [name for name in chain if name not in known]
    if unknown:
        raise SolverError(f"unknown solver stage(s) {unknown}; known: {sorted(known)}")

    tracer = get_tracer()
    report = SolverReport(method, chain, diagnostics, validation_seconds)
    with tracer.span(
        "solver.steady_state",
        method=method,
        n_states=diagnostics.n_states,
        stiffness_ratio=diagnostics.stiffness_ratio,
    ) as outer_span:
        for name in chain:
            start = time.perf_counter()
            stage = known[name]
            stage_kwargs = {}
            if (
                x0 is not None
                and isinstance(stage, SolverMethod)
                and stage.accepts_x0
            ):
                stage_kwargs["x0"] = x0
            consume_iterations()  # clear any stale count from this thread
            with tracer.span("solver.stage", method=name) as span:
                try:
                    pi = np.asarray(stage(q, **stage_kwargs), dtype=float)
                    if pi.shape != (diagnostics.n_states,):
                        raise SolverError(
                            f"stage returned shape {pi.shape}, expected ({diagnostics.n_states},)"
                        )
                    if not np.all(np.isfinite(pi)):
                        raise SolverError("stage produced non-finite probabilities")
                    if float(pi.min()) < -1e-12:
                        raise SolverError(
                            f"stage produced negative probability {pi.min():.3g}"
                        )
                    total = float(pi.sum())
                    if total <= 0.0:
                        raise SolverError("stage produced a zero vector")
                    pi = np.maximum(pi, 0.0) / total
                    residual = _relative_residual(q, pi, diagnostics.max_rate)
                    if residual > residual_tol:
                        raise SolverError(
                            f"stage residual {residual:.3g} exceeds tolerance "
                            f"{residual_tol:.3g}"
                        )
                except (
                    ReproError,
                    np.linalg.LinAlgError,
                    ValueError,
                    ArithmeticError,
                    RuntimeError,
                ) as exc:
                    report.attempts.append(
                        SolverAttempt(
                            method=name,
                            success=False,
                            duration=time.perf_counter() - start,
                            error=f"{type(exc).__name__}: {exc}",
                            iterations=consume_iterations(),
                        )
                    )
                    span.set(success=False, error=f"{type(exc).__name__}: {exc}")
                    tracer.metrics.counter("solver.stage.failure", method=name).inc()
                    continue
                report.attempts.append(
                    SolverAttempt(
                        method=name,
                        success=True,
                        duration=time.perf_counter() - start,
                        residual=residual,
                        iterations=consume_iterations(),
                    )
                )
                span.set(success=True, residual=residual)
                tracer.metrics.counter("solver.stage.success", method=name).inc()
                if report.fallbacks_used:
                    tracer.metrics.counter("solver.fallbacks").inc(report.fallbacks_used)
            if report.attempts[-1].success:
                report.pi = pi
                outer_span.observe(report, key="solver_report")
                return report

    trail = "; ".join(f"{a.method}: {a.error}" for a in report.attempts)
    error = SolverError(
        f"every steady-state stage failed for the {diagnostics.n_states}-state "
        f"chain (stiffness {diagnostics.stiffness_ratio:.3g}): {trail}"
    )
    error.report = report
    raise error
