"""State-space dependability models (systems S8–S13 in DESIGN.md).

Continuous- and discrete-time Markov chains, Markov reward models,
semi-Markov and Markov regenerative processes, phase-type distributions,
and the numeric solver kernels (GTH, uniformization) they share.
"""

from .acyclic import AcyclicTransientSolution, ExpPolynomial, acyclic_transient
from .adapters import MRGPAvailabilityModel, SemiMarkovDependabilityModel
from .ctmc import CTMC, MarkovDependabilityModel
from .dtmc import DTMC
from .fallback import (
    GeneratorDiagnostics,
    SolverAttempt,
    SolverReport,
    generator_diagnostics,
    resolve_method_kwarg,
    solve_steady_state,
)
from .mrgp import GeneralTransition, MarkovRegenerativeProcess
from .mrm import MarkovRewardModel
from .phase import PhaseType, as_phase_type, expand_two_state_availability, fit_phase_type
from .registry import STEADY_STATE, TRANSIENT, SolverMethod, SolverRegistry
from .sensitivity import reward_rate_derivative, steady_state_derivative
from .smp import SemiMarkovProcess
from .solvers import (
    cumulative_uniformization,
    gth_solve,
    poisson_truncation_point,
    solve_transient,
    steady_state_direct,
    steady_state_power,
    transient_ode,
    transient_uniformization,
    uniformized_matrix,
    validate_generator,
)

__all__ = [
    "CTMC",
    "acyclic_transient",
    "AcyclicTransientSolution",
    "ExpPolynomial",
    "DTMC",
    "MarkovDependabilityModel",
    "MarkovRewardModel",
    "SemiMarkovProcess",
    "SemiMarkovDependabilityModel",
    "MarkovRegenerativeProcess",
    "MRGPAvailabilityModel",
    "GeneralTransition",
    "PhaseType",
    "as_phase_type",
    "fit_phase_type",
    "expand_two_state_availability",
    "steady_state_derivative",
    "reward_rate_derivative",
    "gth_solve",
    "steady_state_direct",
    "steady_state_power",
    "uniformized_matrix",
    "poisson_truncation_point",
    "solve_transient",
    "transient_ode",
    "transient_uniformization",
    "cumulative_uniformization",
    "validate_generator",
    "generator_diagnostics",
    "GeneratorDiagnostics",
    "SolverAttempt",
    "SolverReport",
    "solve_steady_state",
    "resolve_method_kwarg",
    "SolverMethod",
    "SolverRegistry",
    "STEADY_STATE",
    "TRANSIENT",
]
