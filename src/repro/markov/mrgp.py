"""Markov regenerative processes (system S12 in DESIGN.md).

An MRGP generalizes the SMP: between regeneration epochs the process may
keep moving through states while a *general* (non-exponential) timer
stays armed.  The canonical example — and the tutorial's flagship
application — is **software rejuvenation**: a deterministic rejuvenation
timer runs while the software drifts from robust to failure-probable
states; whichever of timer, failure, or repair happens first decides the
next regeneration cycle.

This module implements the practical subclass of MRGPs under the classic
*enabling restriction* (Choi, Kulkarni & Trivedi 1994): at most one
general transition is enabled in any marking/state, with exponential
transitions racing against it.  Solution is by the embedded Markov
renewal sequence:

1. a regeneration cycle starts on entry into a general transition's
   enabled region (the timer arms) or in a purely exponential state;
2. within a cycle, a *subordinated CTMC* (the exponential transitions
   restricted to the enabled region, exits made absorbing) evolves until
   the timer fires or the region is left;
3. expected per-cycle sojourn times and end-of-cycle jump probabilities
   define an embedded DTMC whose stationary vector, weighted by cycle
   sojourns, gives the long-run state probabilities.

Deterministic timers are handled exactly (single subordinated transient
evaluation); general firing-time distributions are integrated by
quantile quadrature.
"""

from __future__ import annotations


from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

import networkx as nx
import numpy as np

from .._validation import check_rate
from ..distributions import Deterministic, LifetimeDistribution
from ..exceptions import ModelDefinitionError, SolverError, StateSpaceError
from .ctmc import CTMC
from .dtmc import DTMC

__all__ = ["GeneralTransition", "MarkovRegenerativeProcess"]

State = Hashable


class GeneralTransition:
    """A generally distributed timed transition of an MRGP.

    Parameters
    ----------
    name:
        Identifier (for diagnostics).
    firing_time:
        Firing-time distribution; the clock arms on entry into
        ``enabled_states`` from outside and is *cancelled* if the process
        leaves the region before firing.
    enabled_states:
        States in which the clock keeps running.
    targets:
        Mapping from each enabled state to the state reached when the
        clock fires there.  Every enabled state must have a target.
    """

    def __init__(
        self,
        name: str,
        firing_time: LifetimeDistribution,
        enabled_states: Iterable[State],
        targets: Mapping[State, State],
    ):
        self.name = str(name)
        self.firing_time = firing_time
        self.enabled_states = frozenset(enabled_states)
        if not self.enabled_states:
            raise ModelDefinitionError(f"general transition {name!r} enables no states")
        missing = [s for s in self.enabled_states if s not in targets]
        if missing:
            raise ModelDefinitionError(
                f"general transition {name!r} lacks firing targets for states: {missing}"
            )
        self.targets = {s: targets[s] for s in self.enabled_states}


class MarkovRegenerativeProcess:
    """An MRGP with exponential transitions plus general timed transitions.

    Examples
    --------
    The classic two-phase rejuvenation model is in
    :mod:`repro.casestudies.rejuvenation`; a minimal deterministic-repair
    system looks like::

        >>> from repro.distributions import Deterministic
        >>> mrgp = MarkovRegenerativeProcess()
        >>> _ = mrgp.add_exponential("up", "down", 0.01)
        >>> _ = mrgp.add_general("repair", Deterministic(5.0), ["down"], {"down": "up"})
        >>> pi = mrgp.steady_state()
        >>> round(pi["up"], 6)                    # 100 / 105
        0.952381
    """

    def __init__(self):
        self._states: List[State] = []
        self._index: Dict[State, int] = {}
        self._exp_rates: Dict[Tuple[State, State], float] = {}
        self._generals: List[GeneralTransition] = []

    # --------------------------------------------------------------- build
    def add_state(self, state: State) -> "MarkovRegenerativeProcess":
        """Register a state (no-op when already present)."""
        if state not in self._index:
            self._index[state] = len(self._states)
            self._states.append(state)
        return self

    def add_exponential(
        self, source: State, target: State, rate: float
    ) -> "MarkovRegenerativeProcess":
        """Add an exponential transition."""
        if source == target:
            raise ModelDefinitionError("self-loops are meaningless")
        check_rate(rate)
        self.add_state(source)
        self.add_state(target)
        key = (source, target)
        self._exp_rates[key] = self._exp_rates.get(key, 0.0) + float(rate)
        return self

    def add_general(
        self,
        name: str,
        firing_time: LifetimeDistribution,
        enabled_states: Iterable[State],
        targets: Mapping[State, State],
    ) -> "MarkovRegenerativeProcess":
        """Add a general timed transition (see :class:`GeneralTransition`)."""
        transition = GeneralTransition(name, firing_time, enabled_states, targets)
        for state in transition.enabled_states:
            self.add_state(state)
        for state in transition.targets.values():
            self.add_state(state)
        for existing in self._generals:
            overlap = existing.enabled_states & transition.enabled_states
            if overlap:
                raise ModelDefinitionError(
                    f"general transitions {existing.name!r} and {name!r} are both "
                    f"enabled in {sorted(map(str, overlap))}; the enabling "
                    "restriction allows at most one"
                )
        self._generals.append(transition)
        return self

    # -------------------------------------------------------------- access
    @property
    def states(self) -> List[State]:
        """State labels in insertion order."""
        return list(self._states)

    def _general_for(self, state: State) -> Optional[GeneralTransition]:
        for transition in self._generals:
            if state in transition.enabled_states:
                return transition
        return None

    def _exit_rate(self, state: State) -> float:
        return sum(rate for (src, _), rate in self._exp_rates.items() if src == state)

    # --------------------------------------------------- cycle computation
    def _exponential_cycle(
        self, state: State
    ) -> Tuple[Dict[State, float], Dict[State, float], float]:
        """(jump probabilities, sojourns, cycle length) for a pure-exponential state."""
        exit_rate = self._exit_rate(state)
        if exit_rate <= 0.0:
            raise StateSpaceError(
                f"state {state!r} is absorbing; the MRGP has no steady state"
            )
        jumps = {
            dst: rate / exit_rate
            for (src, dst), rate in self._exp_rates.items()
            if src == state
        }
        sojourns = {state: 1.0 / exit_rate}
        return jumps, sojourns, 1.0 / exit_rate

    def _subordinated_chain(
        self, transition: GeneralTransition
    ) -> Tuple[CTMC, List[State], List[State]]:
        """Subordinated CTMC over the enabled region, exits absorbing."""
        region = transition.enabled_states
        chain = CTMC()
        exits: List[State] = []
        for state in region:
            chain.add_state(state)
        for (src, dst), rate in self._exp_rates.items():
            if src in region:
                chain.add_transition(src, dst, rate)
                if dst not in region and dst not in exits:
                    exits.append(dst)
        region_states = [s for s in chain.states if s in region]
        return chain, region_states, exits

    def _general_cycle(
        self,
        entry: State,
        transition: GeneralTransition,
        n_quadrature: int,
    ) -> Tuple[Dict[State, float], Dict[State, float], float]:
        """(jump probabilities, sojourns, cycle length) for a region entry.

        Conditions on the timer's firing time ``w`` (quantile quadrature;
        exact single point for deterministic timers), using the
        subordinated chain's transient and cumulative-transient solutions
        at ``w``.
        """
        chain, region_states, exits = self._subordinated_chain(transition)
        if isinstance(transition.firing_time, Deterministic):
            points = [transition.firing_time.value]
        else:
            qs = (np.arange(n_quadrature) + 0.5) / n_quadrature
            points = [float(transition.firing_time.ppf(q)) for q in qs]
        weights = [1.0 / len(points)] * len(points)

        times = np.array(sorted(set(points)))
        probs = chain.transient(times, entry)
        cumulative = chain.cumulative_transient(times, entry)
        time_index = {t: k for k, t in enumerate(times)}

        jumps: Dict[State, float] = {}
        sojourns: Dict[State, float] = {}
        cycle_length = 0.0
        region_idx = [chain.index_of(s) for s in region_states]
        exit_idx = [chain.index_of(s) for s in exits]

        for w, weight in zip(points, weights):
            k = time_index[w]
            # Timer fires at w while still in the region:
            for s, i in zip(region_states, region_idx):
                p_here = float(probs[k, i])
                if p_here > 0.0:
                    target = transition.targets[s]
                    jumps[target] = jumps.get(target, 0.0) + weight * p_here
            # Region left before w — the cycle ended at the exit jump:
            for s, i in zip(exits, exit_idx):
                p_exit = float(probs[k, i])
                if p_exit > 0.0:
                    jumps[s] = jumps.get(s, 0.0) + weight * p_exit
            # Sojourns within the region up to min(fire, exit):
            for s, i in zip(region_states, region_idx):
                stay = float(cumulative[k, i])
                if stay > 0.0:
                    sojourns[s] = sojourns.get(s, 0.0) + weight * stay
                    cycle_length += weight * stay
        return jumps, sojourns, cycle_length

    def _cycle(
        self, state: State, n_quadrature: int
    ) -> Tuple[Dict[State, float], Dict[State, float], float]:
        transition = self._general_for(state)
        if transition is None:
            return self._exponential_cycle(state)
        return self._general_cycle(state, transition, n_quadrature)

    # ------------------------------------------------------------ analysis
    def steady_state(self, n_quadrature: int = 64) -> Dict[State, float]:
        """Long-run state probabilities.

        Parameters
        ----------
        n_quadrature:
            Quadrature points for non-deterministic general firing times.

        Notes
        -----
        Regeneration entries are (a) entries into a general transition's
        region (timer arms) and (b) pure exponential states.  An
        exponential move *within* a region does not regenerate — the
        subordinated CTMC handles it — so the embedded chain below is over
        cycle-entry states only.
        """
        if not self._states:
            raise ModelDefinitionError("MRGP has no states")
        cycles: Dict[State, Tuple[Dict[State, float], Dict[State, float], float]] = {}

        def ensure_cycle(state: State) -> None:
            if state not in cycles:
                cycles[state] = self._cycle(state, n_quadrature)

        # Discover cycle-entry states reachable from every state (steady
        # state of an irreducible MRGP touches them all; harmless extras
        # get zero embedded probability).
        for state in self._states:
            ensure_cycle(state)

        # The embedded chain may contain transient entry states (states
        # only visited inside a region, never entered from outside).  GTH
        # needs irreducibility, so restrict to the terminal strongly
        # connected class of the embedded jump graph.
        graph = nx.DiGraph()
        for state, (jumps, _sojourns, _length) in cycles.items():
            graph.add_node(state)
            total = sum(jumps.values())
            if total <= 0.0:
                raise StateSpaceError(f"cycle from {state!r} has no successor")
            for target, prob in jumps.items():
                if prob > 0.0:
                    graph.add_edge(state, target)
        condensation = nx.condensation(graph)
        terminal = [c for c in condensation.nodes if condensation.out_degree(c) == 0]
        if len(terminal) != 1:
            raise StateSpaceError(
                f"embedded chain has {len(terminal)} closed classes; the MRGP is not ergodic"
            )
        recurrent = set(condensation.nodes[terminal[0]]["members"])

        embedded = DTMC()
        for state in cycles:
            if state not in recurrent:
                continue
            jumps = cycles[state][0]
            total = sum(prob for target, prob in jumps.items() if target in recurrent)
            if total <= 0.0:
                raise StateSpaceError(f"cycle from {state!r} escapes its closed class")
            embedded.add_state(state)
            for target, prob in jumps.items():
                if target in recurrent and prob > 0.0:
                    embedded.add_transition(state, target, prob / total)

        nu_recurrent = embedded.steady_state()
        nu = {s: nu_recurrent.get(s, 0.0) for s in cycles}
        denom = sum(nu[s] * cycles[s][2] for s in cycles)
        if denom <= 0.0:
            raise SolverError("total cycle time is zero; model is degenerate")
        pi: Dict[State, float] = {s: 0.0 for s in self._states}
        for entry, (jumps, sojourns, _length) in cycles.items():
            weight = nu[entry]
            if weight <= 0.0:
                continue
            for state, stay in sojourns.items():
                pi[state] += weight * stay
        return {s: value / denom for s, value in pi.items()}

    def expected_reward_rate(
        self, rewards: Mapping[State, float], n_quadrature: int = 64
    ) -> float:
        """Steady-state expected reward rate ``Σ_s r(s) π_s``."""
        pi = self.steady_state(n_quadrature=n_quadrature)
        return sum(float(rewards.get(s, 0.0)) * p for s, p in pi.items())

    def steady_state_availability(
        self, up_states: Iterable[State], n_quadrature: int = 64
    ) -> float:
        """Long-run availability with the given up-state set."""
        up = set(up_states)
        pi = self.steady_state(n_quadrature=n_quadrature)
        return sum(p for s, p in pi.items() if s in up)
