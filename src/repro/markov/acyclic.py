"""Closed-form transient solution of acyclic CTMCs (ACE algorithm).

Pure reliability models — no repair — have acyclic state graphs, and
their transient probabilities are *exactly* representable as sums of
exponential-polynomial terms ``c · t^m · e^{-d t}``.  Processing states
in topological order and integrating each inflow term analytically gives
a symbolic solution (the approach of HARP's ACE solver): no time
stepping, no truncation error, evaluable at any ``t`` in O(#terms).

This is both a fast path for mission-reliability studies and an
independent oracle for the uniformization solver.

.. note::
   Like all partial-fraction methods, the closed form is numerically
   ill-conditioned when many *nearly equal but distinct* rates occur on
   one path (coefficients grow like ``1/Δrate^depth`` with alternating
   signs).  It is intended for small-to-moderate acyclic models — the
   classical ACE use case; for long chains of similar rates prefer
   uniformization, or make the rates exactly equal (the resonant case is
   handled stably with polynomial terms).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Tuple

import networkx as nx
import numpy as np

from ..exceptions import StateSpaceError
from .ctmc import CTMC

__all__ = ["ExpPolynomial", "AcyclicTransientSolution", "acyclic_transient"]

State = Hashable

#: rates closer than this are merged (resonant integration case)
_RATE_TOLERANCE = 1e-12


class ExpPolynomial:
    """A finite sum of terms ``c · t^m · e^{-d t}``.

    Immutable value object; the class supports the two operations the ACE
    recursion needs: scaling/adding, and solving ``y' + d y = f`` with
    ``y(0) = y0`` where ``f`` is an ExpPolynomial.
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[Tuple[float, int], float] = ()):
        cleaned: Dict[Tuple[float, int], float] = {}
        for (rate, power), coeff in dict(terms).items():
            if abs(coeff) > 0.0:
                cleaned[(float(rate), int(power))] = cleaned.get(
                    (float(rate), int(power)), 0.0
                ) + float(coeff)
        self._terms = {k: v for k, v in cleaned.items() if v != 0.0}

    @classmethod
    def exponential(cls, coefficient: float, rate: float) -> "ExpPolynomial":
        """The single term ``coefficient · e^{-rate t}``."""
        return cls({(rate, 0): coefficient})

    @property
    def terms(self) -> Dict[Tuple[float, int], float]:
        """Mapping ``(rate, power) -> coefficient`` (copy)."""
        return dict(self._terms)

    def __add__(self, other: "ExpPolynomial") -> "ExpPolynomial":
        merged = dict(self._terms)
        for key, coeff in other._terms.items():
            merged[key] = merged.get(key, 0.0) + coeff
        return ExpPolynomial(merged)

    def scale(self, factor: float) -> "ExpPolynomial":
        """Pointwise multiplication by a scalar."""
        return ExpPolynomial({k: factor * c for k, c in self._terms.items()})

    def __call__(self, t):
        ts = np.asarray(t, dtype=float)
        out = np.zeros_like(ts, dtype=float)
        for (rate, power), coeff in self._terms.items():
            out = out + coeff * ts**power * np.exp(-rate * ts)
        return out if out.ndim else float(out)

    def solve_linear_ode(self, diagonal: float, initial: float) -> "ExpPolynomial":
        """Closed-form solution of ``y' + diagonal·y = self``, ``y(0)=initial``.

        ``y(t) = e^{-d t} [ initial + ∫_0^t e^{d s} f(s) ds ]`` with each
        inflow term integrated analytically; the resonant case (inflow
        rate equal to ``diagonal``) raises the polynomial power.
        """
        d = float(diagonal)
        result: Dict[Tuple[float, int], float] = {}

        def add(rate: float, power: int, coeff: float) -> None:
            if coeff != 0.0:
                key = (rate, power)
                result[key] = result.get(key, 0.0) + coeff

        add(d, 0, float(initial))
        for (a, m), c in self._terms.items():
            b = a - d
            if abs(b) <= _RATE_TOLERANCE * max(1.0, abs(a), abs(d)):
                # resonance: ∫ s^m ds = t^{m+1}/(m+1)
                add(d, m + 1, c / (m + 1))
                continue
            m_fact = math.factorial(m)
            # steady part decaying at e^{-d t}:
            add(d, 0, c * m_fact / b ** (m + 1))
            # transient part decaying at e^{-a t}:
            for k in range(m + 1):
                add(a, k, -c * m_fact / (math.factorial(k) * b ** (m - k + 1)))
        return ExpPolynomial(result)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [
            f"{c:+.4g}·t^{m}·e^(-{r:.4g}t)" for (r, m), c in sorted(self._terms.items())
        ]
        return "ExpPolynomial(" + " ".join(parts or ["0"]) + ")"


class AcyclicTransientSolution:
    """Symbolic transient solution of an acyclic CTMC.

    Attributes
    ----------
    chain:
        The analyzed chain.
    expressions:
        Mapping state → :class:`ExpPolynomial` for π_state(t).
    """

    def __init__(self, chain: CTMC, expressions: Dict[State, ExpPolynomial]):
        self.chain = chain
        self.expressions = expressions

    def probability(self, state: State, t):
        """π_state(t), exactly."""
        return self.expressions[state](t)

    def evaluate(self, times) -> np.ndarray:
        """Matrix of state probabilities, shape ``(len(times), n_states)``."""
        ts = np.atleast_1d(np.asarray(times, dtype=float))
        out = np.empty((ts.size, self.chain.n_states))
        for state, expr in self.expressions.items():
            out[:, self.chain.index_of(state)] = np.asarray(expr(ts))
        return out

    def reliability(self, up_states, t):
        """Σ over up states of π(t) — the usual mission-reliability readout."""
        ts = np.asarray(t, dtype=float)
        total = np.zeros_like(ts, dtype=float)
        for state in up_states:
            total = total + np.asarray(self.expressions[state](ts))
        return total if total.ndim else float(total)

    def n_terms(self) -> int:
        """Total number of exponential-polynomial terms in the solution."""
        return sum(len(expr.terms) for expr in self.expressions.values())


def acyclic_transient(chain: CTMC, initial) -> AcyclicTransientSolution:
    """Symbolically solve an acyclic CTMC's transient behaviour.

    Parameters
    ----------
    chain:
        A CTMC whose transition graph is acyclic (typical of no-repair
        reliability models).  Cyclic chains raise
        :class:`~repro.exceptions.StateSpaceError`.
    initial:
        Initial state label or distribution mapping.

    Examples
    --------
    >>> chain = CTMC()
    >>> _ = chain.add_transition(2, 1, 2.0)
    >>> _ = chain.add_transition(1, 0, 1.0)
    >>> solution = acyclic_transient(chain, 2)
    >>> round(solution.probability(2, 0.5), 10)    # e^{-2·0.5}
    0.3678794412
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(chain.states)
    for src in chain.states:
        for dst in chain.states:
            if src != dst and chain.rate(src, dst) > 0:
                graph.add_edge(src, dst)
    if not nx.is_directed_acyclic_graph(graph):
        raise StateSpaceError(
            "chain has cycles; the ACE closed form needs an acyclic graph "
            "(use uniformization instead)"
        )

    if isinstance(initial, Mapping):
        p0 = {state: float(initial.get(state, 0.0)) for state in chain.states}
    else:
        p0 = {state: (1.0 if state == initial else 0.0) for state in chain.states}

    expressions: Dict[State, ExpPolynomial] = {}
    for state in nx.topological_sort(graph):
        inflow = ExpPolynomial()
        for pred in graph.predecessors(state):
            rate = chain.rate(pred, state)
            inflow = inflow + expressions[pred].scale(rate)
        diagonal = chain.exit_rate(state)
        expressions[state] = inflow.solve_linear_ode(diagonal, p0[state])
    return AcyclicTransientSolution(chain, expressions)
