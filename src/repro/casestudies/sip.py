"""IBM SIP/WebSphere composite availability model (tutorial, E21).

The largest of the tutorial's industrial hierarchies (Trivedi et al.,
"Availability Modeling of SIP Protocol on IBM WebSphere"): a SIP
telephony service on a WebSphere Application Server cluster — redundant
proxy servers front a cluster of application-server nodes, each node
running hardware, OS and the WebSphere/SIP software stack, with software
recovery escalation (process restart, then node reboot).

The reproduction keeps the published architecture:

* **leaf CTMCs**: (a) a node's software stack with two-level recovery
  escalation and imperfect restart coverage; (b) node hardware; (c) a
  redundant proxy pair with failover;
* **mid level**: a node = hardware ∧ software (series RBD);
* **top level**: service up while the proxy pair is up and at least
  ``k`` of ``n`` application nodes are up — a k-of-n RBD over the node
  availabilities.

The reproduced claims: overall availability lands near four nines with
default parameters; software failures dominate hardware; and the E23
sensitivity ranking flags the software restart parameters, matching the
paper's conclusion that recovery tuning beats hardware upgrades.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Mapping

from ..core.hierarchy import HierarchicalModel, Submodel, export_availability
from ..exceptions import ModelDefinitionError
from ..markov.ctmc import CTMC, MarkovDependabilityModel
from ..nonstate.components import Component
from ..nonstate.rbd import KofN, ReliabilityBlockDiagram, series

__all__ = [
    "SIPParameters",
    "build_software_node",
    "build_hardware_node",
    "build_proxy_pair",
    "build_sip_service",
    "availability_report",
    "resolve_parameters",
    "evaluate_availability",
]

#: integer-valued fields of :class:`SIPParameters` (counts, not rates)
_INT_FIELDS = ("n_nodes", "k_required")


@dataclass
class SIPParameters:
    """Rates (per hour) for the SIP/WebSphere hierarchy."""

    n_nodes: int = 4
    k_required: int = 2
    # software stack (per node)
    software_failure_rate: float = 1.0 / 700.0
    restart_coverage: float = 0.9          # process restart succeeds
    process_restart_rate: float = 30.0     # 2 min
    node_reboot_rate: float = 4.0          # 15 min escalation
    # node hardware
    hardware_failure_rate: float = 1.0 / 120_000.0
    hardware_repair_rate: float = 0.25     # 4 h
    # proxy pair
    proxy_failure_rate: float = 1.0 / 5_000.0
    proxy_failover_rate: float = 360.0     # 10 s
    proxy_coverage: float = 0.99
    proxy_repair_rate: float = 0.5


def build_software_node(params: SIPParameters) -> MarkovDependabilityModel:
    """Software stack CTMC with two-level recovery escalation.

    ``up`` → failure → ``restarting``; the process restart succeeds with
    probability ``restart_coverage`` (back to ``up``), otherwise
    escalates to a full node ``rebooting``.
    """
    chain = CTMC()
    chain.add_transition("up", "restarting", params.software_failure_rate)
    chain.add_transition(
        "restarting", "up", params.process_restart_rate * params.restart_coverage
    )
    chain.add_transition(
        "restarting",
        "rebooting",
        params.process_restart_rate * (1.0 - params.restart_coverage),
    )
    chain.add_transition("rebooting", "up", params.node_reboot_rate)
    return MarkovDependabilityModel(chain, up_states=["up"], initial="up")


def build_hardware_node(params: SIPParameters) -> MarkovDependabilityModel:
    """Node hardware two-state CTMC."""
    chain = CTMC()
    chain.add_transition("up", "down", params.hardware_failure_rate)
    chain.add_transition("down", "up", params.hardware_repair_rate)
    return MarkovDependabilityModel(chain, up_states=["up"], initial="up")


def build_proxy_pair(params: SIPParameters) -> MarkovDependabilityModel:
    """Redundant SIP proxy pair with imperfect failover."""
    lam = params.proxy_failure_rate
    chain = CTMC()
    chain.add_transition("2", "failover", lam * params.proxy_coverage)
    chain.add_transition("2", "manual", lam * (1.0 - params.proxy_coverage))
    chain.add_transition("2", "1", lam)  # standby proxy failure
    chain.add_transition("failover", "1", params.proxy_failover_rate)
    chain.add_transition("manual", "1", 2.0)  # 30 min manual switch
    chain.add_transition("1", "2", params.proxy_repair_rate)
    chain.add_transition("1", "0", lam)
    chain.add_transition("0", "1", params.proxy_repair_rate)
    return MarkovDependabilityModel(chain, up_states=["2", "1"], initial="2")


def build_sip_service(params: SIPParameters = SIPParameters()) -> HierarchicalModel:
    """The full SIP service hierarchy."""
    hierarchy = HierarchicalModel()
    hierarchy.add_submodel(
        Submodel(
            "software",
            lambda _p: build_software_node(params),
            exports={"availability": export_availability},
        )
    )
    hierarchy.add_submodel(
        Submodel(
            "hardware",
            lambda _p: build_hardware_node(params),
            exports={"availability": export_availability},
        )
    )
    hierarchy.add_submodel(
        Submodel(
            "proxies",
            lambda _p: build_proxy_pair(params),
            exports={"availability": export_availability},
        )
    )

    def build_node(imports) -> ReliabilityBlockDiagram:
        return ReliabilityBlockDiagram(
            series(
                Component.fixed("hw", 1.0 - imports["hw_avail"]),
                Component.fixed("sw", 1.0 - imports["sw_avail"]),
            )
        )

    hierarchy.add_submodel(
        Submodel(
            "node",
            build_node,
            imports={
                "hw_avail": ("hardware", "availability"),
                "sw_avail": ("software", "availability"),
            },
            exports={"availability": export_availability},
        )
    )

    def build_service(imports) -> ReliabilityBlockDiagram:
        node_unavail = 1.0 - imports["node_avail"]
        nodes = [
            Component.fixed(f"node{i}", node_unavail) for i in range(params.n_nodes)
        ]
        return ReliabilityBlockDiagram(
            series(
                Component.fixed("proxies", 1.0 - imports["proxy_avail"]),
                KofN(params.k_required, nodes),
            )
        )

    hierarchy.add_submodel(
        Submodel(
            "service",
            build_service,
            imports={
                "node_avail": ("node", "availability"),
                "proxy_avail": ("proxies", "availability"),
            },
            exports={"availability": export_availability},
        )
    )
    return hierarchy


def availability_report(params: SIPParameters = SIPParameters()) -> Dict[str, float]:
    """E21 summary: availability of every level of the hierarchy."""
    solution = build_sip_service(params).solve()
    return {
        "software": solution.value("software", "availability"),
        "hardware": solution.value("hardware", "availability"),
        "node": solution.value("node", "availability"),
        "proxies": solution.value("proxies", "availability"),
        "service": solution.value("service", "availability"),
    }


def resolve_parameters(assignment: Mapping[str, float]) -> SIPParameters:
    """Validate a (partial) assignment and merge it over the defaults.

    Values must be finite and non-negative; the count fields
    (``n_nodes``, ``k_required``) must additionally be whole numbers.
    Unknown names raise a
    :class:`~repro.exceptions.ModelDefinitionError` listing the valid
    field names — the same contract as the BladeCenter evaluator.
    """
    merged = {}
    for name, value in assignment.items():
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ModelDefinitionError(
                f"SIP parameter {name!r} must be finite and non-negative, got {value}"
            )
        if name in _INT_FIELDS:
            if value != int(value):
                raise ModelDefinitionError(
                    f"SIP parameter {name!r} must be a whole number, got {value}"
                )
            merged[name] = int(value)
        else:
            merged[name] = value
    try:
        return replace(SIPParameters(), **merged)
    except TypeError:
        known = {f for f in SIPParameters.__dataclass_fields__}
        unknown = sorted(set(assignment) - known)
        raise ModelDefinitionError(
            f"unknown SIP parameter(s) {unknown}; valid names: {sorted(known)}"
        ) from None


def evaluate_availability(assignment: Mapping[str, float]) -> float:
    """Top-level SIP service availability for a sweep point.

    Keys are :class:`SIPParameters` field names; unassigned fields keep
    the published defaults.  Builds and solves the full hierarchy per
    call — module-level and picklable, the engine / serving-registry
    evaluator for the E21 case study.
    """
    params = resolve_parameters(assignment)
    solution = build_sip_service(params).solve()
    return float(solution.value("service", "availability"))
