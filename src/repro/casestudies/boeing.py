"""Boeing 787-scale fault-tree bounding (tutorial case study, E05).

The tutorial recounts that a major Boeing 787 subsystem model (the
current return network) was too large for exact fault-tree solution, and
was certified using **bounding algorithms** instead.  The actual tree is
proprietary, so this module provides a *scalable synthetic generator*
with the same structural features — thousands of basic events, heavy
event repetition across gates, mixed AND/OR/k-of-n logic — on which the
bounds exhibit exactly the behaviour the tutorial claims:

* truncated bounds converge monotonically to the exact value as the
  truncation depth/order grows;
* low-order truncation is orders of magnitude cheaper than exact
  quantification while already tight for high-reliability parameters.

The generator is deterministic given a seed, so benchmarks are
reproducible.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Tuple

import numpy as np

from ..exceptions import ModelDefinitionError
from ..nonstate.bounds import FaultTreeBounds
from ..nonstate.faulttree import AndGate, BasicEvent, FaultTree, KofNGate, OrGate

__all__ = [
    "generate_boeing_style_tree",
    "bounds_convergence_table",
    "resolve_parameters",
    "evaluate_availability",
]

#: Genuine lint findings (``python -m repro.analyze boeing``): the shared
#: ground-strap events repeat across sections *by design* — defeating
#: naive quantification is the point of the case study.
__diagnostics_acknowledged__ = {
    "S004": "shared events repeat across sections by design; BDD evaluation is the subject"
}


def generate_boeing_style_tree(
    n_sections: int = 8,
    events_per_section: int = 6,
    shared_events: int = 4,
    event_probability: float = 1.0e-3,
    shared_probability: float = 5.0e-4,
    seed: int = 2016,
) -> FaultTree:
    """A synthetic current-return-network-style fault tree.

    Structure: the network is divided into ``n_sections`` physical
    sections; each section fails when 2 of its 3 redundant paths fail,
    where every path is an AND of section-local events *plus* events
    drawn from a small pool of ``shared_events`` (ground straps / common
    returns) that repeat across sections — the repetition that defeats
    naive quantification.  The top event is an OR over sections.

    Parameters mirror the knobs the E05 benchmark sweeps.
    """
    rng = np.random.default_rng(seed)
    shared = [
        BasicEvent.fixed(f"shared{k}", shared_probability) for k in range(shared_events)
    ]
    sections = []
    for s in range(n_sections):
        local = [
            BasicEvent.fixed(f"s{s}_e{i}", event_probability)
            for i in range(events_per_section)
        ]
        paths = []
        for p in range(3):
            pick_local = rng.choice(len(local), size=2, replace=False)
            pick_shared = rng.choice(len(shared), size=1, replace=False)
            members = [local[i] for i in pick_local] + [shared[i] for i in pick_shared]
            paths.append(AndGate(members))
        sections.append(KofNGate(2, paths))
    return FaultTree(OrGate(sections))


def bounds_convergence_table(
    tree: FaultTree,
    depths: Optional[List[int]] = None,
) -> List[Tuple[int, float, float, float]]:
    """E05 rows: (depth, lower, upper, exact) for Bonferroni truncation.

    The exact value is the BDD answer (feasible here because the
    synthetic tree is kept at a size where the oracle still runs —
    the benchmark then scales past it and reports bound width only).
    """
    analysis = FaultTreeBounds(tree)
    exact = analysis.exact()
    rows: List[Tuple[int, float, float, float]] = []
    for depth in depths or [1, 2, 3, 4]:
        lower, upper = analysis.bonferroni(depth)
        rows.append((depth, lower, upper, exact))
    return rows


#: Generator knobs the point-evaluator wrapper accepts (and their
#: defaults); these are the :func:`generate_boeing_style_tree` keyword
#: arguments — there is no dataclass because the "model" is a generator.
PARAMETER_DEFAULTS = {
    "n_sections": 8,
    "events_per_section": 6,
    "shared_events": 4,
    "event_probability": 1.0e-3,
    "shared_probability": 5.0e-4,
    "seed": 2016,
}

#: integer-valued generator knobs (counts / seed, not probabilities)
_INT_FIELDS = ("n_sections", "events_per_section", "shared_events", "seed")


def resolve_parameters(assignment: Mapping[str, float]) -> dict:
    """Validate a (partial) assignment and merge it over the defaults.

    Values must be finite and non-negative; the count fields (and the
    ``seed``) must additionally be whole numbers.  Unknown names raise a
    :class:`~repro.exceptions.ModelDefinitionError` listing the valid
    field names — the same contract as the BladeCenter evaluator.

    Returns the full keyword dict for :func:`generate_boeing_style_tree`.
    """
    merged = dict(PARAMETER_DEFAULTS)
    for name, value in assignment.items():
        if name not in PARAMETER_DEFAULTS:
            raise ModelDefinitionError(
                f"unknown Boeing parameter(s) {[name]};"
                f" valid names: {sorted(PARAMETER_DEFAULTS)}"
            )
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ModelDefinitionError(
                f"Boeing parameter {name!r} must be finite and non-negative, got {value}"
            )
        if name in _INT_FIELDS:
            if value != int(value):
                raise ModelDefinitionError(
                    f"Boeing parameter {name!r} must be a whole number, got {value}"
                )
            merged[name] = int(value)
        else:
            merged[name] = value
    return merged


def evaluate_availability(assignment: Mapping[str, float]) -> float:
    """Probability the top event does *not* occur, for a sweep point.

    Keys are the :func:`generate_boeing_style_tree` knobs; unassigned
    knobs keep the published defaults.  The generator is deterministic
    given the ``seed``, so this is a pure function of the assignment —
    module-level and picklable, the engine / serving-registry evaluator
    for the E05 case study.
    """
    tree = generate_boeing_style_tree(**resolve_parameters(assignment))
    return float(1.0 - tree.top_event_probability())
