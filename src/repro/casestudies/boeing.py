"""Boeing 787-scale fault-tree bounding (tutorial case study, E05).

The tutorial recounts that a major Boeing 787 subsystem model (the
current return network) was too large for exact fault-tree solution, and
was certified using **bounding algorithms** instead.  The actual tree is
proprietary, so this module provides a *scalable synthetic generator*
with the same structural features — thousands of basic events, heavy
event repetition across gates, mixed AND/OR/k-of-n logic — on which the
bounds exhibit exactly the behaviour the tutorial claims:

* truncated bounds converge monotonically to the exact value as the
  truncation depth/order grows;
* low-order truncation is orders of magnitude cheaper than exact
  quantification while already tight for high-reliability parameters.

The generator is deterministic given a seed, so benchmarks are
reproducible.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..nonstate.bounds import FaultTreeBounds
from ..nonstate.faulttree import AndGate, BasicEvent, FaultTree, KofNGate, OrGate

__all__ = ["generate_boeing_style_tree", "bounds_convergence_table"]

#: Genuine lint findings (``python -m repro.analyze boeing``): the shared
#: ground-strap events repeat across sections *by design* — defeating
#: naive quantification is the point of the case study.
__diagnostics_acknowledged__ = {
    "S004": "shared events repeat across sections by design; BDD evaluation is the subject"
}


def generate_boeing_style_tree(
    n_sections: int = 8,
    events_per_section: int = 6,
    shared_events: int = 4,
    event_probability: float = 1.0e-3,
    shared_probability: float = 5.0e-4,
    seed: int = 2016,
) -> FaultTree:
    """A synthetic current-return-network-style fault tree.

    Structure: the network is divided into ``n_sections`` physical
    sections; each section fails when 2 of its 3 redundant paths fail,
    where every path is an AND of section-local events *plus* events
    drawn from a small pool of ``shared_events`` (ground straps / common
    returns) that repeat across sections — the repetition that defeats
    naive quantification.  The top event is an OR over sections.

    Parameters mirror the knobs the E05 benchmark sweeps.
    """
    rng = np.random.default_rng(seed)
    shared = [
        BasicEvent.fixed(f"shared{k}", shared_probability) for k in range(shared_events)
    ]
    sections = []
    for s in range(n_sections):
        local = [
            BasicEvent.fixed(f"s{s}_e{i}", event_probability)
            for i in range(events_per_section)
        ]
        paths = []
        for p in range(3):
            pick_local = rng.choice(len(local), size=2, replace=False)
            pick_shared = rng.choice(len(shared), size=1, replace=False)
            members = [local[i] for i in pick_local] + [shared[i] for i in pick_shared]
            paths.append(AndGate(members))
        sections.append(KofNGate(2, paths))
    return FaultTree(OrGate(sections))


def bounds_convergence_table(
    tree: FaultTree,
    depths: Optional[List[int]] = None,
) -> List[Tuple[int, float, float, float]]:
    """E05 rows: (depth, lower, upper, exact) for Bonferroni truncation.

    The exact value is the BDD answer (feasible here because the
    synthetic tree is kept at a size where the oracle still runs —
    the benchmark then scales past it and reports bound width only).
    """
    analysis = FaultTreeBounds(tree)
    exact = analysis.exact()
    rows: List[Tuple[int, float, float, float]] = []
    for depth in depths or [1, 2, 3, 4]:
        lower, upper = analysis.bonferroni(depth)
        rows.append((depth, lower, upper, exact))
    return rows
