"""Software rejuvenation with a deterministic timer (tutorial, E12).

Trivedi's classic software-aging model (Huang, Kintala, Kolettis &
Fulton 1995; Garg & Trivedi's MRGP formulation): software starts
*robust*, drifts into a *failure-probable* (degraded) state by aging,
and eventually crashes, needing a long repair.  **Rejuvenation** — a
controlled restart on a deterministic timer — preempts crashes at the
cost of short planned outages.

Because the timer is deterministic while aging/failure/repair are
exponential, the model is a Markov regenerative process: the timer clock
runs across the robust → failure-probable transition.  The tutorial's
headline result, reproduced by benchmark E12: expected downtime (or
cost) is minimized at a finite rejuvenation interval whenever repair is
sufficiently more expensive than rejuvenation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Tuple

from ..distributions import Deterministic
from ..exceptions import ModelDefinitionError
from ..markov.mrgp import MarkovRegenerativeProcess

__all__ = [
    "RejuvenationParameters",
    "build_rejuvenation_mrgp",
    "downtime_fraction",
    "interval_sweep",
    "optimal_interval",
    "resolve_parameters",
    "evaluate_availability",
]

#: Default rejuvenation timer (hours) for the point-evaluator wrapper —
#: one aging time constant, a sensible operating point on the E12 curve.
DEFAULT_INTERVAL = 240.0


@dataclass
class RejuvenationParameters:
    """Rates (per hour) of the aging model."""

    #: robust -> failure-probable drift rate (aging; ~10 days)
    aging_rate: float = 1.0 / 240.0
    #: failure-probable -> crashed rate (~4 days once degraded)
    failure_rate: float = 1.0 / 96.0
    #: crash repair rate (2 h reboot + recovery)
    repair_rate: float = 0.5
    #: rejuvenation completion rate (10 min controlled restart)
    rejuvenation_rate: float = 6.0


def build_rejuvenation_mrgp(
    interval: float, params: RejuvenationParameters = RejuvenationParameters()
) -> MarkovRegenerativeProcess:
    """The 4-state MRGP for a rejuvenation timer of ``interval`` hours.

    States: ``robust``, ``degraded`` (both up), ``failed`` (unplanned
    down), ``rejuvenating`` (planned down).  The deterministic timer is
    armed while the software is up (robust or degraded) and fires into
    rejuvenation; crash and repair interrupt it.
    """
    if interval <= 0:
        raise ValueError(f"rejuvenation interval must be positive, got {interval}")
    mrgp = MarkovRegenerativeProcess()
    mrgp.add_exponential("robust", "degraded", params.aging_rate)
    mrgp.add_exponential("degraded", "failed", params.failure_rate)
    mrgp.add_exponential("failed", "robust", params.repair_rate)
    mrgp.add_exponential("rejuvenating", "robust", params.rejuvenation_rate)
    mrgp.add_general(
        "rejuvenation_timer",
        Deterministic(interval),
        enabled_states=["robust", "degraded"],
        targets={"robust": "rejuvenating", "degraded": "rejuvenating"},
    )
    return mrgp


def downtime_fraction(
    interval: Optional[float], params: RejuvenationParameters = RejuvenationParameters()
) -> Dict[str, float]:
    """Steady-state probabilities and the downtime split for one interval.

    ``interval=None`` disables rejuvenation (pure CTMC baseline).
    Returns keys ``unplanned`` (failed), ``planned`` (rejuvenating),
    ``total`` and ``availability``.
    """
    if interval is None:
        # Baseline without rejuvenation: plain 3-state CTMC.
        from ..markov.ctmc import CTMC

        chain = CTMC()
        chain.add_transition("robust", "degraded", params.aging_rate)
        chain.add_transition("degraded", "failed", params.failure_rate)
        chain.add_transition("failed", "robust", params.repair_rate)
        pi = chain.steady_state()
        unplanned = pi["failed"]
        planned = 0.0
    else:
        mrgp = build_rejuvenation_mrgp(interval, params)
        pi = mrgp.steady_state()
        unplanned = pi["failed"]
        planned = pi["rejuvenating"]
    total = unplanned + planned
    return {
        "unplanned": unplanned,
        "planned": planned,
        "total": total,
        "availability": 1.0 - total,
    }


def interval_sweep(
    intervals,
    params: RejuvenationParameters = RejuvenationParameters(),
    repair_cost: float = 1.0,
    rejuvenation_cost: float = 0.2,
) -> List[Tuple[float, float, float, float]]:
    """E12 series: (interval, unplanned, planned, weighted cost rate).

    ``cost = repair_cost * P[failed] + rejuvenation_cost * P[rejuvenating]``
    — rejuvenation downtime is cheaper because it is scheduled.
    """
    rows: List[Tuple[float, float, float, float]] = []
    for interval in intervals:
        split = downtime_fraction(float(interval), params)
        cost = repair_cost * split["unplanned"] + rejuvenation_cost * split["planned"]
        rows.append((float(interval), split["unplanned"], split["planned"], cost))
    return rows


def optimal_interval(
    intervals,
    params: RejuvenationParameters = RejuvenationParameters(),
    repair_cost: float = 1.0,
    rejuvenation_cost: float = 0.2,
) -> Tuple[float, float]:
    """Grid-search the cost-minimizing rejuvenation interval.

    Returns ``(best_interval, best_cost)`` over the candidate grid.
    """
    rows = interval_sweep(intervals, params, repair_cost, rejuvenation_cost)
    best = min(rows, key=lambda row: row[3])
    return best[0], best[3]


def resolve_parameters(
    assignment: Mapping[str, float],
) -> Tuple[float, RejuvenationParameters]:
    """Validate a (partial) assignment and merge it over the defaults.

    Besides the :class:`RejuvenationParameters` fields, the assignment
    may carry an ``interval`` key (the deterministic rejuvenation timer,
    hours; default :data:`DEFAULT_INTERVAL`, must be positive).  Values
    must be finite and non-negative.  Unknown names raise a
    :class:`~repro.exceptions.ModelDefinitionError` listing the valid
    field names — the same contract as the BladeCenter evaluator.

    Returns ``(interval, params)``.
    """
    merged = {}
    interval = DEFAULT_INTERVAL
    for name, value in assignment.items():
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ModelDefinitionError(
                f"rejuvenation parameter {name!r} must be finite and non-negative,"
                f" got {value}"
            )
        if name == "interval":
            if value <= 0.0:
                raise ModelDefinitionError(
                    f"rejuvenation 'interval' must be positive, got {value}"
                )
            interval = value
        else:
            merged[name] = value
    try:
        return interval, replace(RejuvenationParameters(), **merged)
    except TypeError:
        known = {f for f in RejuvenationParameters.__dataclass_fields__} | {"interval"}
        unknown = sorted(set(assignment) - known)
        raise ModelDefinitionError(
            f"unknown rejuvenation parameter(s) {unknown}; valid names: {sorted(known)}"
        ) from None


def evaluate_availability(assignment: Mapping[str, float]) -> float:
    """Steady-state availability under the rejuvenation timer.

    Keys are :class:`RejuvenationParameters` field names plus
    ``interval`` (timer length, hours); unassigned fields keep the
    published defaults.  Module-level and picklable — the engine /
    serving-registry evaluator for the E12 case study.
    """
    interval, params = resolve_parameters(assignment)
    return float(downtime_fraction(interval, params)["availability"])
