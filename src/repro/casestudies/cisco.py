"""Cisco GSR 12000 core-router availability (tutorial case study, E18).

The tutorial's Cisco example compares redundancy options for a carrier
router: a simplex route processor versus a redundant pair with imperfect
failover coverage, plus line cards and switch fabric.  The model of
record is a CTMC per subsystem composed in series — exactly the
"hierarchical CTMC + RBD" pattern.

Parameters below follow the tutorial's published style (MTTFs of 10^4–10^5
hours, repairs of hours, coverage ≈ 0.99); the proprietary exact values
are not public, so DESIGN.md records this substitution.  The *claims*
reproduced are structural: the redundant option gains one to two orders
of magnitude of availability, and coverage dominates the residual
downtime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Mapping, Tuple

from ..core.model import DependabilityModel
from ..exceptions import ModelDefinitionError
from ..markov.ctmc import CTMC, MarkovDependabilityModel
from ..nonstate.components import Component
from ..nonstate.rbd import ReliabilityBlockDiagram, series

__all__ = [
    "CiscoParameters",
    "build_simplex_processor",
    "build_redundant_processor",
    "build_router",
    "downtime_table",
    "resolve_parameters",
    "evaluate_availability",
]

#: Genuine lint findings (``python -m repro.analyze cisco``): the processor
#: CTMC races per-hour failure rates (~1e-5, coverage-split down to 1e-7)
#: against failover/repair rates (~120/h) — the stiffness is the published
#: model, and the GTH solver handles it exactly.
__diagnostics_acknowledged__ = {
    "M103": "stiffness is inherent to the published rates; GTH elimination is exact"
}


@dataclass
class CiscoParameters:
    """Rates for the GSR availability model (per hour)."""

    #: route-processor failure rate (MTTF ≈ 11.4 years)
    processor_failure_rate: float = 1.0e-5
    #: hardware replacement rate (MTTR = 2 h, on-site spares)
    processor_repair_rate: float = 0.5
    #: failover coverage probability for the redundant pair
    coverage: float = 0.99
    #: automatic failover completion rate (≈ 30 s)
    failover_rate: float = 120.0
    #: manual recovery rate after an uncovered failure (30 min)
    uncovered_recovery_rate: float = 2.0
    #: per-line-card failure rate and repair rate
    linecard_failure_rate: float = 2.0e-5
    linecard_repair_rate: float = 0.5
    #: switch-fabric failure and repair rates
    fabric_failure_rate: float = 5.0e-6
    fabric_repair_rate: float = 0.5


def build_simplex_processor(params: CiscoParameters) -> MarkovDependabilityModel:
    """Two-state CTMC of a non-redundant route processor."""
    chain = CTMC()
    chain.add_transition("up", "down", params.processor_failure_rate)
    chain.add_transition("down", "up", params.processor_repair_rate)
    return MarkovDependabilityModel(chain, up_states=["up"], initial="up")


def build_redundant_processor(params: CiscoParameters) -> MarkovDependabilityModel:
    """CTMC of the redundant route-processor pair with imperfect coverage.

    States: ``2`` both healthy (active + standby); on an active failure,
    with probability ``coverage`` a fast failover (``failover``) brings
    the standby up, otherwise the router hangs until manual recovery
    (``uncovered``).  ``1`` one processor in service while the other is
    repaired; ``0`` both down.
    """
    lam = params.processor_failure_rate
    mu = params.processor_repair_rate
    chain = CTMC()
    # Active fails: covered -> brief failover outage; uncovered -> manual.
    chain.add_transition("2", "failover", lam * params.coverage)
    chain.add_transition("2", "uncovered", lam * (1.0 - params.coverage))
    # Standby fails (detected, no outage): straight to one-processor state.
    chain.add_transition("2", "1", lam)
    chain.add_transition("failover", "1", params.failover_rate)
    chain.add_transition("uncovered", "1", params.uncovered_recovery_rate)
    chain.add_transition("1", "0", lam)
    chain.add_transition("1", "2", mu)
    chain.add_transition("0", "1", mu)
    return MarkovDependabilityModel(
        chain, up_states=["2", "1"], initial="2"
    )


def build_router(
    params: CiscoParameters, redundant: bool = True, n_linecards: int = 4
) -> ReliabilityBlockDiagram:
    """Full router: processor option in series with fabric and line cards.

    Line cards and fabric are modeled as independently repaired
    exponential components; the processor subsystem's availability is
    imported from its CTMC (hierarchical composition, flattened here for
    convenience).
    """
    processor_model: DependabilityModel = (
        build_redundant_processor(params) if redundant else build_simplex_processor(params)
    )
    processor = Component.fixed(
        "processor", processor_model.steady_state_unavailability()
    )
    blocks = [processor]
    blocks.append(
        Component.from_rates(
            "fabric", params.fabric_failure_rate, params.fabric_repair_rate
        )
    )
    for k in range(n_linecards):
        blocks.append(
            Component.from_rates(
                f"linecard{k}", params.linecard_failure_rate, params.linecard_repair_rate
            )
        )
    return ReliabilityBlockDiagram(series(*blocks))


def resolve_parameters(assignment: Mapping[str, float]) -> CiscoParameters:
    """Validate a (partial) assignment and merge it over the defaults.

    Values must be finite and non-negative; unknown names raise a
    :class:`~repro.exceptions.ModelDefinitionError` listing the valid
    field names — the same contract as the BladeCenter evaluator.
    """
    for name, value in assignment.items():
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ModelDefinitionError(
                f"Cisco parameter {name!r} must be finite and non-negative, got {value}"
            )
    try:
        return replace(CiscoParameters(), **dict(assignment))
    except TypeError:
        known = {f for f in CiscoParameters.__dataclass_fields__}
        unknown = sorted(set(assignment) - known)
        raise ModelDefinitionError(
            f"unknown Cisco parameter(s) {unknown}; valid names: {sorted(known)}"
        ) from None


def evaluate_availability(assignment: Mapping[str, float]) -> float:
    """Steady-state availability of the redundant router for a sweep point.

    Keys are :class:`CiscoParameters` field names; unassigned fields
    keep the published defaults.  Module-level and picklable — the
    engine evaluator for coverage/repair sweeps.  The engine substitutes
    the bit-identical compiled form
    (:class:`repro.compile.CompiledCiscoRouter`) automatically.
    """
    params = resolve_parameters(assignment)
    return float(build_router(params, redundant=True).steady_state_availability())


evaluate_availability.__compiles_to__ = "repro.compile.model:CompiledCiscoRouter"


def downtime_table(params: CiscoParameters = CiscoParameters()) -> List[Tuple[str, float, float]]:
    """The E18 result table: (configuration, availability, downtime min/year).

    Rows: processor-only simplex and redundant, then the full router with
    each option.
    """
    rows: List[Tuple[str, float, float]] = []
    simplex = build_simplex_processor(params)
    redundant = build_redundant_processor(params)
    rows.append(
        ("simplex processor", simplex.steady_state_availability(), simplex.downtime_minutes_per_year())
    )
    rows.append(
        (
            "redundant processor (c=%.2f)" % params.coverage,
            redundant.steady_state_availability(),
            redundant.downtime_minutes_per_year(),
        )
    )
    router_simplex = build_router(params, redundant=False)
    router_redundant = build_router(params, redundant=True)
    rows.append(
        (
            "router w/ simplex",
            router_simplex.steady_state_availability(),
            router_simplex.downtime_minutes_per_year(),
        )
    )
    rows.append(
        (
            "router w/ redundant",
            router_redundant.steady_state_availability(),
            router_redundant.downtime_minutes_per_year(),
        )
    )
    return rows
