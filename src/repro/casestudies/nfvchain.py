"""NFV service chain — the scalable large-state-space zoo (E37).

A network service is a chain of ``n_vnfs`` virtual network functions
(firewall → NAT → load balancer → ...); each VNF stage runs
``replicas`` replicas and is operational while at least
``min_replicas`` of them are up.  Replicas fail independently
(rate ``failure_rate`` each) and every stage has its own pool of
``repair_crews`` crews (rate ``repair_rate`` per crew) — so the stage
marking process is a finite birth–death chain and the chain-of-stages
product space has ``(replicas + 1) ** n_vnfs`` tangible markings.

That product growth is the point: the spec dials smoothly from 64
states (defaults) to 10^5–10^6+, which makes this the standard workout
for the lazy reachability + sparse solver path.  Three independent
routes to the same availability number keep the big runs honest:

* :func:`build_nfv_srn` — the SRN (Petri-net) model, ``lazy=True`` by
  default, solved through the standard front doors;
* :func:`build_nfv_generator` — a vectorized mixed-radix construction
  of the very same CSR generator, no Petri net and no BFS, for
  benchmarking the solvers in isolation;
* :func:`analytic_availability` — stages are independent, so the exact
  answer is the per-stage birth–death availability raised to the
  ``n_vnfs``-th power, at ``replicas + 1`` states of work.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse as _sp

from ..exceptions import ModelDefinitionError
from ..markov.ctmc import CTMC
from ..petrinet.net import PetriNet
from ..petrinet.srn import SRNDependabilityModel, StochasticRewardNet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..compile.sparse import CompiledSparseCTMC

__all__ = [
    "NFVChainSpec",
    "state_count",
    "build_nfv_net",
    "build_nfv_srn",
    "build_nfv_model",
    "build_nfv_generator",
    "compile_nfv_chain",
    "stage_availability",
    "analytic_availability",
    "resolve_parameters",
    "evaluate_availability",
]

#: integer-valued fields of :class:`NFVChainSpec` (counts, not rates)
_INT_FIELDS = ("n_vnfs", "replicas", "min_replicas", "repair_crews")


@dataclass(frozen=True)
class NFVChainSpec:
    """Parameters of the NFV service chain (rates per hour)."""

    n_vnfs: int = 3
    replicas: int = 3
    min_replicas: int = 1
    failure_rate: float = 1e-3
    repair_rate: float = 0.5
    repair_crews: int = 2

    def __post_init__(self):
        if self.n_vnfs < 1:
            raise ModelDefinitionError("n_vnfs must be >= 1")
        if self.replicas < 1:
            raise ModelDefinitionError("replicas must be >= 1")
        if not 1 <= self.min_replicas <= self.replicas:
            raise ModelDefinitionError(
                f"min_replicas must be in [1, replicas={self.replicas}], "
                f"got {self.min_replicas}"
            )
        if self.repair_crews < 1:
            raise ModelDefinitionError("repair_crews must be >= 1")
        if self.failure_rate <= 0.0 or self.repair_rate <= 0.0:
            raise ModelDefinitionError("failure_rate and repair_rate must be > 0")


def state_count(spec: NFVChainSpec) -> int:
    """Tangible markings: ``(replicas + 1) ** n_vnfs``."""
    return (spec.replicas + 1) ** spec.n_vnfs


def _up_place(i: int) -> str:
    return f"up{i}"


def _down_place(i: int) -> str:
    return f"down{i}"


def build_nfv_net(spec: NFVChainSpec = NFVChainSpec()) -> PetriNet:
    """The Petri-net description of the chain.

    Stage ``i`` contributes places ``up{i}`` / ``down{i}`` and two
    marking-dependent timed transitions: ``fail{i}`` at
    ``failure_rate × #up{i}`` (each up replica fails independently) and
    ``repair{i}`` at ``repair_rate × min(#down{i}, repair_crews)``
    (crews work one replica each).
    """
    net = PetriNet()
    lam, mu, crews = spec.failure_rate, spec.repair_rate, spec.repair_crews
    for i in range(spec.n_vnfs):
        up, down = _up_place(i), _down_place(i)
        net.add_place(up, initial=spec.replicas)
        net.add_place(down)
        net.add_timed_transition(
            f"fail{i}", rate=lambda m, up=up: lam * m[up]
        )
        net.add_input_arc(f"fail{i}", up)
        net.add_output_arc(f"fail{i}", down)
        net.add_timed_transition(
            f"repair{i}", rate=lambda m, down=down: mu * min(m[down], crews)
        )
        net.add_input_arc(f"repair{i}", down)
        net.add_output_arc(f"repair{i}", up)
    return net


def _up_condition(spec: NFVChainSpec):
    names = [_up_place(i) for i in range(spec.n_vnfs)]
    k = spec.min_replicas
    return lambda m: all(m[name] >= k for name in names)


def build_nfv_srn(
    spec: NFVChainSpec = NFVChainSpec(),
    lazy: bool = True,
    **lazy_options,
) -> StochasticRewardNet:
    """The SRN over :func:`build_nfv_net`.

    ``lazy=True`` (the default — this is the large-state-space zoo)
    attaches the service up-condition during generation so the
    resulting :class:`~repro.sparse.SparseCTMC` carries its up mask.
    """
    if lazy:
        lazy_options.setdefault("up", _up_condition(spec))
    return StochasticRewardNet(build_nfv_net(spec), lazy=lazy, **lazy_options)


def build_nfv_model(
    spec: NFVChainSpec = NFVChainSpec(),
    lazy: bool = True,
    **lazy_options,
) -> SRNDependabilityModel:
    """The dependability adapter (availability / reliability / MTTF)."""
    return SRNDependabilityModel(
        build_nfv_srn(spec, lazy=lazy, **lazy_options), _up_condition(spec)
    )


def build_nfv_generator(
    spec: NFVChainSpec = NFVChainSpec(),
) -> Tuple[_sp.csr_matrix, np.ndarray]:
    """Vectorized product-form construction of the CSR generator.

    States are mixed-radix numbers in base ``replicas + 1``: digit ``i``
    is the number of up replicas in stage ``i``.  Per stage, failures
    step the digit down at ``failure_rate × digit`` and repairs step it
    up at ``repair_rate × min(replicas − digit, repair_crews)`` — the
    whole (off-diagonal) rate pattern falls out of one digit matrix and
    a handful of array ops, with no Petri net, no BFS and no dense
    intermediate.  Returns ``(Q, up_mask)``.

    The state *indexing* differs from the BFS order of
    :func:`build_nfv_srn`; cross-validation therefore compares
    measures (availability), not matrix entries.
    """
    n = state_count(spec)
    radix = spec.replicas + 1
    lam, mu, crews = spec.failure_rate, spec.repair_rate, spec.repair_crews
    idx = np.arange(n, dtype=np.int64)
    rows_parts, cols_parts, vals_parts = [], [], []
    for i in range(spec.n_vnfs):
        stride = radix**i
        digit = (idx // stride) % radix
        can_fail = digit > 0
        rows_parts.append(idx[can_fail])
        cols_parts.append(idx[can_fail] - stride)
        vals_parts.append(lam * digit[can_fail].astype(float))
        can_repair = digit < spec.replicas
        rows_parts.append(idx[can_repair])
        cols_parts.append(idx[can_repair] + stride)
        vals_parts.append(
            mu * np.minimum(spec.replicas - digit[can_repair], crews).astype(float)
        )
    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)
    vals = np.concatenate(vals_parts)
    diag = np.zeros(n)
    np.subtract.at(diag, rows, vals)
    q = _sp.coo_matrix(
        (
            np.concatenate([vals, diag]),
            (np.concatenate([rows, idx]), np.concatenate([cols, idx])),
        ),
        shape=(n, n),
    ).tocsr()
    up_mask = np.ones(n, dtype=bool)
    for i in range(spec.n_vnfs):
        up_mask &= ((idx // radix**i) % radix) >= spec.min_replicas
    return q, up_mask


def _rate_values(spec: NFVChainSpec) -> Mapping[str, float]:
    return {"failure_rate": spec.failure_rate, "repair_rate": spec.repair_rate}


def _nfv_rate_terms(spec: NFVChainSpec):
    """The symbolic twin of :func:`build_nfv_net`'s rate closures.

    ``fail{i}`` fires at ``#up{i} × failure_rate`` and ``repair{i}`` at
    ``min(#down{i}, crews) × repair_rate`` — ``Scaled`` multiplies
    ``factor × value``, which is bit-identical to the net's
    ``rate × count`` closures (IEEE multiplication commutes), so a
    compiled refill at the build rates reproduces the lazy generator's
    ``data`` bytes exactly.
    """
    from ..compile.ctmc import Scaled

    crews = spec.repair_crews

    def terms(transition, marking):
        name = transition.name
        if name.startswith("fail"):
            return Scaled(float(marking[_up_place(int(name[4:]))]), "failure_rate")
        count = min(marking[_down_place(int(name[6:]))], crews)
        return Scaled(float(count), "repair_rate")

    return terms


#: Count-signature → compiled structure.  The CSR pattern, term table
#: and up mask depend only on the integer fields (crews are baked into
#: the repair term factors, ``min_replicas`` into the up mask), so every
#: rate-only sweep point reuses one frozen structure instead of
#: re-running BFS reachability.  Bounded: real sweeps vary rates over a
#: handful of topologies, and one 10^6-state structure is ~100 MB.
_STRUCTURE_CACHE: "OrderedDict[Tuple[int, int, int, int], CompiledSparseCTMC]" = OrderedDict()
_STRUCTURE_CACHE_LIMIT = 8
_STRUCTURE_LOCK = threading.Lock()


def compile_nfv_chain(spec: NFVChainSpec = NFVChainSpec()) -> "CompiledSparseCTMC":
    """The compiled (build-once, fill-many) form of the NFV chain.

    Runs lazy BFS reachability **once** per count signature
    ``(n_vnfs, replicas, min_replicas, repair_crews)``, recording each
    transition's symbolic rate term, and memoizes the resulting
    :class:`~repro.compile.sparse.CompiledSparseCTMC` in a bounded LRU
    cache — rate-only sweep points refill the frozen CSR in O(nnz).
    The returned object is shared: treat it as read-only and pass
    parameter values per call.
    """
    key = (spec.n_vnfs, spec.replicas, spec.min_replicas, spec.repair_crews)
    with _STRUCTURE_LOCK:
        compiled = _STRUCTURE_CACHE.get(key)
        if compiled is not None:
            _STRUCTURE_CACHE.move_to_end(key)
            return compiled
    from ..sparse.reachability import build_sparse_reachability

    result = build_sparse_reachability(
        build_nfv_net(spec),
        up=_up_condition(spec),
        rate_terms=_nfv_rate_terms(spec),
        rate_values=_rate_values(spec),
    )
    compiled = result.compiled
    with _STRUCTURE_LOCK:
        _STRUCTURE_CACHE[key] = compiled
        while len(_STRUCTURE_CACHE) > _STRUCTURE_CACHE_LIMIT:
            _STRUCTURE_CACHE.popitem(last=False)
    return compiled


def stage_availability(spec: NFVChainSpec) -> float:
    """Exact single-stage availability from the birth–death chain.

    ``replicas + 1`` states (number of up replicas), solved with the
    standard dense path — the per-stage oracle.
    """
    chain = CTMC()
    for k in range(spec.replicas, 0, -1):
        chain.add_transition(k, k - 1, k * spec.failure_rate)
    for k in range(spec.replicas):
        chain.add_transition(
            k, k + 1, spec.repair_rate * min(spec.replicas - k, spec.repair_crews)
        )
    pi = chain.steady_state()
    return sum(prob for k, prob in pi.items() if k >= spec.min_replicas)


def analytic_availability(spec: NFVChainSpec = NFVChainSpec()) -> float:
    """Exact chain availability: stages are independent, so
    ``A_stage ** n_vnfs`` — the oracle every big run is checked against.
    """
    return stage_availability(spec) ** spec.n_vnfs


def resolve_parameters(assignment: Mapping[str, float]) -> NFVChainSpec:
    """Validate a (partial) assignment and merge it over the defaults.

    Values must be finite and non-negative; count fields must be whole
    numbers.  Unknown names raise a
    :class:`~repro.exceptions.ModelDefinitionError` listing the valid
    field names — the same contract as the WFS evaluator.
    """
    merged = {}
    for name, value in assignment.items():
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ModelDefinitionError(
                f"NFV parameter {name!r} must be finite and non-negative, got {value}"
            )
        if name in _INT_FIELDS:
            if value != int(value):
                raise ModelDefinitionError(
                    f"NFV parameter {name!r} must be a whole number, got {value}"
                )
            merged[name] = int(value)
        else:
            merged[name] = value
    known = set(NFVChainSpec.__dataclass_fields__)
    unknown = sorted(set(merged) - known)
    if unknown:
        raise ModelDefinitionError(
            f"unknown NFV parameter(s) {unknown}; valid names: {sorted(known)}"
        )
    return replace(NFVChainSpec(), **merged)


def evaluate_availability(
    assignment: Mapping[str, float], solver_limit: Optional[int] = 200_000
) -> float:
    """Steady-state service availability for a sweep point.

    Keys are :class:`NFVChainSpec` field names; unassigned fields keep
    the defaults.  Solves the full product chain through the compiled
    sparse path — :func:`compile_nfv_chain` memoizes the frozen CSR
    structure per count signature, so rate-only sweep points refill
    rates instead of re-running BFS reachability, and the standard
    ``steady_state`` front door picks the iterative backend
    automatically once the state count warrants it — except above
    ``solver_limit`` states, where it switches to
    :func:`analytic_availability` (pass ``solver_limit=None`` to force
    the numeric path at any size).  Module-level and picklable — the
    engine / serving-registry evaluator for this case study.
    """
    spec = resolve_parameters(assignment)
    if solver_limit is not None and state_count(spec) > solver_limit:
        return float(analytic_availability(spec))
    compiled = compile_nfv_chain(spec)
    return float(compiled.availability(dict(_rate_values(spec))))


#: The engine's ``compile=True`` substitution and the serve registry
#: resolve this to the ship-once compiled evaluator (lazy string spec —
#: importing the case study must not pull in the compile machinery).
evaluate_availability.__compiles_to__ = "repro.compile.sparse:CompiledNFVChain"
