"""Sun Microsystems carrier-grade platform availability (tutorial, E20).

The tutorial's Sun example is a high-availability telecom platform whose
Markov model exhibits the two dependencies that kill the independence
assumption: **imperfect failure coverage** (an undetected failure of the
standby is only discovered later) and **deferred repair** (the repair
crew is dispatched only when the system degrades past a threshold —
cheaper service contracts, more exposure).

The model compares three service policies on the same 2-unit platform:

* ``immediate`` — repair starts at once on any failure;
* ``deferred``  — a lone working unit triggers dispatch; a standby
  failure waits for the next scheduled visit;
* plus a coverage sweep showing availability collapsing as the
  automatic-failover coverage drops (the classic DPM blow-up).

Defects-per-million (DPM) is the telecom measure the tutorial quotes:
``DPM = (1 - A) * 10^6``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Mapping, Tuple

from ..exceptions import ModelDefinitionError
from ..markov.ctmc import CTMC, MarkovDependabilityModel

__all__ = [
    "SunParameters",
    "build_platform",
    "dpm",
    "policy_table",
    "coverage_sweep",
    "resolve_parameters",
    "evaluate_availability",
]

#: Genuine lint findings (``python -m repro.analyze sun``): the platform
#: CTMC races failure rates (coverage-split down to ~2.5e-8/h) against
#: failover at ~180/h — the stiffness is the published model, and the GTH
#: solver handles it exactly.
__diagnostics_acknowledged__ = {
    "M103": "stiffness is inherent to the published rates; GTH elimination is exact"
}


@dataclass
class SunParameters:
    """Rates (per hour) for the carrier-grade platform model."""

    #: per-unit hardware failure rate (MTTF ≈ 23 years)
    failure_rate: float = 5.0e-6
    #: automatic failover coverage
    coverage: float = 0.995
    #: failover completion rate (≈ 20 s)
    failover_rate: float = 180.0
    #: manual recovery rate after uncovered failure (1 h)
    uncovered_recovery_rate: float = 1.0
    #: on-site repair rate once dispatched (4 h)
    repair_rate: float = 0.25
    #: dispatch rate under deferred repair (next scheduled visit, ~72 h)
    deferred_dispatch_rate: float = 1.0 / 72.0


def build_platform(
    params: SunParameters, policy: str = "immediate"
) -> MarkovDependabilityModel:
    """2-unit active/standby platform CTMC under a repair policy.

    States:

    * ``2``          — both units healthy;
    * ``failover``   — covered active failure, standby taking over (down);
    * ``uncovered``  — uncovered failure, manual recovery (down);
    * ``1``          — simplex operation, repair in progress;
    * ``1w``         — simplex operation, repair *not yet dispatched*
      (deferred policy only);
    * ``0``          — both units failed (down).
    """
    if policy not in ("immediate", "deferred"):
        raise ValueError(f"unknown policy {policy!r}")
    lam = params.failure_rate
    chain = CTMC()
    chain.add_transition("2", "failover", lam * params.coverage)
    chain.add_transition("2", "uncovered", lam * (1.0 - params.coverage))
    chain.add_transition("failover", "1w" if policy == "deferred" else "1", params.failover_rate)
    chain.add_transition(
        "uncovered", "1w" if policy == "deferred" else "1", params.uncovered_recovery_rate
    )
    # Standby failure while both up: silent capacity loss.
    chain.add_transition("2", "1w" if policy == "deferred" else "1", lam)
    if policy == "deferred":
        chain.add_transition("1w", "1", params.deferred_dispatch_rate)
        chain.add_transition("1w", "0", lam)
    chain.add_transition("1", "2", params.repair_rate)
    chain.add_transition("1", "0", lam)
    chain.add_transition("0", "1", params.repair_rate)
    up = ["2", "1", "1w"] if policy == "deferred" else ["2", "1"]
    return MarkovDependabilityModel(chain, up_states=up, initial="2")


def resolve_parameters(assignment: Mapping[str, float]) -> SunParameters:
    """Validate a (partial) assignment and merge it over the defaults.

    Values must be finite and non-negative; unknown names raise a
    :class:`~repro.exceptions.ModelDefinitionError` listing the valid
    field names — the same contract as the BladeCenter evaluator.
    """
    for name, value in assignment.items():
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ModelDefinitionError(
                f"Sun parameter {name!r} must be finite and non-negative, got {value}"
            )
    try:
        return replace(SunParameters(), **dict(assignment))
    except TypeError:
        known = {f for f in SunParameters.__dataclass_fields__}
        unknown = sorted(set(assignment) - known)
        raise ModelDefinitionError(
            f"unknown Sun parameter(s) {unknown}; valid names: {sorted(known)}"
        ) from None


def evaluate_availability(assignment: Mapping[str, float]) -> float:
    """Steady-state availability under immediate repair for a sweep point.

    Keys are :class:`SunParameters` field names; unassigned fields keep
    the published defaults.  Module-level and picklable — the engine
    evaluator for coverage sweeps (the classic DPM blow-up).  The engine
    substitutes the bit-identical compiled form
    (:class:`repro.compile.CompiledSunPlatform`) automatically; only the
    immediate policy is compiled.
    """
    params = resolve_parameters(assignment)
    return float(build_platform(params, policy="immediate").steady_state_availability())


evaluate_availability.__compiles_to__ = "repro.compile.model:CompiledSunPlatform"


def dpm(model: MarkovDependabilityModel) -> float:
    """Defects per million: ``(1 - A) × 10^6``."""
    return model.steady_state_unavailability() * 1.0e6


def policy_table(params: SunParameters = SunParameters()) -> List[Tuple[str, float, float, float]]:
    """E20 rows: (policy, availability, downtime min/year, DPM)."""
    rows: List[Tuple[str, float, float, float]] = []
    for policy in ("immediate", "deferred"):
        model = build_platform(params, policy)
        rows.append(
            (
                policy,
                model.steady_state_availability(),
                model.downtime_minutes_per_year(),
                dpm(model),
            )
        )
    return rows


def coverage_sweep(
    coverages, params: SunParameters = SunParameters(), policy: str = "immediate"
) -> List[Tuple[float, float, float]]:
    """E20 series: (coverage, availability, DPM) over a coverage sweep."""
    rows: List[Tuple[float, float, float]] = []
    for c in coverages:
        swept = SunParameters(**{**params.__dict__, "coverage": float(c)})
        model = build_platform(swept, policy)
        rows.append((float(c), model.steady_state_availability(), dpm(model)))
    return rows
