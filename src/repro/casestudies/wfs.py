"""Workstations & file server (WFS) — the canonical hierarchy example (E15).

The textbook two-level example (Trivedi, *Probability & Statistics with
Reliability...*): a cluster of ``n`` workstations and one file server;
the service is up while at least ``k`` workstations *and* the file
server are up.  Workstations share one repair crew (a CTMC leaf), the
file server has its own repair (second leaf), and the top level is a
non-state-space combination — availability multiplies because the two
repair facilities are independent.

Because the whole system is small, the *monolithic* CTMC (the product
space) is still tractable, which makes WFS the perfect validation case:
benchmark E15 shows hierarchical == monolithic to solver precision, at a
fraction of the state count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Mapping

from ..exceptions import ModelDefinitionError
from ..markov.ctmc import CTMC, MarkovDependabilityModel

__all__ = [
    "WFSParameters",
    "build_workstation_pool",
    "build_file_server",
    "hierarchical_availability",
    "monolithic_availability",
    "monolithic_state_count",
    "resolve_parameters",
    "evaluate_availability",
]

#: integer-valued fields of :class:`WFSParameters` (counts, not rates)
_INT_FIELDS = ("n_workstations", "k_required")


@dataclass
class WFSParameters:
    """Rates (per hour) for the WFS example."""

    n_workstations: int = 4
    k_required: int = 2
    workstation_failure_rate: float = 1.0 / 2_000.0
    workstation_repair_rate: float = 1.0           # one crew, 1 h
    server_failure_rate: float = 1.0 / 5_000.0
    server_repair_rate: float = 0.5                # 2 h


def build_workstation_pool(params: WFSParameters) -> MarkovDependabilityModel:
    """Birth–death CTMC of ``n`` workstations with one shared repair crew.

    State = number of up workstations; up when >= ``k_required``.
    """
    chain = CTMC()
    n = params.n_workstations
    for up in range(n, 0, -1):
        chain.add_transition(up, up - 1, up * params.workstation_failure_rate)
    for up in range(0, n):
        chain.add_transition(up, up + 1, params.workstation_repair_rate)
    up_states = [u for u in range(params.k_required, n + 1)]
    return MarkovDependabilityModel(chain, up_states=up_states, initial=n)


def build_file_server(params: WFSParameters) -> MarkovDependabilityModel:
    """Two-state CTMC of the file server."""
    chain = CTMC()
    chain.add_transition("up", "down", params.server_failure_rate)
    chain.add_transition("down", "up", params.server_repair_rate)
    return MarkovDependabilityModel(chain, up_states=["up"], initial="up")


def hierarchical_availability(params: WFSParameters = WFSParameters()) -> float:
    """Top-level combination: ``A_pool × A_server``.

    Valid because the pool and the server have independent repair
    facilities — the hierarchy exploits exactly that independence.
    """
    pool = build_workstation_pool(params)
    server = build_file_server(params)
    return pool.steady_state_availability() * server.steady_state_availability()


def monolithic_availability(params: WFSParameters = WFSParameters()) -> float:
    """Exact product-space CTMC availability (the E15 oracle)."""
    chain = CTMC()
    n = params.n_workstations
    for up in range(n + 1):
        for server_up in (True, False):
            state = (up, server_up)
            if up > 0:
                chain.add_transition(state, (up - 1, server_up), up * params.workstation_failure_rate)
            if up < n:
                chain.add_transition(state, (up + 1, server_up), params.workstation_repair_rate)
            if server_up:
                chain.add_transition(state, (up, False), params.server_failure_rate)
            else:
                chain.add_transition(state, (up, True), params.server_repair_rate)
    pi = chain.steady_state()
    return sum(
        prob
        for (up, server_up), prob in pi.items()
        if server_up and up >= params.k_required
    )


def monolithic_state_count(params: WFSParameters) -> int:
    """Size of the product state space, ``2 (n + 1)``."""
    return 2 * (params.n_workstations + 1)


def resolve_parameters(assignment: Mapping[str, float]) -> WFSParameters:
    """Validate a (partial) assignment and merge it over the defaults.

    Values must be finite and non-negative; the count fields
    (``n_workstations``, ``k_required``) must additionally be whole
    numbers.  Unknown names raise a
    :class:`~repro.exceptions.ModelDefinitionError` listing the valid
    field names — the same contract as the BladeCenter evaluator.
    """
    merged = {}
    for name, value in assignment.items():
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ModelDefinitionError(
                f"WFS parameter {name!r} must be finite and non-negative, got {value}"
            )
        if name in _INT_FIELDS:
            if value != int(value):
                raise ModelDefinitionError(
                    f"WFS parameter {name!r} must be a whole number, got {value}"
                )
            merged[name] = int(value)
        else:
            merged[name] = value
    try:
        return replace(WFSParameters(), **merged)
    except TypeError:
        known = {f for f in WFSParameters.__dataclass_fields__}
        unknown = sorted(set(assignment) - known)
        raise ModelDefinitionError(
            f"unknown WFS parameter(s) {unknown}; valid names: {sorted(known)}"
        ) from None


def evaluate_availability(assignment: Mapping[str, float]) -> float:
    """Hierarchical service availability for a sweep point.

    Keys are :class:`WFSParameters` field names; unassigned fields keep
    the textbook defaults.  Module-level and picklable — the engine /
    serving-registry evaluator for the WFS case study.
    """
    return float(hierarchical_availability(resolve_parameters(assignment)))
