"""Telephone switching system DPM (Heimann–Mittal–Trivedi style).

The tutorial's telecom-performability classic: for a switching system,
plain availability misses the calls lost during *transient* events —
failovers drop the calls in progress even when the outage is seconds
long.  The right measure is **defects per million (DPM) calls**, a
Markov reward computed as

    DPM = 10^6 · Σ_s π_s · loss_fraction(s)  +  10^6 · (switchover call
          loss per event) · (event frequency) / (call arrival rate)

i.e. a steady-state reward rate plus an impulse (per-event) reward on
transitions — both expressible with the library's CTMC machinery.

The model: a duplex call processor with imperfect coverage.  States:

* ``duplex`` — both processors healthy (no loss);
* ``failover`` — covered failure, fast switchover (calls in progress on
  the failed side are lost: impulse loss, brief 100% loss rate);
* ``manual`` — uncovered failure, long manual recovery (100% loss);
* ``simplex`` — one processor carrying traffic (no steady loss, but no
  protection);
* ``down`` — double failure (100% loss).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Tuple

from ..exceptions import ModelDefinitionError
from ..markov.ctmc import CTMC
from ..markov.mrm import MarkovRewardModel

__all__ = [
    "TelecomParameters",
    "build_switch",
    "call_loss_dpm",
    "dpm_table",
    "resolve_parameters",
    "evaluate_availability",
]

#: Genuine lint findings (``python -m repro.analyze telecom``): hardware
#: failure rates (~1e-6/h) race call-level recovery (~600/h) in one chain
#: — the rate spread is the point of the DPM analysis, and the GTH solver
#: handles it exactly.
__diagnostics_acknowledged__ = {
    "M103": "stiffness is inherent to the published rates; GTH elimination is exact"
}


@dataclass
class TelecomParameters:
    """Rates (per hour) and call-level parameters."""

    #: per-processor failure rate (MTTF ≈ 10,000 h)
    failure_rate: float = 1.0e-4
    #: failover coverage
    coverage: float = 0.99
    #: switchover completion rate (≈ 6 s)
    failover_rate: float = 600.0
    #: manual recovery rate (≈ 20 min)
    manual_rate: float = 3.0
    #: processor repair rate (2 h)
    repair_rate: float = 0.5
    #: offered call arrival rate (calls/h)
    call_rate: float = 360_000.0
    #: mean calls in progress dropped by one switchover event
    calls_dropped_per_switchover: float = 200.0


def build_switch(params: TelecomParameters) -> CTMC:
    """The duplex-processor availability CTMC."""
    lam = params.failure_rate
    chain = CTMC()
    chain.add_transition("duplex", "failover", lam * params.coverage)
    chain.add_transition("duplex", "manual", lam * (1.0 - params.coverage))
    chain.add_transition("duplex", "simplex", lam)  # standby-side failure
    chain.add_transition("failover", "simplex", params.failover_rate)
    chain.add_transition("manual", "simplex", params.manual_rate)
    chain.add_transition("simplex", "duplex", params.repair_rate)
    chain.add_transition("simplex", "down", lam)
    chain.add_transition("down", "simplex", params.repair_rate)
    return chain


#: fraction of offered calls lost while sojourning in each state
LOSS_FRACTION = {
    "duplex": 0.0,
    "failover": 1.0,   # switchover blackout
    "manual": 1.0,
    "simplex": 0.0,
    "down": 1.0,
}


def call_loss_dpm(params: TelecomParameters) -> Dict[str, float]:
    """DPM decomposition: steady-state loss + switchover impulse loss.

    Returns keys ``steady_dpm`` (calls arriving during loss states),
    ``impulse_dpm`` (calls in progress dropped at switchover instants),
    ``total_dpm`` and ``availability`` (the naive measure, for
    contrast).
    """
    chain = build_switch(params)
    pi = chain.steady_state()

    # Steady part: fraction of offered calls arriving in lossy states.
    reward_model = MarkovRewardModel(chain, LOSS_FRACTION)
    steady_loss_fraction = reward_model.steady_state_reward_rate()
    steady_dpm = steady_loss_fraction * 1.0e6

    # Impulse part: switchover events drop in-progress calls.  Event
    # frequency = flow into "failover" = π_duplex · λ·c.
    switchover_frequency = pi["duplex"] * params.failure_rate * params.coverage
    impulse_dpm = (
        switchover_frequency
        * params.calls_dropped_per_switchover
        / params.call_rate
        * 1.0e6
    )

    availability = pi["duplex"] + pi["simplex"]
    return {
        "steady_dpm": steady_dpm,
        "impulse_dpm": impulse_dpm,
        "total_dpm": steady_dpm + impulse_dpm,
        "availability": availability,
    }


def dpm_table(
    coverages=(0.9, 0.99, 0.999),
    params: TelecomParameters = TelecomParameters(),
) -> List[Tuple[float, float, float, float, float]]:
    """Rows: (coverage, availability, steady DPM, impulse DPM, total DPM).

    The classic observation: past some coverage level the *impulse* loss
    (calls dropped by successful failovers) dominates — improving
    coverage further cannot reduce it; only faster/hitless switchover
    can.
    """
    rows: List[Tuple[float, float, float, float, float]] = []
    for c in coverages:
        swept = TelecomParameters(**{**params.__dict__, "coverage": float(c)})
        result = call_loss_dpm(swept)
        rows.append(
            (
                float(c),
                result["availability"],
                result["steady_dpm"],
                result["impulse_dpm"],
                result["total_dpm"],
            )
        )
    return rows


def resolve_parameters(assignment: Mapping[str, float]) -> TelecomParameters:
    """Validate a (partial) assignment and merge it over the defaults.

    Values must be finite and non-negative.  Unknown names raise a
    :class:`~repro.exceptions.ModelDefinitionError` listing the valid
    field names — the same contract as the BladeCenter evaluator.
    """
    merged = {}
    for name, value in assignment.items():
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ModelDefinitionError(
                f"telecom parameter {name!r} must be finite and non-negative, got {value}"
            )
        merged[name] = value
    try:
        return replace(TelecomParameters(), **merged)
    except TypeError:
        known = {f for f in TelecomParameters.__dataclass_fields__}
        unknown = sorted(set(assignment) - known)
        raise ModelDefinitionError(
            f"unknown telecom parameter(s) {unknown}; valid names: {sorted(known)}"
        ) from None


def evaluate_availability(assignment: Mapping[str, float]) -> float:
    """Switch availability (the naive measure) for a sweep point.

    Keys are :class:`TelecomParameters` field names; unassigned fields
    keep the published defaults.  Module-level and picklable — the
    engine / serving-registry evaluator for the telecom case study.  For
    the performability measure the DPM study is really about, call
    :func:`call_loss_dpm` directly.
    """
    return float(call_loss_dpm(resolve_parameters(assignment))["availability"])
