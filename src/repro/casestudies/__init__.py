"""The tutorial's industrial case studies (system S20 in DESIGN.md).

Each module is a self-contained worked example with documented
parameters and a table/series function that the matching benchmark
regenerates:

* :mod:`~repro.casestudies.cisco` — Cisco GSR 12000 router (E18)
* :mod:`~repro.casestudies.bladecenter` — IBM BladeCenter (E19)
* :mod:`~repro.casestudies.sun` — Sun carrier-grade platform (E20)
* :mod:`~repro.casestudies.sip` — IBM SIP/WebSphere composite (E21)
* :mod:`~repro.casestudies.boeing` — Boeing 787-scale bounded FT (E05)
* :mod:`~repro.casestudies.rejuvenation` — software rejuvenation MRGP (E12)
* :mod:`~repro.casestudies.wfs` — workstations & file server (E15)
* :mod:`~repro.casestudies.telecom` — switching-system call-loss DPM
* :mod:`~repro.casestudies.nfvchain` — scalable NFV service chain (E37)
"""

from . import (
    bladecenter,
    boeing,
    cisco,
    nfvchain,
    rejuvenation,
    sip,
    sun,
    telecom,
    wfs,
)

__all__ = [
    "cisco",
    "bladecenter",
    "sun",
    "sip",
    "boeing",
    "rejuvenation",
    "wfs",
    "telecom",
    "nfvchain",
]
