"""IBM BladeCenter availability model (tutorial case study, E19).

The published IBM BladeCenter analysis (Smith, Trivedi et al., IBM
J. R&D 2008 — the tutorial's running example) is a two-level hierarchy:

* **leaf CTMCs** for each redundant chassis subsystem — power supplies,
  blowers (cooling), management modules, Ethernet switch modules — all
  2-unit shared-repair chains; plus the blade server itself (CPU, memory,
  disks RAID-1, NICs) as an RBD;
* **top-level RBD** in series over the subsystem availabilities, one
  branch per blade.

Parameters are the published order-of-magnitude values (MTTFs of 10^5–10^6
hours, MTTR of a few hours with 24x7 service).  Reproduced claims: a
single blade server sees ~4 nines; the chassis infrastructure contributes
a small fraction of total downtime thanks to redundancy; disks and memory
dominate the blade's own downtime budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Tuple

from ..core.hierarchy import HierarchicalModel, Submodel, export_availability
from ..core.model import DependabilityModel
from ..exceptions import ModelDefinitionError
from ..markov.ctmc import CTMC, MarkovDependabilityModel
from ..nonstate.components import Component
from ..nonstate.rbd import ReliabilityBlockDiagram, parallel, series

__all__ = [
    "BladeCenterParameters",
    "build_redundant_pair",
    "build_blade_server",
    "build_chassis",
    "build_bladecenter",
    "downtime_budget",
    "resolve_parameters",
    "evaluate_availability",
]


@dataclass
class BladeCenterParameters:
    """Failure/repair rates (per hour) for the BladeCenter hierarchy."""

    # chassis subsystems: 2-unit redundant, shared repair
    power_failure_rate: float = 1.0 / 670_000.0
    blower_failure_rate: float = 1.0 / 600_000.0
    management_failure_rate: float = 1.0 / 219_000.0
    switch_failure_rate: float = 1.0 / 330_000.0
    chassis_repair_rate: float = 1.0 / 4.0       # 4 h MTTR, 24x7 contract
    # midplane: non-redundant, rarely fails, longer repair
    midplane_failure_rate: float = 1.0 / 2_800_000.0
    midplane_repair_rate: float = 1.0 / 24.0
    # blade-server internals
    cpu_failure_rate: float = 1.0 / 2_500_000.0
    memory_failure_rate: float = 1.0 / 480_000.0
    disk_failure_rate: float = 1.0 / 300_000.0
    nic_failure_rate: float = 1.0 / 1_200_000.0
    raid_rebuild_rate: float = 1.0 / 6.0          # RAID-1 rebuild, 6 h
    blade_repair_rate: float = 1.0 / 4.0
    # OS/software failure & reboot
    software_failure_rate: float = 1.0 / 4_000.0
    software_repair_rate: float = 6.0             # 10-minute reboot


def build_redundant_pair(
    failure_rate: float, repair_rate: float, shared_repair: bool = True
) -> MarkovDependabilityModel:
    """2-unit redundant subsystem CTMC (the chassis building block).

    With ``shared_repair`` a single repair crew serves both units — the
    dependency RBDs cannot express and the reason these leaves are CTMCs.
    """
    chain = CTMC()
    chain.add_transition(2, 1, 2.0 * failure_rate)
    chain.add_transition(1, 0, failure_rate)
    chain.add_transition(1, 2, repair_rate)
    chain.add_transition(0, 1, repair_rate if shared_repair else 2.0 * repair_rate)
    return MarkovDependabilityModel(chain, up_states=[2, 1], initial=2)


def build_raid_pair(params: BladeCenterParameters) -> MarkovDependabilityModel:
    """RAID-1 disk pair: fast rebuild after a single failure."""
    chain = CTMC()
    chain.add_transition(2, 1, 2.0 * params.disk_failure_rate)
    chain.add_transition(1, 0, params.disk_failure_rate)
    chain.add_transition(1, 2, params.raid_rebuild_rate)
    chain.add_transition(0, 1, params.blade_repair_rate)
    return MarkovDependabilityModel(chain, up_states=[2, 1], initial=2)


def build_blade_server(params: BladeCenterParameters) -> ReliabilityBlockDiagram:
    """One blade: CPU, memory, RAID-1 disks, dual NICs, OS in series."""
    raid = Component.fixed(
        "disks_raid1", build_raid_pair(params).steady_state_unavailability()
    )
    nic_pair = parallel(
        Component.from_rates("nic1", params.nic_failure_rate, params.blade_repair_rate),
        Component.from_rates("nic2", params.nic_failure_rate, params.blade_repair_rate),
    )
    return ReliabilityBlockDiagram(
        series(
            Component.from_rates("cpu", params.cpu_failure_rate, params.blade_repair_rate),
            Component.from_rates("memory", params.memory_failure_rate, params.blade_repair_rate),
            raid,
            nic_pair,
            Component.from_rates("os", params.software_failure_rate, params.software_repair_rate),
        )
    )


def _chassis_leaves(params: BladeCenterParameters) -> Dict[str, DependabilityModel]:
    return {
        "power": build_redundant_pair(params.power_failure_rate, params.chassis_repair_rate),
        "cooling": build_redundant_pair(params.blower_failure_rate, params.chassis_repair_rate),
        "management": build_redundant_pair(
            params.management_failure_rate, params.chassis_repair_rate
        ),
        "switch": build_redundant_pair(params.switch_failure_rate, params.chassis_repair_rate),
    }


def build_chassis(params: BladeCenterParameters) -> ReliabilityBlockDiagram:
    """Chassis infrastructure: redundant subsystems + midplane in series."""
    leaves = _chassis_leaves(params)
    blocks = [
        Component.fixed(name, model.steady_state_unavailability())
        for name, model in leaves.items()
    ]
    blocks.append(
        Component.from_rates(
            "midplane", params.midplane_failure_rate, params.midplane_repair_rate
        )
    )
    return ReliabilityBlockDiagram(series(*blocks))


def build_bladecenter(params: BladeCenterParameters = BladeCenterParameters()) -> HierarchicalModel:
    """The full two-level hierarchy as a :class:`HierarchicalModel`.

    Submodels: ``chassis`` and ``blade`` export availabilities that the
    ``system`` RBD imports (one blade in series with its chassis — the
    per-blade service view the IBM paper reports).
    """
    hierarchy = HierarchicalModel()
    hierarchy.add_submodel(
        Submodel(
            "chassis",
            lambda _params: build_chassis(params),
            exports={"availability": export_availability},
        )
    )
    hierarchy.add_submodel(
        Submodel(
            "blade",
            lambda _params: build_blade_server(params),
            exports={"availability": export_availability},
        )
    )

    def build_system(imports) -> ReliabilityBlockDiagram:
        return ReliabilityBlockDiagram(
            series(
                Component.fixed("chassis", 1.0 - imports["chassis_availability"]),
                Component.fixed("blade", 1.0 - imports["blade_availability"]),
            )
        )

    hierarchy.add_submodel(
        Submodel(
            "system",
            build_system,
            imports={
                "chassis_availability": ("chassis", "availability"),
                "blade_availability": ("blade", "availability"),
            },
            exports={"availability": export_availability},
        )
    )
    return hierarchy


def resolve_parameters(assignment: Mapping[str, float]) -> BladeCenterParameters:
    """Validate a (partial) assignment and merge it over the defaults.

    Values are validated up front (finite, non-negative) so that a bad
    draw from a heavy-tailed prior fails loudly as a
    :class:`~repro.exceptions.ModelDefinitionError` — which a
    :class:`~repro.robust.FaultPolicy` can then isolate to that one
    draw — instead of surfacing as a cryptic solver failure.
    """
    for name, value in assignment.items():
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ModelDefinitionError(
                f"BladeCenter parameter {name!r} must be finite and non-negative, "
                f"got {value}"
            )
    try:
        return replace(BladeCenterParameters(), **dict(assignment))
    except TypeError:
        known = {f for f in BladeCenterParameters.__dataclass_fields__}
        unknown = sorted(set(assignment) - known)
        raise ModelDefinitionError(
            f"unknown BladeCenter parameter(s) {unknown}; valid names: {sorted(known)}"
        ) from None


def evaluate_availability(assignment: Mapping[str, float]) -> float:
    """Steady-state system availability for a (partial) parameter assignment.

    Keys are :class:`BladeCenterParameters` field names; unassigned
    fields keep their published defaults.  Module-level and picklable —
    the engine-friendly evaluator for parameter sweeps
    (``propagate_uncertainty(evaluate_availability, ..., n_jobs=4)``).

    Sweeps should prefer the compiled form
    (``repro.compile.compile_model(evaluate_availability)``), which the
    engine auto-substitutes: it produces bit-identical results while
    building the hierarchy's structure only once.
    """
    params = resolve_parameters(assignment)
    solution = build_bladecenter(params).solve()
    return float(solution.value("system", "availability"))


evaluate_availability.__compiles_to__ = "repro.compile.model:CompiledBladeCenter"


def downtime_budget(
    params: BladeCenterParameters = BladeCenterParameters(),
) -> List[Tuple[str, float, float]]:
    """The E19 table: per-subsystem availability and downtime min/year.

    Rows are the chassis leaf subsystems, the midplane, the blade server,
    and the composed system.
    """
    from ..core.model import MINUTES_PER_YEAR

    rows: List[Tuple[str, float, float]] = []
    for name, model in _chassis_leaves(params).items():
        avail = model.steady_state_availability()
        rows.append((name, avail, (1.0 - avail) * MINUTES_PER_YEAR))
    midplane = Component.from_rates(
        "midplane", params.midplane_failure_rate, params.midplane_repair_rate
    )
    avail = midplane.steady_state_availability()
    rows.append(("midplane", avail, (1.0 - avail) * MINUTES_PER_YEAR))
    blade = build_blade_server(params)
    avail = blade.steady_state_availability()
    rows.append(("blade server", avail, (1.0 - avail) * MINUTES_PER_YEAR))
    solution = build_bladecenter(params).solve()
    avail = solution.value("system", "availability")
    rows.append(("system (chassis + blade)", avail, (1.0 - avail) * MINUTES_PER_YEAR))
    return rows
