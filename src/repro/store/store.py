"""The durable campaign result store: :class:`CampaignStore`.

Every ``(model, canonical point key, seed)`` evaluation outcome —
success *or* structured failure — is written to sqlite through the
single-writer :class:`~repro.store.db.StoreDB` serializer, so a
campaign's results survive the process that computed them.  On top of
the raw memo the store keeps *campaign* bookkeeping: a declared task
list (point keys in input order), a chunk plan, and per-chunk **lease
rows** (worker id, lease expiry, heartbeat) that let N worker processes
drain one campaign concurrently with crash-safe hand-off — a worker
that dies simply stops heart-beating and its chunk is reclaimed when
the lease expires.

Commit semantics (the invariants the rest of the subsystem builds on):

* a **success never degrades** — ``record_failure`` cannot overwrite an
  ``ok`` row, and a second ``record_success`` for the same key is a
  no-op (first writer wins; the return value says whether the row was
  actually written, which is how the benchmarks prove zero duplicate
  commits);
* a **failure never masquerades** — error rows carry the full
  :class:`~repro.robust.ErrorRecord` payload and are re-dispatched on
  resume, exactly like the in-memory cache's failures-never-cached
  rule;
* a **chunk commits atomically** — :meth:`record_chunk` folds the
  chunk's rows and its lease completion into one transaction, so a
  ``kill -9`` loses at most the chunk in flight, never half of one.

Point keys are the engine's :func:`~repro.engine.canonical_point_key`
serialized as JSON — ``json`` renders floats via ``repr``, which
round-trips every finite double exactly, so the stored key is
bit-faithful to the in-memory one.
"""

from __future__ import annotations

import json
import time as _time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..engine.cache import Key, canonical_point_key
from ..exceptions import ModelDefinitionError, SolverError
from ..robust.policy import ErrorRecord
from .db import SCHEMA_VERSION, StoreDB

__all__ = [
    "CampaignStore",
    "StoredResult",
    "encode_point_key",
    "decode_point_key",
]

PointKey = Union[Key, Mapping[str, float]]


def encode_point_key(point: PointKey) -> str:
    """Canonical JSON text for a parameter point.

    Accepts either a raw assignment mapping or an already-canonical
    :func:`~repro.engine.canonical_point_key` tuple.  ``json`` emits
    floats with ``repr``, so ``decode_point_key(encode_point_key(p))``
    reproduces the key bit for bit.

    Examples
    --------
    >>> encode_point_key({"b": 2, "a": 0.1})
    '[["a", 0.1], ["b", 2.0]]'
    """
    if isinstance(point, Mapping):
        key = canonical_point_key(point)
    else:
        key = canonical_point_key(dict(point))
    return json.dumps([[name, value] for name, value in key])


def decode_point_key(text: str) -> Key:
    """Inverse of :func:`encode_point_key`."""
    return tuple((str(name), float(value)) for name, value in json.loads(text))


@dataclass(frozen=True)
class StoredResult:
    """One durable evaluation outcome.

    ``status`` is ``"ok"`` (``value`` holds the number) or ``"error"``
    (``error_type``/``message``/``attempts``/``duration`` hold the
    :class:`~repro.robust.ErrorRecord` payload and ``value`` is NaN).
    """

    model: str
    point_key: str
    seed: str
    status: str
    value: float
    error_type: Optional[str] = None
    message: Optional[str] = None
    attempts: int = 1
    duration: float = 0.0
    worker_id: Optional[str] = None
    created_at: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_error_record(self, index: int = 0) -> ErrorRecord:
        """The failure as an engine :class:`~repro.robust.ErrorRecord`."""
        if self.ok:
            raise ModelDefinitionError("stored result is a success, not a failure")
        return ErrorRecord(
            index=int(index),
            error_type=self.error_type or "StoredFailure",
            message=self.message or "",
            attempts=self.attempts,
            duration=self.duration,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict form (used by ``export --json``)."""
        return {
            "model": self.model,
            "point": dict(decode_point_key(self.point_key)),
            "seed": self.seed,
            "status": self.status,
            # strict-JSON friendly: failures export null, not NaN
            "value": self.value if self.ok else None,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "duration": self.duration,
            "worker_id": self.worker_id,
            "created_at": self.created_at,
        }


_RESULT_COLUMNS = (
    "model, point_key, seed, status, value, error_type, message, "
    "attempts, duration, worker_id, created_at"
)


def _result_from_row(row: Tuple) -> StoredResult:
    # sqlite has no NaN (it stores NULL); restore the documented float form
    value = row[4]
    return StoredResult(*row[:4], float("nan") if value is None else float(value), *row[5:])


class CampaignStore:
    """Durable ``(model, point, seed) -> result-or-error`` store.

    Parameters
    ----------
    path:
        sqlite file (created on first open; parents must exist).
    timeout:
        Cross-process write-lock patience in seconds.
    now:
        Clock used for lease expiry and timestamps — injectable so the
        lease state machine is testable without sleeping.

    Examples
    --------
    >>> store = CampaignStore(":memory:")
    >>> store.record_success("m", {"x": 1.0}, 0.5)
    True
    >>> store.lookup("m", {"x": 1.0}).value
    0.5
    >>> store.record_success("m", {"x": 1.0}, 0.7)  # first writer wins
    False
    >>> store.close()
    """

    def __init__(self, path: str, timeout: float = 30.0, now=None):
        self.db = StoreDB(path, timeout=timeout)
        self.now = now if now is not None else _time.time

    # ------------------------------------------------------------ results
    def record_success(
        self,
        model: str,
        point: PointKey,
        value: float,
        seed: str = "",
        worker_id: Optional[str] = None,
        duration: float = 0.0,
        attempts: int = 1,
    ) -> bool:
        """Durably record one successful evaluation.

        Returns ``True`` when the row was written (fresh, or replacing a
        stored failure) and ``False`` when an ``ok`` row already existed
        — the duplicate-commit signal the lease tests assert on.
        """
        rows = [(point, float(value), None, float(duration), int(attempts))]
        written, _ = self.record_many(model, rows, seed=seed, worker_id=worker_id)
        return written == 1

    def record_failure(
        self,
        model: str,
        point: PointKey,
        error: ErrorRecord,
        seed: str = "",
        worker_id: Optional[str] = None,
    ) -> bool:
        """Durably record one terminal failure (never clobbers a success)."""
        rows = [(point, float("nan"), error, error.duration, error.attempts)]
        written, _ = self.record_many(model, rows, seed=seed, worker_id=worker_id)
        return written == 1

    def record_many(
        self,
        model: str,
        rows: Sequence[Tuple[PointKey, float, Optional[ErrorRecord], float, int]],
        seed: str = "",
        worker_id: Optional[str] = None,
    ) -> Tuple[int, int]:
        """Record a batch of outcomes in **one transaction**.

        Each row is ``(point, value, error_or_None, duration, attempts)``.
        Returns ``(written, duplicates)`` where *duplicates* counts rows
        that already had an ``ok`` entry and were left untouched.
        """
        encoded = [
            (
                encode_point_key(point),
                value,
                error,
                float(duration),
                int(attempts),
            )
            for point, value, error, duration, attempts in rows
        ]
        stamp = float(self.now())

        def _write(conn):
            written = duplicates = 0
            for key_text, value, error, duration, attempts in encoded:
                if error is None:
                    cur_params = (
                        model, key_text, seed, "ok", float(value),
                        None, None, attempts, duration, worker_id, stamp,
                    )
                else:
                    cur_params = (
                        model, key_text, seed, "error", None,
                        error.error_type, error.message,
                        attempts, duration, worker_id, stamp,
                    )
                conn.execute(
                    f"INSERT INTO results ({_RESULT_COLUMNS}) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?) "
                    "ON CONFLICT (model, point_key, seed) DO UPDATE SET "
                    "status = excluded.status, value = excluded.value, "
                    "error_type = excluded.error_type, message = excluded.message, "
                    "attempts = excluded.attempts, duration = excluded.duration, "
                    "worker_id = excluded.worker_id, created_at = excluded.created_at "
                    "WHERE results.status = 'error'",
                    cur_params,
                )
                if conn.execute("SELECT changes()").fetchone()[0]:
                    written += 1
                else:
                    duplicates += 1
            return written, duplicates

        return self.db.run(_write)

    def lookup(self, model: str, point: PointKey, seed: str = "") -> Optional[StoredResult]:
        """The stored outcome for one point, or ``None``."""
        key_text = encode_point_key(point)

        def _read(conn):
            row = conn.execute(
                f"SELECT {_RESULT_COLUMNS} FROM results "
                "WHERE model = ? AND point_key = ? AND seed = ?",
                (model, key_text, seed),
            ).fetchone()
            return None if row is None else _result_from_row(row)

        return self.db.run(_read)

    def lookup_many(
        self, model: str, points: Iterable[PointKey], seed: str = ""
    ) -> Dict[str, StoredResult]:
        """Stored outcomes for many points, keyed by encoded point key.

        One serializer round-trip regardless of batch size — the chunk
        runner's resume check is a single query, not N.
        """
        key_texts = [encode_point_key(point) for point in points]

        def _read(conn):
            found: Dict[str, StoredResult] = {}
            for lo in range(0, len(key_texts), 400):
                batch = key_texts[lo : lo + 400]
                marks = ",".join("?" * len(batch))
                for row in conn.execute(
                    f"SELECT {_RESULT_COLUMNS} FROM results "
                    f"WHERE model = ? AND seed = ? AND point_key IN ({marks})",
                    [model, seed, *batch],
                ):
                    result = _result_from_row(row)
                    found[result.point_key] = result
            return found

        return self.db.run(_read)

    def failures(self, model: Optional[str] = None) -> List[StoredResult]:
        """Every stored failure (optionally for one model)."""

        def _read(conn):
            if model is None:
                cursor = conn.execute(
                    f"SELECT {_RESULT_COLUMNS} FROM results WHERE status = 'error'"
                )
            else:
                cursor = conn.execute(
                    f"SELECT {_RESULT_COLUMNS} FROM results "
                    "WHERE status = 'error' AND model = ?",
                    (model,),
                )
            return [_result_from_row(row) for row in cursor]

        return self.db.run(_read)

    def clear_failures(self, model: Optional[str] = None) -> int:
        """Drop stored failures so the next resume re-dispatches them.

        The ``retry-failed`` runbook verb; returns the number dropped.
        """

        def _write(conn):
            if model is None:
                conn.execute("DELETE FROM results WHERE status = 'error'")
            else:
                conn.execute(
                    "DELETE FROM results WHERE status = 'error' AND model = ?",
                    (model,),
                )
            return conn.execute("SELECT changes()").fetchone()[0]

        return self.db.run(_write)

    # ---------------------------------------------------------- campaigns
    def create_campaign(
        self,
        campaign_id: str,
        model: str,
        points: Sequence[PointKey],
        chunk_size: int,
        seed: str = "",
    ) -> int:
        """Declare (or idempotently re-open) a campaign's task list.

        Writes the ordered point keys into ``tasks`` and one lease row
        per chunk.  Re-declaring an existing campaign verifies that the
        shape matches (same model, seed and point count) and leaves the
        stored rows alone — the foundation of resume.  Returns the
        number of chunks.
        """
        if chunk_size < 1:
            raise ModelDefinitionError(f"chunk_size must be >= 1, got {chunk_size}")
        if not points:
            raise ModelDefinitionError("a campaign needs at least one point")
        encoded = [encode_point_key(point) for point in points]
        n = len(encoded)
        n_chunks = (n + chunk_size - 1) // chunk_size
        stamp = float(self.now())

        def _write(conn):
            row = conn.execute(
                "SELECT model, seed, n_points, chunk_size FROM campaigns "
                "WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchone()
            if row is not None:
                if tuple(row) != (model, seed, n, chunk_size):
                    raise SolverError(
                        f"campaign {campaign_id!r} already exists with shape "
                        f"(model={row[0]!r}, seed={row[1]!r}, n_points={row[2]}, "
                        f"chunk_size={row[3]}); refusing to redeclare it as "
                        f"(model={model!r}, seed={seed!r}, n_points={n}, "
                        f"chunk_size={chunk_size})"
                    )
                return n_chunks
            conn.execute(
                "INSERT INTO campaigns (campaign_id, model, seed, n_points, "
                "chunk_size, created_at) VALUES (?, ?, ?, ?, ?, ?)",
                (campaign_id, model, seed, n, chunk_size, stamp),
            )
            conn.executemany(
                "INSERT INTO tasks (campaign_id, idx, point_key) VALUES (?, ?, ?)",
                [(campaign_id, idx, key) for idx, key in enumerate(encoded)],
            )
            conn.executemany(
                "INSERT INTO leases (campaign_id, chunk_id) VALUES (?, ?)",
                [(campaign_id, chunk) for chunk in range(n_chunks)],
            )
            return n_chunks

        return self.db.run(_write)

    def campaign(self, campaign_id: str) -> Dict[str, object]:
        """The campaign header row as a dict (raises on unknown id)."""

        def _read(conn):
            row = conn.execute(
                "SELECT campaign_id, model, seed, n_points, chunk_size, created_at "
                "FROM campaigns WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchone()
            return row

        row = self.db.run(_read)
        if row is None:
            raise SolverError(f"unknown campaign {row!r}" if row else f"unknown campaign {campaign_id!r}")
        keys = ("campaign_id", "model", "seed", "n_points", "chunk_size", "created_at")
        return dict(zip(keys, row))

    def campaign_ids(self) -> List[str]:
        """Declared campaign ids, oldest first."""
        return self.db.run(
            lambda conn: [
                row[0]
                for row in conn.execute(
                    "SELECT campaign_id FROM campaigns ORDER BY created_at, campaign_id"
                )
            ]
        )

    def campaign_points(self, campaign_id: str) -> List[str]:
        """Encoded point keys of a campaign, in input order."""
        keys = self.db.run(
            lambda conn: [
                row[0]
                for row in conn.execute(
                    "SELECT point_key FROM tasks WHERE campaign_id = ? ORDER BY idx",
                    (campaign_id,),
                )
            ]
        )
        if not keys:
            raise SolverError(f"unknown campaign {campaign_id!r}")
        return keys

    # -------------------------------------------------------------- leases
    def claim_chunk(
        self,
        campaign_id: str,
        worker_id: str,
        ttl: float = 60.0,
    ) -> Optional[int]:
        """Atomically claim one incomplete, unleased (or expired) chunk.

        A chunk is claimable when it is not completed and either was
        never leased, its lease expired (crashed worker — counted as a
        reclaim), or this very worker already holds it (re-entrant).
        Returns the chunk id, or ``None`` when nothing is claimable —
        which means either the campaign is drained or every remaining
        chunk is live under another worker's lease.

        The select-and-update runs inside one ``BEGIN IMMEDIATE``
        transaction on the serializer thread, so two workers can never
        walk away with the same chunk: the loser of the race simply
        claims the next chunk (or none).
        """
        stamp = float(self.now())

        def _claim(conn):
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT chunk_id, worker_id, lease_expiry FROM leases "
                "WHERE campaign_id = ? AND completed = 0 "
                "AND (worker_id IS NULL OR worker_id = ? OR lease_expiry < ?) "
                "ORDER BY chunk_id LIMIT 1",
                (campaign_id, worker_id, stamp),
            ).fetchone()
            if row is None:
                return None, False
            chunk_id, holder, expiry = row
            reclaimed = holder is not None and holder != worker_id and expiry < stamp
            conn.execute(
                "UPDATE leases SET worker_id = ?, lease_expiry = ?, heartbeat = ? "
                "WHERE campaign_id = ? AND chunk_id = ?",
                (worker_id, stamp + float(ttl), stamp, campaign_id, chunk_id),
            )
            return chunk_id, reclaimed

        chunk_id, reclaimed = self.db.run(_claim)
        if reclaimed:
            from ..obs.trace import get_tracer

            tracer = get_tracer()
            if tracer.enabled:
                tracer.metrics.counter("store.lease.reclaims").inc()
        return chunk_id

    def heartbeat(
        self, campaign_id: str, chunk_id: int, worker_id: str, ttl: float = 60.0
    ) -> bool:
        """Extend a held lease; ``False`` when the lease was lost."""
        stamp = float(self.now())

        def _beat(conn):
            conn.execute(
                "UPDATE leases SET lease_expiry = ?, heartbeat = ? "
                "WHERE campaign_id = ? AND chunk_id = ? AND worker_id = ? "
                "AND completed = 0",
                (stamp + float(ttl), stamp, campaign_id, chunk_id, worker_id),
            )
            return conn.execute("SELECT changes()").fetchone()[0] > 0

        return self.db.run(_beat)

    def release_chunk(self, campaign_id: str, chunk_id: int, worker_id: str) -> bool:
        """Voluntarily give an unfinished chunk back (graceful shutdown)."""

        def _release(conn):
            conn.execute(
                "UPDATE leases SET worker_id = NULL, lease_expiry = NULL, "
                "heartbeat = NULL WHERE campaign_id = ? AND chunk_id = ? "
                "AND worker_id = ? AND completed = 0",
                (campaign_id, chunk_id, worker_id),
            )
            return conn.execute("SELECT changes()").fetchone()[0] > 0

        return self.db.run(_release)

    def record_chunk(
        self,
        campaign_id: str,
        chunk_id: int,
        model: str,
        rows: Sequence[Tuple[PointKey, float, Optional[ErrorRecord], float, int]],
        seed: str = "",
        worker_id: Optional[str] = None,
    ) -> Tuple[int, int]:
        """Commit a chunk's results **and** its completion atomically.

        The checkpoint primitive: results land and the chunk's lease row
        flips to completed in one transaction.  A ``kill -9`` before the
        commit loses the whole chunk (it stays claimable after lease
        expiry); after the commit the chunk is durably done.  Returns
        ``(written, duplicates)`` as :meth:`record_many`.
        """
        encoded = [
            (encode_point_key(point), value, error, float(duration), int(attempts))
            for point, value, error, duration, attempts in rows
        ]
        stamp = float(self.now())

        def _commit(conn):
            conn.execute("BEGIN IMMEDIATE")
            written = duplicates = 0
            for key_text, value, error, duration, attempts in encoded:
                if error is None:
                    params = (
                        model, key_text, seed, "ok", float(value),
                        None, None, attempts, duration, worker_id, stamp,
                    )
                else:
                    params = (
                        model, key_text, seed, "error", None,
                        error.error_type, error.message,
                        attempts, duration, worker_id, stamp,
                    )
                conn.execute(
                    f"INSERT INTO results ({_RESULT_COLUMNS}) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?) "
                    "ON CONFLICT (model, point_key, seed) DO UPDATE SET "
                    "status = excluded.status, value = excluded.value, "
                    "error_type = excluded.error_type, message = excluded.message, "
                    "attempts = excluded.attempts, duration = excluded.duration, "
                    "worker_id = excluded.worker_id, created_at = excluded.created_at "
                    "WHERE results.status = 'error'",
                    params,
                )
                if conn.execute("SELECT changes()").fetchone()[0]:
                    written += 1
                else:
                    duplicates += 1
            conn.execute(
                "UPDATE leases SET completed = 1, worker_id = ?, "
                "lease_expiry = NULL WHERE campaign_id = ? AND chunk_id = ?",
                (worker_id, campaign_id, chunk_id),
            )
            return written, duplicates

        return self.db.run(_commit)

    def reopen_chunks(self, campaign_id: str, chunk_ids: Sequence[int]) -> int:
        """Mark completed chunks incomplete again (failure re-dispatch)."""
        ids = [int(c) for c in chunk_ids]
        if not ids:
            return 0

        def _write(conn):
            marks = ",".join("?" * len(ids))
            conn.execute(
                "UPDATE leases SET completed = 0, worker_id = NULL, "
                "lease_expiry = NULL, heartbeat = NULL "
                f"WHERE campaign_id = ? AND chunk_id IN ({marks})",
                [campaign_id, *ids],
            )
            return conn.execute("SELECT changes()").fetchone()[0]

        return self.db.run(_write)

    def chunk_states(self, campaign_id: str) -> List[Dict[str, object]]:
        """Lease table snapshot: one dict per chunk."""

        def _read(conn):
            return [
                {
                    "chunk_id": row[0],
                    "worker_id": row[1],
                    "lease_expiry": row[2],
                    "heartbeat": row[3],
                    "completed": bool(row[4]),
                }
                for row in conn.execute(
                    "SELECT chunk_id, worker_id, lease_expiry, heartbeat, completed "
                    "FROM leases WHERE campaign_id = ? ORDER BY chunk_id",
                    (campaign_id,),
                )
            ]

        return self.db.run(_read)

    # ------------------------------------------------------------- status
    def counts(self, model: Optional[str] = None) -> Dict[str, int]:
        """``{"ok": ..., "error": ...}`` result counts."""

        def _read(conn):
            if model is None:
                cursor = conn.execute(
                    "SELECT status, COUNT(*) FROM results GROUP BY status"
                )
            else:
                cursor = conn.execute(
                    "SELECT status, COUNT(*) FROM results WHERE model = ? "
                    "GROUP BY status",
                    (model,),
                )
            found = dict(cursor.fetchall())
            return {"ok": int(found.get("ok", 0)), "error": int(found.get("error", 0))}

        return self.db.run(_read)

    def status(self) -> Dict[str, object]:
        """A full human/JSON-facing snapshot (the CLI ``status`` verb)."""
        stamp = float(self.now())

        def _read(conn):
            models = {
                row[0]: {"ok": 0, "error": 0}
                for row in conn.execute("SELECT DISTINCT model FROM results")
            }
            for model, status_, count in conn.execute(
                "SELECT model, status, COUNT(*) FROM results GROUP BY model, status"
            ):
                models[model][status_] = int(count)
            campaigns = []
            for row in conn.execute(
                "SELECT campaign_id, model, seed, n_points, chunk_size "
                "FROM campaigns ORDER BY created_at, campaign_id"
            ):
                campaign_id, model, seed, n_points, chunk_size = row
                done, active = 0, 0
                for completed, expiry in conn.execute(
                    "SELECT completed, lease_expiry FROM leases WHERE campaign_id = ?",
                    (campaign_id,),
                ):
                    if completed:
                        done += 1
                    elif expiry is not None and expiry >= stamp:
                        active += 1
                n_ok = conn.execute(
                    "SELECT COUNT(*) FROM tasks t JOIN results r "
                    "ON r.model = ? AND r.seed = ? AND r.point_key = t.point_key "
                    "AND r.status = 'ok' WHERE t.campaign_id = ?",
                    (model, seed, campaign_id),
                ).fetchone()[0]
                n_chunks = (n_points + chunk_size - 1) // chunk_size
                campaigns.append(
                    {
                        "campaign_id": campaign_id,
                        "model": model,
                        "n_points": n_points,
                        "chunk_size": chunk_size,
                        "chunks": n_chunks,
                        "chunks_completed": done,
                        "leases_active": active,
                        "points_ok": int(n_ok),
                    }
                )
            return models, campaigns

        models, campaigns = self.db.run(_read)
        return {
            "path": self.db.path,
            "schema_version": SCHEMA_VERSION,
            "models": models,
            "campaigns": campaigns,
        }

    def export_json(self, model: Optional[str] = None) -> List[Dict[str, object]]:
        """Every stored result as a JSON-safe list of dicts."""

        def _read(conn):
            if model is None:
                cursor = conn.execute(
                    f"SELECT {_RESULT_COLUMNS} FROM results ORDER BY model, point_key"
                )
            else:
                cursor = conn.execute(
                    f"SELECT {_RESULT_COLUMNS} FROM results WHERE model = ? "
                    "ORDER BY point_key",
                    (model,),
                )
            return [_result_from_row(row) for row in cursor]

        return [result.to_dict() for result in self.db.run(_read)]

    def vacuum(self) -> None:
        """Reclaim file space (sqlite ``VACUUM``)."""
        self.db.run(lambda conn: conn.execute("VACUUM"))

    # ----------------------------------------------------------- plumbing
    def close(self) -> None:
        """Flush and close the underlying serializer.  Idempotent."""
        self.db.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CampaignStore({self.db.path!r})"
