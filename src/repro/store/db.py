"""The store's one and only sqlite doorway: :class:`StoreDB`.

Durability is easy to get wrong with sqlite under concurrency, so the
whole subsystem funnels every database touch through a single pattern:
one connection, owned by one dedicated *serializer thread*, executing
submitted closures in order.  Request threads (engine workers, the HTTP
daemon, the CLI) never see the connection object; they submit a
``fn(conn)`` and wait on a future.  Consequences:

* **no cross-thread connection sharing** — the sqlite object graph is
  touched by exactly one thread for its whole life;
* **writer serialization for free** — sqlite allows one writer at a
  time anyway; funneling writes through one thread turns lock
  contention into an orderly queue;
* **multi-process safety** — each process owns its own serializer +
  connection against the same file; WAL journaling lets N processes
  interleave readers with a single writer, with ``busy_timeout``
  absorbing writer collisions.

``tools/lint_repro.py`` rule **R006** enforces the funnel statically:
``sqlite3.connect`` may appear in this module and nowhere else under
``repro.store``.

The schema itself also lives here (one place to read it, one place to
migrate it): a ``meta`` key/value table carrying ``schema_version``,
``results`` (the durable memo), ``campaigns`` + ``tasks`` (declared
work), and ``leases`` (multi-worker chunk ownership).  See
``docs/DURABILITY.md`` for the full data model.
"""

from __future__ import annotations

import queue
import sqlite3
import threading
from typing import Any, Callable, Optional

from ..exceptions import ModelDefinitionError, SolverError

__all__ = ["SCHEMA_VERSION", "StoreDB"]

#: Bump on any incompatible schema change; ``StoreDB`` refuses files
#: written by a different version instead of corrupting them.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    model      TEXT NOT NULL,
    point_key  TEXT NOT NULL,
    seed       TEXT NOT NULL DEFAULT '',
    status     TEXT NOT NULL CHECK (status IN ('ok', 'error')),
    value      REAL,
    error_type TEXT,
    message    TEXT,
    attempts   INTEGER NOT NULL DEFAULT 1,
    duration   REAL NOT NULL DEFAULT 0.0,
    worker_id  TEXT,
    created_at REAL NOT NULL,
    PRIMARY KEY (model, point_key, seed)
);
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id TEXT PRIMARY KEY,
    model       TEXT NOT NULL,
    seed        TEXT NOT NULL DEFAULT '',
    n_points    INTEGER NOT NULL,
    chunk_size  INTEGER NOT NULL,
    created_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS tasks (
    campaign_id TEXT NOT NULL,
    idx         INTEGER NOT NULL,
    point_key   TEXT NOT NULL,
    PRIMARY KEY (campaign_id, idx)
);
CREATE TABLE IF NOT EXISTS leases (
    campaign_id  TEXT NOT NULL,
    chunk_id     INTEGER NOT NULL,
    worker_id    TEXT,
    lease_expiry REAL,
    heartbeat    REAL,
    completed    INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (campaign_id, chunk_id)
);
CREATE INDEX IF NOT EXISTS idx_results_model ON results (model, seed, status);
CREATE INDEX IF NOT EXISTS idx_tasks_campaign ON tasks (campaign_id);
"""


class _Job:
    """One submitted closure plus the slot its outcome lands in."""

    __slots__ = ("fn", "event", "result", "error")

    def __init__(self, fn: Callable[[sqlite3.Connection], Any]):
        self.fn = fn
        self.event = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None

    def wait(self) -> Any:
        self.event.wait()
        if self.error is not None:
            raise self.error
        return self.result


class StoreDB:
    """A sqlite file behind a single-writer serializer thread.

    Parameters
    ----------
    path:
        Database file path (``":memory:"`` works for tests but is
        obviously not durable and cannot be shared across processes).
    timeout:
        ``busy_timeout`` in seconds — how long a write waits out another
        *process* holding the write lock before failing.

    Examples
    --------
    >>> db = StoreDB(":memory:")
    >>> db.run(lambda conn: conn.execute("SELECT 1").fetchone()[0])
    1
    >>> db.close()
    """

    def __init__(self, path: str, timeout: float = 30.0):
        if timeout <= 0:
            raise ModelDefinitionError(f"timeout must be positive, got {timeout}")
        self.path = str(path)
        self.timeout = float(timeout)
        self._queue: "queue.SimpleQueue[Optional[_Job]]" = queue.SimpleQueue()
        self._closed = threading.Event()
        self._boot_error: Optional[BaseException] = None
        self._booted = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, name=f"repro-store-{self.path}", daemon=True
        )
        self._thread.start()
        self._booted.wait()
        if self._boot_error is not None:
            raise self._boot_error

    # ------------------------------------------------------- serializer
    def _serve(self) -> None:
        """The serializer loop: open, migrate, then drain jobs forever."""
        try:
            conn = self._open()
        except BaseException as exc:  # propagate to the constructor
            self._boot_error = exc
            self._booted.set()
            return
        self._booted.set()
        try:
            while True:
                job = self._queue.get()
                if job is None:
                    break
                try:
                    job.result = job.fn(conn)
                    if conn.in_transaction:
                        conn.commit()
                except BaseException as exc:
                    if conn.in_transaction:
                        conn.rollback()
                    job.error = exc
                finally:
                    job.event.set()
        finally:
            conn.close()

    def _open(self) -> sqlite3.Connection:
        """Open + migrate; the only ``sqlite3.connect`` in ``repro.store``."""
        conn = sqlite3.connect(self.path)  # serializer thread only (R006 home)
        conn.execute(f"PRAGMA busy_timeout = {int(self.timeout * 1000)}")
        conn.execute("PRAGMA journal_mode = WAL")
        conn.execute("PRAGMA synchronous = NORMAL")
        conn.execute("PRAGMA foreign_keys = ON")
        conn.executescript(_SCHEMA)
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        elif int(row[0]) != SCHEMA_VERSION:
            conn.close()
            raise SolverError(
                f"store file {self.path!r} has schema version {row[0]}, this "
                f"library writes version {SCHEMA_VERSION}; refusing to touch it"
            )
        conn.commit()
        return conn

    # ------------------------------------------------------------ public
    def submit(self, fn: Callable[[sqlite3.Connection], Any]) -> _Job:
        """Queue ``fn(conn)`` for the serializer thread; returns the job.

        ``fn`` runs with the connection in autocommit-off mode; a clean
        return commits, an exception rolls back (so a multi-statement
        closure is one transaction — the store's chunk-checkpoint
        atomicity comes straight from this).
        """
        if self._closed.is_set():
            raise SolverError(f"store {self.path!r} is closed")
        job = _Job(fn)
        self._queue.put(job)
        return job

    def run(self, fn: Callable[[sqlite3.Connection], Any]) -> Any:
        """Submit and wait: the synchronous doorway everything uses."""
        return self.submit(fn).wait()

    def close(self) -> None:
        """Drain queued jobs, stop the serializer, close the file.  Idempotent."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._queue.put(None)
        self._thread.join(timeout=30.0)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def __enter__(self) -> "StoreDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else "open"
        return f"StoreDB({self.path!r}, {state})"
