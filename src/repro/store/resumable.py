"""Checkpointed campaign execution: :class:`ResumableCampaign`.

The runner that turns the durable store into crash-proof sweeps.  A
campaign's design is declared once (ordered point keys + a chunk plan);
execution is then a *drain loop* that any number of workers can run
against the same store file::

    claim a chunk lease -> skip points already stored ok ->
    evaluate the rest -> commit results + completion atomically -> repeat

Because the loop is the same whether the campaign is fresh, resumed
after ``kill -9``, or shared by N worker processes, there is exactly one
code path to trust: a restart is just a worker joining a partially
drained campaign.  The chunk commit is one sqlite transaction, so the
blast radius of a hard kill is at most the chunk in flight; everything
committed before it is never re-evaluated (the lease tests assert this
with an evaluation-call counter).

Stored *failures* are not sticky: on open, completed chunks containing
error rows are reopened so the failed points are re-dispatched under the
current :class:`~repro.robust.FaultPolicy`, and a success overwrites the
stored error (never the other way around).
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
from contextlib import nullcontext
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..engine.batch import evaluate_batch
from ..engine.campaign import CampaignResult, CampaignSpec, PointsCampaign
from ..engine.options import EngineOptions
from ..engine.stats import EngineStats
from ..exceptions import ModelDefinitionError
from ..obs.trace import get_tracer
from .naming import model_name_for, resolve_evaluator
from .store import CampaignStore, decode_point_key, encode_point_key

__all__ = ["ResumableCampaign", "campaign_id_for", "resume_campaign"]


def campaign_id_for(
    model: str, point_keys: Sequence[str], seed: str = "", chunk_size: int = 25
) -> str:
    """Deterministic campaign id for a (model, design, seed, chunking).

    Re-running the same spec against the same store resolves to the same
    campaign row — which is precisely what makes ``resume`` a no-keyword
    operation: declare the campaign again, get the old one back.
    """
    payload = json.dumps(
        [model, seed, int(chunk_size), list(point_keys)], separators=(",", ":")
    )
    digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()
    return f"c{digest}"


def default_worker_id() -> str:
    """``host:pid`` — unique per live worker process."""
    return f"{socket.gethostname()}:{os.getpid()}"


class ResumableCampaign:
    """A campaign whose progress lives in a :class:`CampaignStore`.

    Parameters
    ----------
    evaluate:
        The evaluator callable, or ``None`` to resolve it from ``model``
        (see :func:`~repro.store.resolve_evaluator`).
    spec:
        A :class:`~repro.engine.CampaignSpec` or an explicit sequence of
        assignment mappings.
    store:
        The durable store (shared by every worker of the campaign).
    model:
        Durable model name; derived from ``evaluate`` when omitted.
    seed:
        Store seed column (``""`` for deterministic evaluators).
    chunk_size:
        Points per checkpoint — the maximum work a hard kill can lose.
    campaign_id:
        Explicit id; defaults to the deterministic
        :func:`campaign_id_for` of the materialized design.
    worker_id:
        This worker's lease identity (default ``host:pid``).
    lease_ttl:
        Seconds a claimed chunk stays owned without a heartbeat; a
        crashed worker's chunk becomes claimable after this long.
    options:
        :class:`~repro.engine.EngineOptions` for the per-chunk
        evaluation (policy, compile, inner ``n_jobs``...).  The
        campaign's own checkpointing replaces ``cache``/``progress``.
    retry_failures:
        Reopen chunks containing stored failures on start (default).

    Attributes
    ----------
    evaluated_points / skipped_points:
        This worker's evaluator calls vs. points served from the store.
    committed_chunks / duplicate_commits:
        Chunks this worker checkpointed, and result rows it lost to a
        first-writer (non-zero only under racing workers, and the race
        loser's rows are *not* written — zero duplicate commits).

    Examples
    --------
    >>> store = CampaignStore(":memory:")
    >>> campaign = ResumableCampaign(
    ...     lambda p: p["x"] ** 2, [{"x": float(x)} for x in range(4)],
    ...     store, model="square", chunk_size=2)
    >>> campaign.run().outputs.tolist()
    [0.0, 1.0, 4.0, 9.0]
    >>> campaign2 = ResumableCampaign(      # same design: resumes, all stored
    ...     lambda p: p["x"] ** 2, [{"x": float(x)} for x in range(4)],
    ...     store, model="square", chunk_size=2)
    >>> campaign2.run().outputs.tolist()
    [0.0, 1.0, 4.0, 9.0]
    >>> campaign2.evaluated_points, campaign2.skipped_points
    (0, 4)
    >>> store.close()
    """

    def __init__(
        self,
        evaluate: Optional[Callable],
        spec: Union[CampaignSpec, Sequence[Mapping[str, float]]],
        store: CampaignStore,
        model: Optional[str] = None,
        seed: str = "",
        chunk_size: int = 25,
        campaign_id: Optional[str] = None,
        worker_id: Optional[str] = None,
        lease_ttl: float = 60.0,
        options: Optional[EngineOptions] = None,
        retry_failures: bool = True,
    ):
        if chunk_size < 1:
            raise ModelDefinitionError(f"chunk_size must be >= 1, got {chunk_size}")
        if lease_ttl <= 0:
            raise ModelDefinitionError(f"lease_ttl must be positive, got {lease_ttl}")
        if model is None:
            if evaluate is None:
                raise ModelDefinitionError(
                    "give a model name, an evaluator, or both; got neither"
                )
            model = model_name_for(evaluate)
        if evaluate is None:
            evaluate = resolve_evaluator(model)
        self.evaluate = evaluate
        self.spec: CampaignSpec = (
            spec if isinstance(spec, CampaignSpec) else PointsCampaign(spec)
        )
        self.store = store
        self.model = str(model)
        self.seed = str(seed)
        self.chunk_size = int(chunk_size)
        self.campaign_id = campaign_id
        self.worker_id = worker_id if worker_id is not None else default_worker_id()
        self.lease_ttl = float(lease_ttl)
        self.options = options if options is not None else EngineOptions()
        self.retry_failures = bool(retry_failures)
        self.evaluated_points = 0
        self.skipped_points = 0
        self.committed_chunks = 0
        self.duplicate_commits = 0
        self.complete = False

    # ---------------------------------------------------------------- run
    def run(
        self,
        rng: Optional[np.random.Generator] = None,
        throttle: float = 0.0,
        should_stop: Optional[Callable[[], bool]] = None,
        max_chunks: Optional[int] = None,
        wait: bool = True,
        poll: float = 0.05,
    ) -> CampaignResult:
        """Drain the campaign and return its (stored) results.

        ``rng`` seeds randomized designs exactly as
        :func:`~repro.engine.run_campaign` does.  ``throttle`` sleeps
        that many seconds before each evaluation (test hook for killing
        a worker mid-chunk).  ``should_stop`` is polled between chunks —
        when it turns true the worker finishes its in-flight chunk,
        commits it, and returns partial results (graceful shutdown).
        ``max_chunks`` bounds this worker's share.  With ``wait`` the
        call blocks until the whole campaign is drained (by anyone);
        without it, it returns as soon as this worker runs out of
        claimable chunks.
        """
        t0 = time.perf_counter()
        assignments = self.spec.assignments(rng)
        encoded = [encode_point_key(point) for point in assignments]
        if self.campaign_id is None:
            self.campaign_id = campaign_id_for(
                self.model, encoded, seed=self.seed, chunk_size=self.chunk_size
            )
        self.store.create_campaign(
            self.campaign_id, self.model, assignments,
            chunk_size=self.chunk_size, seed=self.seed,
        )
        if self.retry_failures:
            self._reopen_failed_chunks(encoded)

        tracer = get_tracer()
        span = (
            tracer.span(
                "store.campaign",
                campaign_id=self.campaign_id,
                model=self.model,
                n_points=len(assignments),
            )
            if tracer.enabled
            else nullcontext()
        )
        durations: List[float] = []
        stopped = False
        with span:
            chunks_done = 0
            while True:
                if should_stop is not None and should_stop():
                    stopped = True
                    break
                if max_chunks is not None and chunks_done >= max_chunks:
                    break
                chunk_id = self.store.claim_chunk(
                    self.campaign_id, self.worker_id, ttl=self.lease_ttl
                )
                if chunk_id is None:
                    if self._campaign_complete():
                        break
                    if not wait:
                        break
                    # live leases elsewhere: wait for them to finish or expire
                    time.sleep(poll)
                    continue
                durations.extend(
                    self._run_chunk(chunk_id, assignments, throttle=throttle)
                )
                chunks_done += 1

        self.complete = self._campaign_complete()
        outputs, errors, missing = self._collect(encoded)
        # points neither evaluated by this worker nor still missing were
        # served from the store — the resume/skip payoff
        self.skipped_points = max(
            0, len(assignments) - self.evaluated_points - missing
        )
        wall = time.perf_counter() - t0
        stats = EngineStats(
            executor="store",
            n_jobs=1,
            n_tasks=len(assignments),
            durations=durations,
            wall_time=wall,
            cache_hits=self.skipped_points,
            cache_misses=self.evaluated_points,
            n_failed=len(errors),
        )
        if tracer.enabled:
            tracer.metrics.counter(
                "store.campaign.runs",
                model=self.model,
                complete=str(self.complete).lower(),
                stopped=str(stopped).lower(),
            ).inc()
        return CampaignResult(self.spec, assignments, outputs, stats, errors)

    # ------------------------------------------------------------- pieces
    def _chunk_indices(self, chunk_id: int, n: int) -> range:
        lo = chunk_id * self.chunk_size
        return range(lo, min(lo + self.chunk_size, n))

    def _run_chunk(
        self,
        chunk_id: int,
        assignments: List[Dict[str, float]],
        throttle: float = 0.0,
    ) -> List[float]:
        """Evaluate one claimed chunk and checkpoint it atomically."""
        indices = list(self._chunk_indices(chunk_id, len(assignments)))
        chunk_points = [assignments[i] for i in indices]
        stored = self.store.lookup_many(self.model, chunk_points, seed=self.seed)
        todo: List[int] = []  # positions within the chunk
        for pos, point in enumerate(chunk_points):
            prior = stored.get(encode_point_key(point))
            if prior is None or not prior.ok:
                todo.append(pos)
        tracer = get_tracer()
        if tracer.enabled and len(todo) < len(chunk_points):
            tracer.metrics.counter("store.points.skipped", model=self.model).inc(
                len(chunk_points) - len(todo)
            )
        durations: List[float] = []
        rows = []
        if todo:
            evaluate = self.evaluate
            if throttle > 0.0:
                inner = evaluate

                def evaluate(point, _inner=inner):
                    time.sleep(throttle)
                    return _inner(point)

            batch = evaluate_batch(
                evaluate,
                [chunk_points[pos] for pos in todo],
                options=self.options.replace(
                    cache=None, progress=None, tracer=None
                ),
            )
            self.evaluated_points += len(todo)
            if tracer.enabled:
                tracer.metrics.counter(
                    "store.points.evaluated", model=self.model
                ).inc(len(todo))
            errors_by_pos = {err.index: err for err in batch.errors}
            durations = [float(d) for d in batch.stats.durations]
            for k, pos in enumerate(todo):
                error = errors_by_pos.get(k)
                value = float(batch.outputs[k])
                duration = durations[k] if k < len(durations) else 0.0
                attempts = error.attempts if error is not None else 1
                rows.append((chunk_points[pos], value, error, duration, attempts))
        written, duplicates = self.store.record_chunk(
            self.campaign_id,
            chunk_id,
            self.model,
            rows,
            seed=self.seed,
            worker_id=self.worker_id,
        )
        self.committed_chunks += 1
        self.duplicate_commits += duplicates
        if tracer.enabled:
            tracer.metrics.counter("store.chunks.committed", model=self.model).inc()
            if duplicates:
                tracer.metrics.counter(
                    "store.commit.duplicates", model=self.model
                ).inc(duplicates)
        return durations

    def _reopen_failed_chunks(self, encoded: Sequence[str]) -> int:
        """Re-dispatch stored failures: reopen their completed chunks."""
        failed_keys = {
            result.point_key for result in self.store.failures(self.model)
        }
        if not failed_keys:
            return 0
        chunk_ids = sorted(
            {
                idx // self.chunk_size
                for idx, key in enumerate(encoded)
                if key in failed_keys
            }
        )
        completed = {
            state["chunk_id"]
            for state in self.store.chunk_states(self.campaign_id)
            if state["completed"]
        }
        reopened = self.store.reopen_chunks(
            self.campaign_id, [c for c in chunk_ids if c in completed]
        )
        if reopened:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.metrics.counter(
                    "store.chunks.reopened", model=self.model
                ).inc(reopened)
        return reopened

    def _campaign_complete(self) -> bool:
        return all(
            state["completed"] for state in self.store.chunk_states(self.campaign_id)
        )

    def _collect(self, encoded: Sequence[str]):
        """Assemble outputs/errors for the design from the stored rows."""
        stored = self.store.lookup_many(
            self.model, [decode_point_key(key) for key in encoded], seed=self.seed
        )
        outputs = np.full(len(encoded), np.nan)
        errors = []
        missing = 0
        for idx, key in enumerate(encoded):
            result = stored.get(key)
            if result is None:
                missing += 1  # chunk still unclaimed/unfinished (partial return)
                continue
            if result.ok:
                outputs[idx] = result.value
            else:
                errors.append(result.to_error_record(idx))
        return outputs, errors, missing

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResumableCampaign({self.model!r}, campaign_id={self.campaign_id!r}, "
            f"chunk_size={self.chunk_size})"
        )


def resume_campaign(
    store: CampaignStore,
    campaign_id: str,
    evaluate: Optional[Callable] = None,
    worker_id: Optional[str] = None,
    lease_ttl: float = 60.0,
    options: Optional[EngineOptions] = None,
    retry_failures: bool = True,
    **run_kwargs,
) -> CampaignResult:
    """Resume a declared campaign purely from its durable record.

    Reads the campaign header and task list out of ``store``, resolves
    the evaluator from the stored model name (unless one is passed), and
    drains whatever work remains.  This is the CLI ``resume`` verb and
    the entry point a fresh worker host uses to join a campaign it has
    never seen.
    """
    header = store.campaign(campaign_id)
    points = [decode_point_key(key) for key in store.campaign_points(campaign_id)]
    campaign = ResumableCampaign(
        evaluate,
        [dict(point) for point in points],
        store,
        model=str(header["model"]),
        seed=str(header["seed"]),
        chunk_size=int(header["chunk_size"]),  # type: ignore[call-overload]
        campaign_id=campaign_id,
        worker_id=worker_id,
        lease_ttl=lease_ttl,
        options=options,
        retry_failures=retry_failures,
    )
    result = campaign.run(**run_kwargs)
    result.campaign = campaign  # type: ignore[attr-defined]
    return result
