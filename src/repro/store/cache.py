"""The persistent tier under :class:`~repro.engine.EvaluationCache`.

:class:`StoreBackedCache` is a drop-in ``EvaluationCache`` whose misses
fall through to a :class:`~repro.store.CampaignStore`: a memory LRU sits
in front (so a warm rerun costs the same as the pure in-memory cache),
sqlite sits behind (so the memo survives the process).  The engine's
batch path already guarantees that only clean values reach
:meth:`put`, and the sqlite tier only ever *serves* ``ok`` rows — a
stored failure is treated as a miss, so failures are never replayed as
successes, mirroring the in-memory cache's failures-never-cached rule.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple, Union

from ..engine.cache import EvaluationCache, Key
from .naming import model_name_for
from .store import CampaignStore

__all__ = ["StoreBackedCache"]


class StoreBackedCache(EvaluationCache):
    """Two-tier memo: memory LRU in front, durable sqlite behind.

    Parameters
    ----------
    store:
        The durable tier (an open :class:`~repro.store.CampaignStore`).
    model:
        Durable model name the rows are stored under — a string, or an
        evaluator callable to derive the name from (via
        :func:`~repro.store.model_name_for`).
    seed:
        Store seed column value (``""`` for deterministic evaluators).
    maxsize:
        Memory-tier LRU bound, as :class:`~repro.engine.EvaluationCache`.
    write_through:
        When ``True`` (default) every fresh value is persisted; ``False``
        makes the store read-only (warm-start from history without
        growing it).

    Attributes
    ----------
    store_hits / store_misses:
        Traffic that fell through the memory tier: sqlite rows served
        vs. true misses that reached the evaluator.

    Examples
    --------
    >>> store = CampaignStore(":memory:")
    >>> cache = StoreBackedCache(store, model="m")
    >>> evaluate = cache.wrap(lambda p: p["x"] * 2)
    >>> evaluate({"x": 2.0})
    4.0
    >>> cache.clear()                     # drop the memory tier only
    >>> evaluate({"x": 2.0})              # served durably, not re-evaluated
    4.0
    >>> cache.store_hits, cache.store_misses
    (1, 1)
    >>> store.close()
    """

    def __init__(
        self,
        store: CampaignStore,
        model: Union[str, object],
        seed: str = "",
        maxsize: Optional[int] = None,
        write_through: bool = True,
    ):
        super().__init__(maxsize=maxsize)
        self.store = store
        self.model = model if isinstance(model, str) else model_name_for(model)
        self.seed = str(seed)
        self.write_through = bool(write_through)
        self.store_hits = 0
        self.store_misses = 0

    def peek(self, key: Key) -> Tuple[bool, float]:
        """Memory tier first; on miss, consult sqlite and promote.

        Only ``ok`` rows are served — a stored failure reads as a miss
        so the engine re-evaluates it (and, on success,
        :meth:`put` overwrites the error row durably).

        The memory-hit branch mirrors the parent's lookup inline rather
        than delegating: a warm rerun peeks once per point, and the
        extra call frame alone is measurable against a dict hit (the
        E36 warm-overhead gate holds this path to <= 5% of the pure
        in-memory cache).
        """
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                pass
            else:
                self._data.move_to_end(key)
                return True, value
        stored = self.store.lookup(self.model, key, seed=self.seed)
        if stored is not None and stored.ok:
            self.store_hits += 1
            self._count("store.cache.hits")
            super().put(key, stored.value)  # promote into the memory tier
            return True, stored.value
        self.store_misses += 1
        self._count("store.cache.misses")
        return False, float("nan")

    def put(self, key: Key, value: float) -> None:
        """Store in both tiers (sqlite write skipped when read-only)."""
        super().put(key, value)
        if self.write_through:
            self.store.record_success(self.model, key, value, seed=self.seed)

    def warm(self, limit: Optional[int] = None) -> int:
        """Preload the memory tier from every stored success of the model.

        Returns the number of rows promoted.  With a bounded memory tier
        the usual LRU eviction applies; ``limit`` caps the promotion
        independently.
        """
        rows = self.store.export_json(self.model)
        n = 0
        for row in rows:
            if row["status"] != "ok":
                continue
            if limit is not None and n >= limit:
                break
            point = row["point"]
            assert isinstance(point, dict)
            super().put(
                tuple(sorted((str(k), float(v) + 0.0) for k, v in point.items())),
                float(row["value"]),  # type: ignore[arg-type]
            )
            n += 1
        return n

    def __contains__(self, assignment: Mapping[str, float]) -> bool:
        from ..engine.cache import freeze_assignment

        found, _ = self.peek(freeze_assignment(assignment))
        return found

    @staticmethod
    def _count(name: str) -> None:
        from ..obs.trace import get_tracer

        tracer = get_tracer()
        if tracer.enabled:
            tracer.metrics.counter(name).inc()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StoreBackedCache({self.model!r}, {len(self)} in memory, "
            f"{self.store_hits} store hits / {self.store_misses} store misses)"
        )
