"""CLI entry point: ``python -m repro.store <verb> --store FILE``.

The operational surface of the durable campaign store:

* ``status`` — models, result counts, campaign/chunk/lease progress;
* ``resume`` — join a declared campaign as a worker and drain it
  (the multi-worker entry point: run it on N hosts against one file);
* ``retry-failed`` — drop stored failures so the next resume
  re-dispatches them (see the runbook in ``docs/DURABILITY.md``);
* ``vacuum`` — reclaim sqlite file space;
* ``export --json`` — dump every stored result;
* ``--selfcheck`` — create → kill → resume → verify bit-identity in a
  tmpdir, wired into ``tools/check.sh`` so crash recovery cannot rot.

The ``resume`` worker honors the two-stage signal contract
(:class:`~repro.robust.GracefulShutdown`): the first SIGTERM/SIGINT
finishes the in-flight chunk, commits it, flushes the store and exits 0;
the second force-exits.  ``--kill-after N`` arms the end-to-end crash
harness — the worker SIGKILLs *itself* on its N-th evaluation via
:class:`~repro.robust.FaultInjector`'s ``kill`` mode, which is how the
selfcheck produces a genuine unflushed mid-chunk death.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from typing import List, Optional

from ..exceptions import ReproError
from ..robust.faultinject import FaultInjector
from ..robust.policy import FaultPolicy
from ..robust.shutdown import GracefulShutdown
from .naming import resolve_evaluator
from .resumable import resume_campaign
from .store import CampaignStore

__all__ = ["main", "selfcheck"]


def _open_store(path: str) -> CampaignStore:
    if not os.path.exists(path):
        raise ReproError(f"no store file at {path!r} (stores are created by runs)")
    return CampaignStore(path)


def _pick_campaign(store: CampaignStore, requested: Optional[str]) -> str:
    ids = store.campaign_ids()
    if requested is not None:
        if requested not in ids:
            raise ReproError(
                f"unknown campaign {requested!r}; store has {ids or 'none'}"
            )
        return requested
    if len(ids) == 1:
        return ids[0]
    raise ReproError(
        f"store has {len(ids)} campaigns; pick one with --campaign "
        f"(ids: {', '.join(ids) or 'none'})"
    )


def _cmd_status(args) -> int:
    with _open_store(args.store) as store:
        snapshot = store.status()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print(f"store: {snapshot['path']} (schema v{snapshot['schema_version']})")
    models = snapshot["models"]
    if not models:
        print("  no results recorded")
    for name, counts in sorted(models.items()):  # type: ignore[union-attr]
        print(f"  model {name}: {counts['ok']} ok, {counts['error']} failed")
    for campaign in snapshot["campaigns"]:  # type: ignore[union-attr]
        print(
            f"  campaign {campaign['campaign_id']} [{campaign['model']}]: "
            f"{campaign['chunks_completed']}/{campaign['chunks']} chunks, "
            f"{campaign['points_ok']}/{campaign['n_points']} points ok, "
            f"{campaign['leases_active']} live lease(s)"
        )
    return 0


def _cmd_resume(args) -> int:
    shutdown = GracefulShutdown().install()
    with _open_store(args.store) as store:
        campaign_id = _pick_campaign(store, args.campaign)
        evaluate = None
        if args.kill_after is not None:
            header = store.campaign(campaign_id)
            evaluate = FaultInjector(
                resolve_evaluator(str(header["model"])),
                mode="kill",
                fail_calls={int(args.kill_after)},
            )
        from ..engine.options import EngineOptions

        options = EngineOptions(
            policy=FaultPolicy(args.on_error) if args.on_error != "raise" else None
        )
        result = resume_campaign(
            store,
            campaign_id,
            evaluate=evaluate,
            worker_id=args.worker_id,
            lease_ttl=args.ttl,
            options=options,
            throttle=args.throttle,
            should_stop=shutdown,
            wait=not args.no_wait,
        )
        campaign = result.campaign  # type: ignore[attr-defined]
        if not args.quiet:
            state = "complete" if campaign.complete else "incomplete"
            print(
                f"resume: campaign {campaign_id} {state}: "
                f"{campaign.evaluated_points} evaluated, "
                f"{campaign.skipped_points} served from store, "
                f"{campaign.committed_chunks} chunk(s) committed, "
                f"{len(result.errors)} failed point(s)"
            )
    shutdown.uninstall()
    if shutdown.requested:
        return 0  # drained gracefully on request — that is a success
    return 0 if campaign.complete and not result.errors else 3


def _cmd_retry_failed(args) -> int:
    with _open_store(args.store) as store:
        dropped = store.clear_failures(args.model)
        if not args.quiet:
            scope = f"model {args.model}" if args.model else "all models"
            print(
                f"retry-failed: dropped {dropped} stored failure(s) for {scope}; "
                "the next resume re-dispatches them"
            )
    return 0


def _cmd_vacuum(args) -> int:
    with _open_store(args.store) as store:
        before = os.path.getsize(args.store)
        store.vacuum()
        after = os.path.getsize(args.store)
    if not args.quiet:
        print(f"vacuum: {before} -> {after} bytes")
    return 0


def _cmd_export(args) -> int:
    with _open_store(args.store) as store:
        rows = store.export_json(args.model)
    print(json.dumps(rows, indent=None if args.compact else 2, sort_keys=True))
    return 0


def selfcheck(quiet: bool = False) -> int:
    """Create → kill → resume → verify bit-identity, in a tmpdir.

    The CI gate for crash recovery: declares a BladeCenter campaign,
    runs a worker subprocess that SIGKILLs itself mid-campaign (via the
    ``kill`` fault injector), verifies the store holds a strict subset
    of results, resumes with a second worker, and requires the final
    outputs to be bit-identical to an uninterrupted in-process run.
    """

    def say(line: str) -> None:
        if not quiet:
            print(line)

    failures: List[str] = []

    def check(ok: bool, what: str) -> None:
        say(f"  {'ok' if ok else 'FAIL'}: {what}")
        if not ok:
            failures.append(what)

    import numpy as np

    from .resumable import ResumableCampaign, campaign_id_for
    from .store import encode_point_key

    evaluate = resolve_evaluator("bladecenter")
    points = [{"disk_failure_rate": 1e-5 * (1.0 + 0.05 * k)} for k in range(30)]
    say("selfcheck: 30-point bladecenter campaign, chunk_size=5")
    baseline = np.asarray([evaluate(p) for p in points], dtype=float)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "selfcheck.sqlite")
        encoded = [encode_point_key(p) for p in points]
        campaign_id = campaign_id_for("bladecenter", encoded, chunk_size=5)
        with CampaignStore(path) as store:
            store.create_campaign(campaign_id, "bladecenter", points, chunk_size=5)
        say(f"selfcheck: declared campaign {campaign_id} in {path}")

        # make sure the worker subprocess imports *this* repro, wherever
        # the selfcheck was launched from
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        worker = [
            sys.executable, "-m", "repro.store", "resume",
            "--store", path, "--worker-id", "selfcheck", "--quiet",
        ]
        proc = subprocess.run(
            worker + ["--kill-after", "13"], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, timeout=300,
        )
        check(proc.returncode == -9, f"worker SIGKILLed itself (rc {proc.returncode})")

        with CampaignStore(path) as store:
            mid = store.counts("bladecenter")["ok"]
        check(0 < mid < 30, f"mid-kill store holds a strict subset ({mid}/30 points)")
        check(mid % 5 == 0, f"only whole chunks survived the kill ({mid} points)")

        proc = subprocess.run(
            worker, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, timeout=300,
        )
        check(proc.returncode == 0, f"resume worker drained cleanly (rc {proc.returncode})")

        with CampaignStore(path) as store:
            resumed = ResumableCampaign(
                evaluate, points, store, model="bladecenter", chunk_size=5
            )
            outputs = resumed.run().outputs
            check(
                resumed.evaluated_points == 0,
                "verification pass re-evaluated nothing (all 30 served durably)",
            )
        identical = outputs.tobytes() == baseline.tobytes()
        check(identical, "resumed outputs byte-identical to uninterrupted run")

    if failures:
        say(f"selfcheck: {len(failures)} failure(s)")
        return 1
    say("selfcheck: all checks passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Durable, resumable campaign store: status, resume, retry-failed, vacuum, export.",
    )
    parser.add_argument(
        "--selfcheck",
        action="store_true",
        help="create -> kill -> resume -> verify bit-identity in a tmpdir, exit 0/1",
    )
    parser.add_argument("-q", "--quiet", action="store_true", help="suppress progress output")
    sub = parser.add_subparsers(dest="verb")

    def add_store(p):
        p.add_argument("--store", required=True, help="sqlite store file")
        p.add_argument("-q", "--quiet", action="store_true", help="suppress output")

    p_status = sub.add_parser("status", help="models, campaigns, chunk/lease progress")
    add_store(p_status)
    p_status.add_argument("--json", action="store_true", help="machine-readable output")

    p_resume = sub.add_parser("resume", help="join a declared campaign as a worker and drain it")
    add_store(p_resume)
    p_resume.add_argument("--campaign", help="campaign id (optional when the store has exactly one)")
    p_resume.add_argument("--worker-id", help="lease identity (default host:pid)")
    p_resume.add_argument("--ttl", type=float, default=60.0, help="lease seconds before a dead worker's chunk is reclaimed (default %(default)s)")
    p_resume.add_argument("--throttle", type=float, default=0.0, help="sleep this many seconds before each evaluation (test hook)")
    p_resume.add_argument("--kill-after", type=int, metavar="N", help="SIGKILL this worker on its N-th evaluation (crash-recovery harness)")
    p_resume.add_argument("--on-error", choices=("raise", "skip", "retry"), default="skip", help="fault policy for evaluation errors (default %(default)s)")
    p_resume.add_argument("--no-wait", action="store_true", help="return when out of claimable chunks instead of waiting for other workers")

    p_retry = sub.add_parser("retry-failed", help="drop stored failures so the next resume re-dispatches them")
    add_store(p_retry)
    p_retry.add_argument("--model", help="limit to one model name")

    p_vacuum = sub.add_parser("vacuum", help="reclaim sqlite file space")
    add_store(p_vacuum)

    p_export = sub.add_parser("export", help="dump stored results as JSON")
    add_store(p_export)
    p_export.add_argument("--model", help="limit to one model name")
    p_export.add_argument("--json", action="store_true", help="accepted for symmetry; export is always JSON")
    p_export.add_argument("--compact", action="store_true", help="single-line output")

    args = parser.parse_args(argv)
    if args.selfcheck:
        return selfcheck(quiet=args.quiet)
    if args.verb is None:
        parser.print_help()
        return 2
    handlers = {
        "status": _cmd_status,
        "resume": _cmd_resume,
        "retry-failed": _cmd_retry_failed,
        "vacuum": _cmd_vacuum,
        "export": _cmd_export,
    }
    try:
        return handlers[args.verb](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
