"""Stable model names for stored results.

A durable store outlives the process that filled it, so rows cannot be
keyed by a function object — they carry a *name* that a later process
can resolve back to the evaluator.  The convention matches
:mod:`repro.serve`'s registry: a case study is addressed by its module
basename (``"bladecenter"``, ``"cisco"``, ``"sun"``, ...), so a store
filled by a campaign is queryable by the same names the HTTP daemon
serves.  Anything else falls back to a fully-qualified
``"module:qualname"`` spec, and any callable can opt into a custom name
with a ``__store_name__`` attribute.
"""

from __future__ import annotations

import importlib
from typing import Callable

from ..exceptions import SolverError

__all__ = ["model_name_for", "resolve_evaluator"]

_CASESTUDY_PREFIX = "repro.casestudies."


def model_name_for(evaluate) -> str:
    """The durable name under which ``evaluate``'s results are stored.

    Resolution order: an explicit ``__store_name__`` attribute; the
    case-study module basename for evaluators living under
    ``repro.casestudies`` (and for their compiled forms, which resolve
    through :mod:`repro.compile`'s registry); otherwise the
    ``"module:qualname"`` of the callable.

    Examples
    --------
    >>> from repro.casestudies.bladecenter import evaluate_availability
    >>> model_name_for(evaluate_availability)
    'bladecenter'
    """
    explicit = getattr(evaluate, "__store_name__", None)
    if isinstance(explicit, str) and explicit:
        return explicit
    from ..compile.model import _NAMED_MODELS, CompiledEvaluator

    if isinstance(evaluate, CompiledEvaluator):
        for name, cls in _NAMED_MODELS.items():
            if type(evaluate) is cls:
                return name
        evaluate = type(evaluate)
    module = getattr(evaluate, "__module__", "") or ""
    qualname = getattr(evaluate, "__qualname__", "") or getattr(
        evaluate, "__name__", ""
    )
    if module.startswith(_CASESTUDY_PREFIX):
        basename = module[len(_CASESTUDY_PREFIX) :].split(".", 1)[0]
        if basename:
            return basename
    if not module or not qualname:
        raise SolverError(
            f"cannot derive a durable store name for {evaluate!r}; give it a "
            "__store_name__ attribute or pass model= explicitly"
        )
    return f"{module}:{qualname}"


def resolve_evaluator(name: str) -> Callable:
    """Resolve a stored model name back to its evaluator callable.

    The inverse of :func:`model_name_for`: a bare name loads
    ``repro.casestudies.<name>.evaluate_availability``; a
    ``"module:qualname"`` spec imports the module and walks the
    qualified name.  Raises :class:`~repro.exceptions.SolverError` when
    nothing resolves — the CLI surfaces this as "store names a model
    this installation does not know".
    """
    if not isinstance(name, str) or not name:
        raise SolverError(f"model name must be a non-empty string, got {name!r}")
    if ":" not in name:
        try:
            module = importlib.import_module(_CASESTUDY_PREFIX + name)
        except ImportError as exc:
            raise SolverError(
                f"unknown case-study model {name!r} (no module "
                f"{_CASESTUDY_PREFIX + name})"
            ) from exc
        evaluate = getattr(module, "evaluate_availability", None)
        if evaluate is None:
            raise SolverError(
                f"case-study module {module.__name__!r} has no "
                "evaluate_availability"
            )
        return evaluate
    module_name, _, qualname = name.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SolverError(f"cannot import module {module_name!r} for model {name!r}") from exc
    target = module
    for part in qualname.split("."):
        target = getattr(target, part, None)
        if target is None:
            raise SolverError(
                f"module {module_name!r} has no attribute path {qualname!r}"
            )
    if not callable(target):
        raise SolverError(f"resolved {name!r} to non-callable {target!r}")
    return target
