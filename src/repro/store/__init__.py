"""repro.store — durable, resumable, multi-worker campaigns (E36).

The tutorial's workloads are long parameter-sweep campaigns over
availability models; until this subsystem, a campaign died with its
process.  ``repro.store`` makes every evaluation durable — a
stdlib-sqlite :class:`CampaignStore` records each
``(model, canonical point key, seed)`` outcome (success *or* structured
:class:`~repro.robust.ErrorRecord` failure) through a single-writer
serializer thread in WAL mode — and makes campaigns resumable and
shareable on top of it:

* :class:`ResumableCampaign` — checkpoint-per-chunk execution: each
  completed chunk commits atomically, restart skips stored successes
  and re-dispatches stored failures, so ``kill -9`` mid-campaign loses
  at most the one in-flight chunk;
* **work leases** — N worker processes drain one campaign against one
  store file via ``claim → evaluate → commit`` lease rows (worker id,
  expiry, heartbeat); a crashed worker's lease expires and its chunk is
  reclaimed automatically, and first-writer-wins commit rules make
  duplicate commits impossible;
* :class:`StoreBackedCache` — the persistent tier under the engine's
  :class:`~repro.engine.EvaluationCache`: memory LRU in front, sqlite
  behind, failures never persisted as successes;
* a CLI — ``python -m repro.store status|resume|retry-failed|vacuum|
  export`` — plus ``--selfcheck`` (create → kill → resume → verify
  bit-identity in a tmpdir), wired into ``tools/check.sh``.

Engine integration: ``run_campaign(..., store=..., resume=True)`` (or
the same fields on :class:`~repro.engine.EngineOptions`) routes a
campaign through the store transparently; results are bit-identical to
the in-memory path — durability adds bookkeeping, never arithmetic.

Kill-and-resume quickstart::

    from repro import GridCampaign, run_campaign
    from repro.store import CampaignStore
    from repro.casestudies.bladecenter import evaluate_availability

    spec = GridCampaign({"blade_failure_rate": [1e-4, 2e-4, 4e-4]})
    with CampaignStore("sweep.sqlite") as store:
        result = run_campaign(evaluate_availability, spec, store=store)
    # ... kill -9 at any point; re-running the same two lines resumes
    # from the last committed chunk instead of starting over.

See ``docs/DURABILITY.md`` for the schema, the lease lifecycle and the
``retry-failed`` runbook.
"""

from .cache import StoreBackedCache
from .db import SCHEMA_VERSION, StoreDB
from .naming import model_name_for, resolve_evaluator
from .resumable import ResumableCampaign, campaign_id_for, resume_campaign
from .store import CampaignStore, StoredResult, decode_point_key, encode_point_key

__all__ = [
    "CampaignStore",
    "StoredResult",
    "StoreDB",
    "SCHEMA_VERSION",
    "StoreBackedCache",
    "ResumableCampaign",
    "resume_campaign",
    "campaign_id_for",
    "model_name_for",
    "resolve_evaluator",
    "encode_point_key",
    "decode_point_key",
]
