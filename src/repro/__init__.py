"""repro — Reliability and Availability Modeling in Practice.

A Python reproduction of the model classes and solution methods surveyed
in Kishor Trivedi's DSN 2016 tutorial *Reliability and Availability
Modeling in Practice*:

* **non-state-space models** — reliability block diagrams, fault trees,
  reliability graphs; BDD and sum-of-disjoint-products quantification;
  bounding algorithms for very large models; importance measures
  (:mod:`repro.nonstate`);
* **state-space models** — CTMCs and DTMCs, Markov reward models,
  semi-Markov and Markov regenerative processes, phase-type
  distributions (:mod:`repro.markov`);
* **stochastic reward nets** — automatic CTMC generation with
  vanishing-marking elimination (:mod:`repro.petrinet`);
* **hierarchical & fixed-point composition**, parametric uncertainty
  propagation and sensitivity analysis (:mod:`repro.core`);
* **Monte Carlo simulation** for cross-validation (:mod:`repro.sim`);
* a **batch-evaluation engine** with fault policies
  (:mod:`repro.engine`, :mod:`repro.robust`), **compiled sweep
  kernels** that build model structure once and solve many parameter
  points fast (:mod:`repro.compile`), and a zero-dependency
  **observability layer** — hierarchical tracing and metrics over every
  solver and sweep (:mod:`repro.obs`);
* **static model diagnostics** — a lint pass over CTMCs, SRNs, RBDs,
  fault trees, reliability graphs and hierarchies with stable codes and
  fix hints, wired into every solver front door via ``diagnostics=``
  (:mod:`repro.analyze`, ``python -m repro.analyze <casestudy>``);
* an **always-on availability-query daemon** — a zero-dependency HTTP
  service over a registry of warm compiled evaluators with request
  micro-batching and a result cache (:mod:`repro.serve`,
  ``python -m repro.serve``);
* the tutorial's **industrial case studies** — IBM BladeCenter, Cisco
  GSR 12000, Sun carrier-grade platform, Boeing-scale bounded fault
  trees, IBM SIP/WebSphere, software rejuvenation, workstations & file
  server (:mod:`repro.casestudies`).

The top-level namespace is a curated, lazily-imported surface: the names
in ``__all__`` resolve on first access (``from repro import CTMC,
trace, evaluate_batch``), so ``import repro`` stays cheap.  Everything
else lives in the submodules; see ``docs/API.md`` for the public map.

Quickstart
----------
>>> from repro import Component, ReliabilityBlockDiagram, parallel
>>> a = Component.from_mttf_mttr("a", mttf=1000.0, mttr=10.0)
>>> b = Component.from_mttf_mttr("b", mttf=1000.0, mttr=10.0)
>>> system = ReliabilityBlockDiagram(parallel(a, b))
>>> round(system.steady_state_availability(), 6)
0.999902
"""

from typing import TYPE_CHECKING

__version__ = "1.0.0"

#: Public name → defining submodule.  ``__getattr__`` below resolves the
#: import on first attribute access and caches the result in the module
#: dict, so repeated lookups are plain attribute hits.
_EXPORTS = {
    # protocol & composition (repro.core)
    "DependabilityModel": "repro.core.model",
    "HierarchicalModel": "repro.core.hierarchy",
    "HierarchySolution": "repro.core.hierarchy",
    "Submodel": "repro.core.hierarchy",
    "export_availability": "repro.core.hierarchy",
    "export_unavailability": "repro.core.hierarchy",
    "export_mttf": "repro.core.hierarchy",
    "export_equivalent_failure_rate": "repro.core.hierarchy",
    "FixedPointSolver": "repro.core.fixedpoint",
    "FixedPointResult": "repro.core.fixedpoint",
    "propagate_uncertainty": "repro.core.uncertainty",
    "tornado_sensitivity": "repro.core.uncertainty",
    "parametric_sensitivity": "repro.core.sensitivity",
    "rank_parameters": "repro.core.sensitivity",
    # batch-evaluation engine (repro.engine)
    "evaluate_batch": "repro.engine",
    "BatchResult": "repro.engine",
    "EngineOptions": "repro.engine",
    "EvaluationCache": "repro.engine",
    "EngineStats": "repro.engine",
    "ProgressPrinter": "repro.engine",
    "SerialExecutor": "repro.engine",
    "ThreadExecutor": "repro.engine",
    "ProcessExecutor": "repro.engine",
    "CampaignSpec": "repro.engine",
    "PointsCampaign": "repro.engine",
    "GridCampaign": "repro.engine",
    "SwingCampaign": "repro.engine",
    "SamplingCampaign": "repro.engine",
    "CampaignResult": "repro.engine",
    "run_campaign": "repro.engine",
    "canonical_point_key": "repro.engine",
    # static model diagnostics (repro.analyze)
    "analyze": "repro.analyze",
    "AnalysisReport": "repro.analyze",
    "Diagnostic": "repro.analyze",
    "run_diagnostics": "repro.analyze",
    # compiled sweep kernels (repro.compile)
    "compile_model": "repro.compile",
    "supports_compilation": "repro.compile",
    "CompiledCTMC": "repro.compile",
    "CompiledSparseCTMC": "repro.compile",
    "CompiledStructureFunction": "repro.compile",
    "continuation_order": "repro.compile",
    # availability-query daemon (repro.serve)
    "ServeApp": "repro.serve",
    "ServeServer": "repro.serve",
    "create_server": "repro.serve",
    "ModelRegistry": "repro.serve",
    "RegisteredModel": "repro.serve",
    "default_registry": "repro.serve",
    "MicroBatcher": "repro.serve",
    "ResultCache": "repro.serve",
    # durable campaign store (repro.store)
    "CampaignStore": "repro.store",
    "StoredResult": "repro.store",
    "StoreBackedCache": "repro.store",
    "ResumableCampaign": "repro.store",
    "resume_campaign": "repro.store",
    "model_name_for": "repro.store",
    "resolve_evaluator": "repro.store",
    # observability (repro.obs)
    "trace": "repro.obs",
    "Tracer": "repro.obs",
    "NullTracer": "repro.obs",
    "Span": "repro.obs",
    "get_tracer": "repro.obs",
    "MetricsRegistry": "repro.obs",
    "ThreadSafeMetricsRegistry": "repro.obs",
    "Observation": "repro.obs",
    "format_trace": "repro.obs",
    "to_prometheus": "repro.obs",
    # robustness (repro.robust)
    "FaultPolicy": "repro.robust",
    "FaultReport": "repro.robust",
    "ErrorRecord": "repro.robust",
    "FaultInjector": "repro.robust",
    "GracefulShutdown": "repro.robust",
    # state-space (repro.markov)
    "CTMC": "repro.markov.ctmc",
    "DTMC": "repro.markov.dtmc",
    "MarkovDependabilityModel": "repro.markov.ctmc",
    "MarkovRewardModel": "repro.markov.mrm",
    "SemiMarkovProcess": "repro.markov.smp",
    "MarkovRegenerativeProcess": "repro.markov.mrgp",
    "solve_steady_state": "repro.markov.fallback",
    "SolverReport": "repro.markov.fallback",
    "solve_transient": "repro.markov.solvers",
    # non-state-space (repro.nonstate)
    "Component": "repro.nonstate.components",
    "ReliabilityBlockDiagram": "repro.nonstate.rbd",
    "Series": "repro.nonstate.rbd",
    "Parallel": "repro.nonstate.rbd",
    "KofN": "repro.nonstate.rbd",
    "series": "repro.nonstate.rbd",
    "parallel": "repro.nonstate.rbd",
    "k_of_n": "repro.nonstate.rbd",
    "FaultTree": "repro.nonstate.faulttree",
    "BasicEvent": "repro.nonstate.faulttree",
    "AndGate": "repro.nonstate.faulttree",
    "OrGate": "repro.nonstate.faulttree",
    "KofNGate": "repro.nonstate.faulttree",
    "NotGate": "repro.nonstate.faulttree",
    "ReliabilityGraph": "repro.nonstate.relgraph",
    # Petri nets (repro.petrinet)
    "PetriNet": "repro.petrinet.net",
    "StochasticRewardNet": "repro.petrinet.srn",
    "SRNDependabilityModel": "repro.petrinet.srn",
    # large state spaces (repro.sparse)
    "SparseCTMC": "repro.sparse.ctmc",
    "SparseReachabilityResult": "repro.sparse.reachability",
    "build_sparse_reachability": "repro.sparse.reachability",
    "SolverRegistry": "repro.markov.registry",
    # exceptions
    "ReproError": "repro.exceptions",
    "ModelDefinitionError": "repro.exceptions",
    "SolverError": "repro.exceptions",
    "ConvergenceError": "repro.exceptions",
    "StateSpaceError": "repro.exceptions",
    "DistributionError": "repro.exceptions",
    "HierarchyError": "repro.exceptions",
    "ModelDiagnosticError": "repro.exceptions",
    "DiagnosticWarning": "repro.exceptions",
}

#: Public name → submodule exported *as a module object* (``repro.sparse``
#: resolves to the package itself, not an attribute of it).  Module
#: exports appear in ``__all__`` but not in the ``TYPE_CHECKING`` block —
#: static analyzers resolve submodules natively (lint rule R003 checks
#: both tables).
_MODULE_EXPORTS = {
    "sparse": "repro.sparse",
}

__all__ = ["__version__", *_EXPORTS, *_MODULE_EXPORTS]


def __getattr__(name: str):
    """Resolve a curated export on first access (PEP 562)."""
    import importlib

    module_name = _EXPORTS.get(name)
    if module_name is None:
        target = _MODULE_EXPORTS.get(name)
        if target is None:
            raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
        value = importlib.import_module(target)
        globals()[name] = value
        return value

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))


if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .analyze import AnalysisReport, Diagnostic, analyze, run_diagnostics
    from .core.fixedpoint import FixedPointResult, FixedPointSolver
    from .core.hierarchy import (
        HierarchicalModel,
        HierarchySolution,
        Submodel,
        export_availability,
        export_equivalent_failure_rate,
        export_mttf,
        export_unavailability,
    )
    from .compile import (
        CompiledCTMC,
        CompiledSparseCTMC,
        CompiledStructureFunction,
        compile_model,
        continuation_order,
        supports_compilation,
    )
    from .core.model import DependabilityModel
    from .core.sensitivity import parametric_sensitivity, rank_parameters
    from .core.uncertainty import propagate_uncertainty, tornado_sensitivity
    from .engine import (
        BatchResult,
        CampaignResult,
        CampaignSpec,
        EngineOptions,
        EngineStats,
        EvaluationCache,
        GridCampaign,
        PointsCampaign,
        ProcessExecutor,
        ProgressPrinter,
        SamplingCampaign,
        SerialExecutor,
        SwingCampaign,
        ThreadExecutor,
        canonical_point_key,
        evaluate_batch,
        run_campaign,
    )
    from .exceptions import (
        ConvergenceError,
        DiagnosticWarning,
        DistributionError,
        HierarchyError,
        ModelDefinitionError,
        ModelDiagnosticError,
        ReproError,
        SolverError,
        StateSpaceError,
    )
    from .markov.ctmc import CTMC, MarkovDependabilityModel
    from .markov.dtmc import DTMC
    from .markov.fallback import SolverReport, solve_steady_state
    from .markov.mrgp import MarkovRegenerativeProcess
    from .markov.mrm import MarkovRewardModel
    from .markov.smp import SemiMarkovProcess
    from .markov.solvers import solve_transient
    from .nonstate.components import Component
    from .nonstate.faulttree import (
        AndGate,
        BasicEvent,
        FaultTree,
        KofNGate,
        NotGate,
        OrGate,
    )
    from .nonstate.rbd import (
        KofN,
        Parallel,
        ReliabilityBlockDiagram,
        Series,
        k_of_n,
        parallel,
        series,
    )
    from .nonstate.relgraph import ReliabilityGraph
    from .obs import (
        MetricsRegistry,
        NullTracer,
        Observation,
        Span,
        ThreadSafeMetricsRegistry,
        Tracer,
        format_trace,
        get_tracer,
        to_prometheus,
        trace,
    )
    from .serve import (
        MicroBatcher,
        ModelRegistry,
        RegisteredModel,
        ResultCache,
        ServeApp,
        ServeServer,
        create_server,
        default_registry,
    )
    from .markov.registry import SolverRegistry
    from .petrinet.net import PetriNet
    from .petrinet.srn import SRNDependabilityModel, StochasticRewardNet
    from .sparse.ctmc import SparseCTMC
    from .sparse.reachability import SparseReachabilityResult, build_sparse_reachability
    from .robust import (
        ErrorRecord,
        FaultInjector,
        FaultPolicy,
        FaultReport,
        GracefulShutdown,
    )
    from .store import (
        CampaignStore,
        ResumableCampaign,
        StoreBackedCache,
        StoredResult,
        model_name_for,
        resolve_evaluator,
        resume_campaign,
    )
