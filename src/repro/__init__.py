"""repro — Reliability and Availability Modeling in Practice.

A Python reproduction of the model classes and solution methods surveyed
in Kishor Trivedi's DSN 2016 tutorial *Reliability and Availability
Modeling in Practice*:

* **non-state-space models** — reliability block diagrams, fault trees,
  reliability graphs; BDD and sum-of-disjoint-products quantification;
  bounding algorithms for very large models; importance measures
  (:mod:`repro.nonstate`);
* **state-space models** — CTMCs and DTMCs, Markov reward models,
  semi-Markov and Markov regenerative processes, phase-type
  distributions (:mod:`repro.markov`);
* **stochastic reward nets** — automatic CTMC generation with
  vanishing-marking elimination (:mod:`repro.petrinet`);
* **hierarchical & fixed-point composition**, parametric uncertainty
  propagation and sensitivity analysis (:mod:`repro.core`);
* **Monte Carlo simulation** for cross-validation (:mod:`repro.sim`);
* the tutorial's **industrial case studies** — IBM BladeCenter, Cisco
  GSR 12000, Sun carrier-grade platform, Boeing-scale bounded fault
  trees, IBM SIP/WebSphere, software rejuvenation, workstations & file
  server (:mod:`repro.casestudies`).

Quickstart
----------
>>> from repro.nonstate import Component, ReliabilityBlockDiagram, parallel
>>> a = Component.from_mttf_mttr("a", mttf=1000.0, mttr=10.0)
>>> b = Component.from_mttf_mttr("b", mttf=1000.0, mttr=10.0)
>>> system = ReliabilityBlockDiagram(parallel(a, b))
>>> round(system.steady_state_availability(), 6)
0.999902
"""

from .core.fixedpoint import FixedPointResult, FixedPointSolver
from .core.hierarchy import (
    HierarchicalModel,
    HierarchySolution,
    Submodel,
    export_availability,
    export_equivalent_failure_rate,
    export_mttf,
    export_unavailability,
)
from .core.model import DependabilityModel
from .core.sensitivity import parametric_sensitivity, rank_parameters
from .core.uncertainty import propagate_uncertainty, tornado_sensitivity
from .engine import (
    EngineStats,
    EvaluationCache,
    GridCampaign,
    ProcessExecutor,
    ProgressPrinter,
    SamplingCampaign,
    SerialExecutor,
    SwingCampaign,
    ThreadExecutor,
    evaluate_batch,
    run_campaign,
)
from .exceptions import (
    ConvergenceError,
    DistributionError,
    HierarchyError,
    ModelDefinitionError,
    ReproError,
    SolverError,
    StateSpaceError,
)
from .markov.ctmc import CTMC, MarkovDependabilityModel
from .markov.dtmc import DTMC
from .markov.fallback import SolverReport, solve_steady_state
from .markov.mrgp import MarkovRegenerativeProcess
from .markov.mrm import MarkovRewardModel
from .markov.smp import SemiMarkovProcess
from .nonstate.components import Component
from .nonstate.faulttree import AndGate, BasicEvent, FaultTree, KofNGate, NotGate, OrGate
from .nonstate.rbd import KofN, Parallel, ReliabilityBlockDiagram, Series, k_of_n, parallel, series
from .nonstate.relgraph import ReliabilityGraph
from .petrinet.net import PetriNet
from .petrinet.srn import SRNDependabilityModel, StochasticRewardNet
from .robust import ErrorRecord, FaultInjector, FaultPolicy, FaultReport

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # protocol & composition
    "DependabilityModel",
    "HierarchicalModel",
    "HierarchySolution",
    "Submodel",
    "export_availability",
    "export_unavailability",
    "export_mttf",
    "export_equivalent_failure_rate",
    "FixedPointSolver",
    "FixedPointResult",
    "propagate_uncertainty",
    "tornado_sensitivity",
    "parametric_sensitivity",
    "rank_parameters",
    # batch-evaluation engine
    "evaluate_batch",
    "EvaluationCache",
    "EngineStats",
    "ProgressPrinter",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "GridCampaign",
    "SwingCampaign",
    "SamplingCampaign",
    "run_campaign",
    # robustness
    "FaultPolicy",
    "FaultReport",
    "ErrorRecord",
    "FaultInjector",
    "solve_steady_state",
    "SolverReport",
    # non-state-space
    "Component",
    "ReliabilityBlockDiagram",
    "Series",
    "Parallel",
    "KofN",
    "series",
    "parallel",
    "k_of_n",
    "FaultTree",
    "BasicEvent",
    "AndGate",
    "OrGate",
    "KofNGate",
    "NotGate",
    "ReliabilityGraph",
    # state-space
    "CTMC",
    "DTMC",
    "MarkovDependabilityModel",
    "MarkovRewardModel",
    "SemiMarkovProcess",
    "MarkovRegenerativeProcess",
    # Petri nets
    "PetriNet",
    "StochasticRewardNet",
    "SRNDependabilityModel",
    # exceptions
    "ReproError",
    "ModelDefinitionError",
    "SolverError",
    "ConvergenceError",
    "StateSpaceError",
    "DistributionError",
    "HierarchyError",
]
