"""Deterministic fault injection for evaluators and solvers.

Dependability toolchains treat fault injection as a first-class
activity: a degradation path that has never been exercised is assumed
broken.  This module wraps any evaluator in a *seeded, deterministic*
fault program so the engine's :class:`~repro.robust.policy.FaultPolicy`
paths — skip, retry, timeout, broken-pool recovery — can be tested and
benchmarked with reproducible campaigns.

Two wrappers:

* :class:`FaultInjector` — wraps a batch evaluator.  Which assignments
  fault is decided either by an explicit call-number set (``fail_calls``,
  the classic raise-on-k-th-call program) or by a seeded stable hash of
  the assignment itself (``rate`` + ``seed``) — the latter makes the
  fault set a pure function of the *inputs*, hence identical across
  serial, thread and process executors regardless of chunking.
* :class:`FailingCallable` — wraps any callable (typically a
  steady-state solver stage) to fail its first ``n_failures`` calls,
  the hook used to exercise :func:`repro.markov.fallback.solve_steady_state`
  fallback chains.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import os
import time
from typing import Callable, Dict, Iterable, Mapping, Optional, Set, Tuple

from ..exceptions import ReproError, SolverError

__all__ = ["InjectedFault", "FaultInjector", "FailingCallable"]

_MODES = ("raise", "nan", "slow", "crash", "kill")


class InjectedFault(ReproError):
    """Raised (or simulated) by the fault-injection harness, never by real code."""


def _freeze(assignment: Mapping[str, float]) -> Tuple[Tuple[str, float], ...]:
    return tuple(sorted((str(k), float(v)) for k, v in assignment.items()))


def _stable_uniform(key: Tuple, seed: int) -> float:
    """Deterministic u in [0, 1) from a frozen assignment and a seed.

    Uses BLAKE2 rather than ``hash()`` so the decision survives
    ``PYTHONHASHSEED`` randomization and process boundaries.
    """
    digest = hashlib.blake2b(
        repr((seed, key)).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64


class FaultInjector:
    """Wrap an evaluator with a deterministic, seeded fault program.

    Parameters
    ----------
    evaluate:
        The real evaluator ``assignment -> float`` (module-level and
        picklable if the wrapped evaluator is to cross process
        boundaries).
    mode:
        What an injected fault looks like:

        * ``"raise"`` — raise :class:`InjectedFault`;
        * ``"nan"`` — return ``float("nan")`` (exercises
          ``FaultPolicy(treat_nan_as_failure=True)``);
        * ``"slow"`` — sleep ``delay`` seconds before answering
          (exercises the policy timeout);
        * ``"crash"`` — kill the *worker process* with ``os._exit``
          (exercises broken-pool recovery).  In the main process —
          serial execution, threads, or the pool-recovery re-dispatch —
          a crash is downgraded to :class:`InjectedFault` so the harness
          never takes the caller down.
        * ``"kill"`` — ``SIGKILL`` the **current process**, whoever it
          is.  The end-to-end crash-recovery harness: a campaign worker
          subprocess wraps its evaluator in a ``kill`` injector, dies
          mid-chunk with no chance to flush or handle anything, and the
          parent asserts the resumed campaign is bit-identical (see
          ``python -m repro.store --selfcheck``).  Never use it in a
          process you are not prepared to lose.
    rate / seed:
        Hash-selected fault program: an assignment faults iff its
        seeded stable hash falls below ``rate``.  The fault set is a
        pure function of the assignment, so it is identical across
        executors, worker counts and chunk sizes.
    fail_calls:
        Alternative call-count program: the k-th call faults iff
        ``k in fail_calls`` (1-based).  Call counters are per process —
        with a process pool each worker counts its own calls — so this
        program is intended for serial/thread harness tests.
    fail_attempts:
        How many times a selected assignment faults before succeeding:
        ``1`` (default) models a transient fault recoverable by one
        retry; ``None`` models a persistent fault that never recovers.
        Attempt counters live per process, which matches the engine's
        retry loop (retries run in the same worker as the first try).
    delay:
        Sleep applied in ``"slow"`` mode.

    Examples
    --------
    >>> injector = FaultInjector(lambda p: p["x"], rate=1.0, fail_attempts=1)
    >>> try:
    ...     injector({"x": 2.0})
    ... except InjectedFault:
    ...     print("faulted once")
    faulted once
    >>> injector({"x": 2.0})  # same assignment, second attempt: recovered
    2.0
    """

    def __init__(
        self,
        evaluate: Callable[[Mapping[str, float]], float],
        mode: str = "raise",
        rate: float = 0.05,
        seed: int = 0,
        fail_calls: Optional[Iterable[int]] = None,
        fail_attempts: Optional[int] = 1,
        delay: float = 0.0,
    ):
        if mode not in _MODES:
            raise SolverError(f"unknown fault mode {mode!r}; use one of {_MODES}")
        if not 0.0 <= rate <= 1.0:
            raise SolverError(f"fault rate must be in [0, 1], got {rate}")
        if fail_attempts is not None and fail_attempts < 1:
            raise SolverError(f"fail_attempts must be >= 1 or None, got {fail_attempts}")
        if delay < 0.0:
            raise SolverError(f"delay must be >= 0, got {delay}")
        self.evaluate = evaluate
        self.mode = mode
        self.rate = float(rate)
        self.seed = int(seed)
        self.fail_calls: Optional[Set[int]] = (
            None if fail_calls is None else {int(k) for k in fail_calls}
        )
        self.fail_attempts = fail_attempts
        self.delay = float(delay)
        self.calls = 0
        self.faults_fired = 0
        self._attempts: Dict[Tuple, int] = {}

    # The per-process counters are diagnostics, not shared state; a
    # pickled copy starts fresh in its worker, which is exactly the
    # behaviour the engine's in-worker retry loop expects.
    def __getstate__(self):
        state = dict(self.__dict__)
        state["calls"] = 0
        state["faults_fired"] = 0
        state["_attempts"] = {}
        return state

    def selects(self, assignment: Mapping[str, float]) -> bool:
        """Whether the hash program marks this assignment as faulty."""
        return _stable_uniform(_freeze(assignment), self.seed) < self.rate

    def _should_fault(self, assignment: Mapping[str, float]) -> bool:
        if self.fail_calls is not None:
            return self.calls in self.fail_calls
        if not self.selects(assignment):
            return False
        if self.fail_attempts is None:
            return True
        attempts = self._attempts.get(_freeze(assignment), 0)
        return attempts <= self.fail_attempts

    def __call__(self, assignment: Mapping[str, float], rng=None) -> float:
        self.calls += 1
        key = _freeze(assignment)
        self._attempts[key] = self._attempts.get(key, 0) + 1
        if self._should_fault(assignment):
            self.faults_fired += 1
            if self.mode == "raise":
                raise InjectedFault(f"injected fault (call {self.calls})")
            if self.mode == "nan":
                return float("nan")
            if self.mode == "slow":
                time.sleep(self.delay)
            elif self.mode == "kill":
                import signal

                os.kill(os.getpid(), signal.SIGKILL)  # no cleanup, no goodbye
            elif self.mode == "crash":
                if multiprocessing.parent_process() is not None:
                    os._exit(17)  # kill the worker; breaks the process pool
                raise InjectedFault(
                    f"injected crash downgraded to an exception in the main "
                    f"process (call {self.calls})"
                )
        if rng is None:
            return float(self.evaluate(assignment))
        return float(self.evaluate(assignment, rng))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        program = (
            f"fail_calls={sorted(self.fail_calls)}"
            if self.fail_calls is not None
            else f"rate={self.rate}, seed={self.seed}"
        )
        return (
            f"FaultInjector(mode={self.mode!r}, {program}, "
            f"fail_attempts={self.fail_attempts}, {self.faults_fired}/{self.calls} faulted)"
        )


class FailingCallable:
    """Wrap any callable to fail its first ``n_failures`` calls.

    The solver-side injection hook: hand
    :func:`repro.markov.fallback.solve_steady_state` a stage wrapped in
    ``FailingCallable(gth_solve, n_failures=1)`` and the first-choice
    solver fails deterministically, forcing (and thereby testing) the
    fallback chain.

    Parameters
    ----------
    inner:
        The real callable.
    n_failures:
        How many leading calls fail (``None`` = every call).
    exception:
        Exception *class* to raise (default
        :class:`~repro.exceptions.SolverError`).
    corrupt:
        Instead of raising, return ``float("nan")``-corrupted output:
        the inner result with every entry replaced by NaN (requires the
        inner callable to return a NumPy array).  Exercises the NaN/Inf
        guards *between* fallback stages rather than the exception path.
    """

    def __init__(
        self,
        inner: Callable,
        n_failures: Optional[int] = 1,
        exception=SolverError,
        corrupt: bool = False,
    ):
        if n_failures is not None and n_failures < 0:
            raise SolverError(f"n_failures must be >= 0 or None, got {n_failures}")
        self.inner = inner
        self.n_failures = n_failures
        self.exception = exception
        self.corrupt = bool(corrupt)
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        failing = self.n_failures is None or self.calls <= self.n_failures
        if failing and not self.corrupt:
            raise self.exception(
                f"injected solver failure (call {self.calls}/{self.n_failures})"
            )
        result = self.inner(*args, **kwargs)
        if failing:
            import numpy as np

            return np.full_like(np.asarray(result, dtype=float), math.nan)
        return result
