"""Fault tolerance for the evaluation stack itself (E31).

The tutorial's premise is that dependability models must keep producing
answers under component faults; this package applies the same standard
to the *toolchain*.  Three pieces:

* :class:`FaultPolicy` — declarative error handling for batch
  evaluation: ``on_error="raise" | "skip" | "retry"``, bounded retries
  with deterministic jittered backoff, a per-evaluation soft wall-clock
  timeout, and broken-process-pool recovery.  Consumed by every
  :class:`~repro.engine.executors.Executor` backend and surfaced through
  :func:`~repro.engine.evaluate_batch`, uncertainty propagation,
  campaigns and sensitivity analysis.
* :class:`ErrorRecord` / :class:`FaultReport` — the structured account
  of what failed: exception type, message, attempt count and duration
  per task, plus batch-level retry and pool-recovery counters.
* :mod:`~repro.robust.faultinject` — a deterministic, seeded
  fault-injection harness (:class:`FaultInjector`,
  :class:`FailingCallable`) that wraps any evaluator or solver with
  programmable fault programs (raise-on-selected-calls, hash-selected
  raise/NaN/slow/worker-crash/process-kill), so every degradation path
  above is testable and benchmarkable rather than aspirational.
* :class:`GracefulShutdown` — the two-stage SIGTERM/SIGINT contract
  shared by ``python -m repro.serve`` and the :mod:`repro.store`
  campaign worker: first signal drains in-flight work and exits 0,
  second signal force-exits.

The solver-side counterpart — generator pre-checks and the
GTH → sparse-direct → power fallback chain with a structured
:class:`~repro.markov.fallback.SolverReport` — lives in
:mod:`repro.markov.fallback`.
"""

from .faultinject import FailingCallable, FaultInjector, InjectedFault
from .policy import ErrorRecord, FaultPolicy, FaultReport
from .shutdown import GracefulShutdown

__all__ = [
    "FaultPolicy",
    "ErrorRecord",
    "FaultReport",
    "FaultInjector",
    "FailingCallable",
    "InjectedFault",
    "GracefulShutdown",
]
