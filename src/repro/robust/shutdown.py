"""Two-stage signal handling for long-running processes.

Both daemons this library ships — ``python -m repro.serve`` and the
``python -m repro.store resume`` campaign worker — want the same
shutdown contract:

* the **first** ``SIGTERM``/``SIGINT`` asks nicely: finish the work in
  flight (the current request, the claimed chunk), flush durable state,
  exit 0;
* the **second** signal means *now*: ``os._exit`` immediately, because
  an operator pressing Ctrl-C twice has already decided.

:class:`GracefulShutdown` packages that contract as a context manager.
The handler itself only flips a flag (and optionally fires a callback);
the drain logic stays in the caller's main loop, which polls
``shutdown.requested`` — or passes the instance directly as a
``should_stop`` callable, which is exactly the hook
:meth:`repro.store.ResumableCampaign.run` exposes.

Examples
--------
>>> shutdown = GracefulShutdown(signals=())   # no handlers: plain flag
>>> bool(shutdown)
False
>>> shutdown.request()
>>> shutdown.requested, bool(shutdown), shutdown()
(True, True, True)
"""

from __future__ import annotations

import os
import signal
import threading
from typing import Callable, Iterable, Optional

__all__ = ["GracefulShutdown"]


class GracefulShutdown:
    """Trap SIGTERM/SIGINT once to drain, force-exit on the second.

    Parameters
    ----------
    signals:
        Signal numbers to trap (default ``SIGTERM`` and ``SIGINT``).
        Pass ``()`` for a handler-free flag (tests, worker threads).
    on_first:
        Optional zero-argument callback fired from the handler on the
        first signal — runs in signal-handler context, so it must be
        quick and reentrant; spawning a drain thread is the usual move.
    force_exit_code:
        Process exit status used by the second-signal ``os._exit``.

    Notes
    -----
    Installing is only possible from the main thread (a CPython signal
    rule); ``install=False`` plus :meth:`request` gives worker threads
    the same polling surface without handlers.
    """

    def __init__(
        self,
        signals: Optional[Iterable[int]] = None,
        on_first: Optional[Callable[[], None]] = None,
        force_exit_code: int = 130,
    ):
        self.signals = (
            (signal.SIGTERM, signal.SIGINT) if signals is None else tuple(signals)
        )
        self.on_first = on_first
        self.force_exit_code = int(force_exit_code)
        self._event = threading.Event()
        self._previous: dict = {}
        self._installed = False

    # ------------------------------------------------------------- state
    @property
    def requested(self) -> bool:
        """True once the first signal (or :meth:`request`) arrived."""
        return self._event.is_set()

    def __bool__(self) -> bool:
        return self.requested

    def __call__(self) -> bool:
        """The instance doubles as a ``should_stop()`` callable."""
        return self.requested

    def request(self) -> None:
        """Programmatic first-signal: flip the flag, fire the callback."""
        first = not self._event.is_set()
        self._event.set()
        if first and self.on_first is not None:
            self.on_first()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until shutdown is requested (or the timeout elapses)."""
        return self._event.wait(timeout)

    # ----------------------------------------------------------- handler
    def _handle(self, signum, frame) -> None:
        if self._event.is_set():
            os._exit(self.force_exit_code)  # second signal: no more patience
        self.request()

    def install(self) -> "GracefulShutdown":
        """Install the handlers (idempotent; main thread only)."""
        if not self._installed:
            for signum in self.signals:
                self._previous[signum] = signal.signal(signum, self._handle)
            self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore the previous handlers (idempotent)."""
        if self._installed:
            for signum, previous in self._previous.items():
                signal.signal(signum, previous)
            self._previous.clear()
            self._installed = False

    def __enter__(self) -> "GracefulShutdown":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "requested" if self.requested else "armed"
        return f"GracefulShutdown({state}, installed={self._installed})"
