"""Fault policies and error records for batch evaluation.

One poisoned parameter point must not kill a 100k-point campaign.  A
:class:`FaultPolicy` tells the engine what to do when an evaluation
raises, hangs past its time budget, or takes a worker process down with
it; :class:`ErrorRecord` and :class:`FaultReport` carry the structured
account of what happened back to the caller.

This module deliberately depends on nothing but the exception hierarchy,
so the engine, the solvers and the simulators can all consume it without
import cycles.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional

from ..exceptions import ModelDefinitionError

__all__ = ["FaultPolicy", "ErrorRecord", "FaultReport"]

_ON_ERROR = ("raise", "skip", "retry")


@dataclass(frozen=True)
class ErrorRecord:
    """One task's terminal failure inside a batch.

    Attributes
    ----------
    index:
        Position of the failed task in the batch's input order.
    error_type:
        Exception class name (``"SolverError"``, ``"EvaluationTimeout"``,
        ...).
    message:
        The exception's string form.
    attempts:
        Total evaluation attempts spent on the task (1 without retries).
    duration:
        Wall-clock seconds of the final, failing attempt.
    """

    index: int
    error_type: str
    message: str
    attempts: int = 1
    duration: float = 0.0

    def with_index(self, index: int) -> "ErrorRecord":
        """Copy of the record re-addressed to another task index."""
        return replace(self, index=int(index))

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict form (:class:`~repro.obs.Observation`)."""
        return asdict(self)

    def summary(self) -> Dict[str, float]:
        """Flat numeric digest of the failure."""
        return {
            "index": float(self.index),
            "attempts": float(self.attempts),
            "duration_s": float(self.duration),
        }

    def __str__(self) -> str:
        return (
            f"task {self.index}: {self.error_type}: {self.message} "
            f"({self.attempts} attempt{'s' if self.attempts != 1 else ''})"
        )


@dataclass
class FaultReport:
    """Batch-level fault bookkeeping returned by :meth:`Executor.run`.

    Attributes
    ----------
    errors:
        Terminal :class:`ErrorRecord` per failed task (empty on a clean
        batch), ordered by task index.
    n_retries:
        Total extra attempts spent across the batch (successful
        recoveries included).
    pool_recoveries:
        Number of broken-pool incidents survived by re-dispatching the
        unfinished chunks serially in the calling process.
    """

    errors: List[ErrorRecord] = field(default_factory=list)
    n_retries: int = 0
    pool_recoveries: int = 0

    @property
    def n_failed(self) -> int:
        """Number of tasks that exhausted the policy and failed."""
        return len(self.errors)

    def record(self, error: Optional[ErrorRecord], attempts: int) -> None:
        """Fold one task outcome into the report."""
        self.n_retries += max(0, int(attempts) - 1)
        if error is not None:
            self.errors.append(error)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict form (:class:`~repro.obs.Observation`)."""
        return {
            "errors": [e.to_dict() for e in self.errors],
            "n_retries": self.n_retries,
            "pool_recoveries": self.pool_recoveries,
        }

    def summary(self) -> Dict[str, float]:
        """Flat numeric digest of the batch's fault bookkeeping."""
        return {
            "n_failed": float(self.n_failed),
            "n_retries": float(self.n_retries),
            "pool_recoveries": float(self.pool_recoveries),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultReport({self.n_failed} failed, {self.n_retries} retries, "
            f"{self.pool_recoveries} pool recoveries)"
        )


@dataclass(frozen=True)
class FaultPolicy:
    """Declarative error handling for one batch evaluation.

    Parameters
    ----------
    on_error:
        * ``"raise"`` — fail fast: the first evaluation error aborts the
          batch and propagates (the engine's historical behaviour, and
          what ``policy=None`` means);
        * ``"skip"`` — record an :class:`ErrorRecord`, emit ``NaN`` for
          the failed task, keep going;
        * ``"retry"`` — re-attempt the task up to ``max_retries`` times
          with deterministic jittered exponential backoff, then skip.
    max_retries:
        Extra attempts per task under ``"retry"`` (the task runs at most
        ``1 + max_retries`` times).
    backoff:
        Base delay in seconds before retry ``k`` (scaled by
        ``2**(k-1)``).  The default 0.0 retries immediately — right for
        deterministic in-process faults; set a positive value when the
        evaluator contends for an external resource.
    backoff_jitter:
        Fraction of the delay added as *deterministic* jitter derived
        from ``(task index, attempt)``, so two retrying tasks do not
        thunder in lock-step yet a rerun of the batch sleeps identically.
    timeout:
        Soft per-evaluation wall-clock budget in seconds.  A running
        Python frame cannot be safely interrupted, so the evaluation is
        not killed; a task whose attempt exceeds the budget is treated
        as failed with :class:`~repro.exceptions.EvaluationTimeout` and
        handled per ``on_error``.  ``None`` disables the check.
    treat_nan_as_failure:
        When true, a non-finite return value is converted into a
        failure (and retried under ``"retry"``) instead of flowing into
        the outputs silently.
    recover_broken_pool:
        When a worker process dies mid-batch (segfault, ``os._exit``,
        OOM kill) the process pool breaks.  With this flag (default) the
        engine re-dispatches every unfinished chunk serially in the
        calling process and counts a pool recovery; without it the
        breakage propagates as a :class:`~repro.exceptions.SolverError`.

    Examples
    --------
    >>> policy = FaultPolicy(on_error="retry", max_retries=2)
    >>> policy.max_attempts
    3
    >>> FaultPolicy(on_error="skip").retry_delay(7, 1)
    0.0
    """

    on_error: str = "raise"
    max_retries: int = 2
    backoff: float = 0.0
    backoff_jitter: float = 0.1
    timeout: Optional[float] = None
    treat_nan_as_failure: bool = False
    recover_broken_pool: bool = True

    def __post_init__(self):
        if self.on_error not in _ON_ERROR:
            raise ModelDefinitionError(
                f"on_error must be one of {_ON_ERROR}, got {self.on_error!r}"
            )
        if self.max_retries < 0:
            raise ModelDefinitionError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 0.0:
            raise ModelDefinitionError(f"backoff must be >= 0, got {self.backoff}")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ModelDefinitionError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )
        if self.timeout is not None and self.timeout <= 0.0:
            raise ModelDefinitionError(f"timeout must be positive, got {self.timeout}")

    @property
    def max_attempts(self) -> int:
        """Total attempts a task may consume (1 unless retrying)."""
        return 1 + (self.max_retries if self.on_error == "retry" else 0)

    def should_retry(self, attempts: int) -> bool:
        """Whether a task that has failed ``attempts`` times gets another."""
        return self.on_error == "retry" and attempts < self.max_attempts

    def retry_delay(self, index: int, attempts: int) -> float:
        """Backoff before the next attempt, deterministic in (index, attempts).

        ``backoff * 2**(attempts-1) * (1 + backoff_jitter * u)`` with
        ``u`` in ``[0, 1)`` drawn from a fixed integer hash — the same
        task retries after the same delay on every rerun, on every
        executor.
        """
        if self.backoff <= 0.0:
            return 0.0
        # Knuth-style multiplicative hash; cheap, stable across processes.
        mixed = (int(index) * 2654435761 + int(attempts) * 40503 + 12345) % (2**32)
        u = mixed / 2.0**32
        return self.backoff * 2.0 ** (attempts - 1) * (1.0 + self.backoff_jitter * u)
