"""Monte Carlo simulation of structural (non-state-space) models.

Independent validation path for RBDs, fault trees and reliability graphs:
sample component lifetimes (and repair cycles), replay the structure
function, and estimate the same measures the analytic engines compute.
Used by benchmark E22 and by the property tests as an oracle of last
resort.

All three estimators accept ``n_jobs``: with ``n_jobs > 1`` the trials
are split into fixed-size chunks, each chunk gets its own child
generator spawned deterministically from the caller's ``rng``
(:func:`repro.engine.spawn_generators`), and the chunks run on a
process pool (:func:`repro.engine.parallel_starmap`).  Because the
chunk partition does not depend on the worker count, a given seed
produces identical estimates for every ``n_jobs > 1``; the serial path
(``n_jobs=1``) keeps the library's historical single-stream draw order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..engine.executors import parallel_starmap, spawn_generators
from ..exceptions import ModelDefinitionError
from ..obs.trace import get_tracer, record_span
from ..nonstate.components import Component
from ..nonstate.faulttree import FaultTree
from ..nonstate.rbd import ReliabilityBlockDiagram
from ..nonstate.relgraph import ReliabilityGraph
from .estimators import Estimate, estimate_mean, estimate_proportion

__all__ = [
    "simulate_reliability",
    "simulate_mttf",
    "simulate_steady_availability",
]

StructuralModel = Union[FaultTree, ReliabilityBlockDiagram, ReliabilityGraph]

#: Trials per dispatched chunk when ``n_jobs > 1`` — fixed (independent
#: of the worker count) so results only depend on the seed.
_TRIAL_CHUNK = 512
#: Replications per chunk for the availability estimator.
_REPLICATION_CHUNK = 8


def _adapter(model: StructuralModel) -> Tuple[Dict[str, Component], Callable[[Mapping[str, bool]], bool]]:
    """(components, is_up(failed_map)) for any structural model."""
    if isinstance(model, FaultTree):
        components = {name: ev.component for name, ev in model.basic_events.items()}
        manager, node = model._ensure_bdd()

        def is_up(failed: Mapping[str, bool]) -> bool:
            return not manager.evaluate(node, failed)

        return components, is_up
    if isinstance(model, ReliabilityBlockDiagram):
        components = model.components
        manager, node = model._ensure_bdd()

        def is_up(failed: Mapping[str, bool]) -> bool:
            return manager.evaluate(node, {k: not v for k, v in failed.items()})

        return components, is_up
    if isinstance(model, ReliabilityGraph):
        components = model.components
        manager, node = model._ensure_bdd()

        def is_up(failed: Mapping[str, bool]) -> bool:
            return manager.evaluate(node, {k: not v for k, v in failed.items()})

        return components, is_up
    raise ModelDefinitionError(f"unsupported structural model: {type(model).__name__}")


def _require_lifetimes(components: Dict[str, Component]) -> None:
    fixed = [name for name, c in components.items() if c.failure is None]
    if fixed:
        raise ModelDefinitionError(
            f"components without lifetime distributions cannot be simulated in time: {fixed}"
        )


def _chunk_sizes(total: int, chunk: int) -> List[int]:
    sizes = [chunk] * (total // chunk)
    if total % chunk:
        sizes.append(total % chunk)
    return sizes


def _reliability_chunk(model: StructuralModel, t: float, n: int, rng: np.random.Generator) -> int:
    """Up-count over ``n`` trials (module-level: pickles for the pool)."""
    components, is_up = _adapter(model)
    names = list(components)
    lifetimes = {
        name: np.asarray(components[name].failure.sample(rng, size=n)) for name in names
    }
    up_count = 0
    for k in range(n):
        failed = {name: bool(lifetimes[name][k] <= t) for name in names}
        if is_up(failed):
            up_count += 1
    return up_count


def _mttf_chunk(model: StructuralModel, n: int, rng: np.random.Generator) -> np.ndarray:
    """System failure times over ``n`` trials."""
    components, is_up = _adapter(model)
    names = list(components)
    samples = np.empty(n)
    lifetimes = {
        name: np.asarray(components[name].failure.sample(rng, size=n)) for name in names
    }
    for k in range(n):
        order = sorted(names, key=lambda name: lifetimes[name][k])
        failed = {name: False for name in names}
        system_failure = float("inf")
        for name in order:
            failed[name] = True
            if not is_up(failed):
                system_failure = float(lifetimes[name][k])
                break
        samples[k] = system_failure
    return samples


def _availability_chunk(
    model: StructuralModel,
    horizon: float,
    warmup: float,
    n_replications: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-replication up fractions over ``[warmup, horizon]``."""
    components, is_up = _adapter(model)
    names = list(components)
    fractions = np.empty(n_replications)

    for rep in range(n_replications):
        # Per-component alternating renewal event streams.
        events = []  # (time, name, new_failed_state)
        for name in names:
            comp = components[name]
            t = 0.0
            failed = False
            while t < horizon:
                if not failed:
                    t += float(comp.failure.sample(rng))
                    if t < horizon:
                        events.append((t, name, True))
                else:
                    t += float(comp.repair.sample(rng))
                    if t < horizon:
                        events.append((t, name, False))
                failed = not failed
        events.sort(key=lambda e: e[0])
        failed_map = {name: False for name in names}
        up_time = 0.0
        current = warmup
        system_up = True
        # Replay events; accumulate up time after warmup.
        for time, name, new_state in events:
            if time > warmup:
                if system_up:
                    up_time += min(time, horizon) - current
                current = min(time, horizon)
            failed_map[name] = new_state
            system_up = is_up(failed_map)
            if time >= horizon:
                break
        if system_up:
            up_time += horizon - current
        fractions[rep] = up_time / (horizon - warmup)
    return fractions


def _fan_out(worker, model, extra_args, total: int, chunk: int, rng, n_jobs: int):
    """Run ``worker(model, *extra_args, size, rng_k)`` over deterministic
    trial chunks on a process pool; results in chunk order."""
    sizes = _chunk_sizes(total, chunk)
    rngs = spawn_generators(rng, len(sizes))
    tracer = get_tracer()
    if tracer.enabled:
        # Same envelope trick as the engine executors: each chunk runs
        # under a worker-local recorder tracer whose span dict is
        # grafted back in chunk order, so the trace is identical for
        # every n_jobs.
        tasks = [
            (
                worker,
                (model, *extra_args, size, rngs[k]),
                None,
                "sim.trial_chunk",
                {"index": k, "trials": size},
            )
            for k, size in enumerate(sizes)
        ]
        outcomes = parallel_starmap(record_span, tasks, n_jobs)
        results = []
        for result, span_dict in outcomes:
            results.append(result)
            tracer.graft(span_dict)
        return results
    tasks = [(model, *extra_args, size, rngs[k]) for k, size in enumerate(sizes)]
    return parallel_starmap(worker, tasks, n_jobs)


def simulate_reliability(
    model: StructuralModel,
    t: float,
    n_samples: int = 10_000,
    rng: Optional[np.random.Generator] = None,
    n_jobs: int = 1,
) -> Estimate:
    """Estimate mission reliability at time ``t`` by direct sampling.

    ``n_jobs > 1`` distributes trial chunks over a process pool; the
    model must pickle (all library structural models do).
    """
    rng = rng if rng is not None else np.random.default_rng()
    components, _ = _adapter(model)
    _require_lifetimes(components)
    with get_tracer().span(
        "sim.reliability", n_samples=int(n_samples), n_jobs=int(n_jobs), t=float(t)
    ):
        if n_jobs == 1:
            with get_tracer().span("sim.trial_chunk", index=0, trials=int(n_samples)):
                up_count = _reliability_chunk(model, t, n_samples, rng)
        else:
            up_count = sum(
                _fan_out(_reliability_chunk, model, (t,), n_samples, _TRIAL_CHUNK, rng, n_jobs)
            )
    return estimate_proportion(up_count, n_samples)


def simulate_mttf(
    model: StructuralModel,
    n_samples: int = 10_000,
    rng: Optional[np.random.Generator] = None,
    n_jobs: int = 1,
) -> Estimate:
    """Estimate the system MTTF by replaying failures in time order.

    Valid for coherent structures: as components fail one by one the
    system can only go down, so the system failure time is the first
    prefix of failures that downs it.  ``n_jobs > 1`` distributes trial
    chunks over a process pool.
    """
    rng = rng if rng is not None else np.random.default_rng()
    components, _ = _adapter(model)
    _require_lifetimes(components)
    with get_tracer().span("sim.mttf", n_samples=int(n_samples), n_jobs=int(n_jobs)):
        if n_jobs == 1:
            with get_tracer().span("sim.trial_chunk", index=0, trials=int(n_samples)):
                samples = _mttf_chunk(model, n_samples, rng)
        else:
            samples = np.concatenate(
                _fan_out(_mttf_chunk, model, (), n_samples, _TRIAL_CHUNK, rng, n_jobs)
            )
    if np.any(~np.isfinite(samples)):
        raise ModelDefinitionError(
            "system never failed in some replications; the structure has no cut set"
        )
    return estimate_mean(samples)


def simulate_steady_availability(
    model: StructuralModel,
    horizon: float,
    n_replications: int = 64,
    warmup_fraction: float = 0.1,
    rng: Optional[np.random.Generator] = None,
    n_jobs: int = 1,
) -> Estimate:
    """Estimate steady-state availability by alternating-renewal replay.

    Each component alternates lifetime/repair draws independently; the
    system up fraction over ``[warmup, horizon]`` per replication is the
    sample.  Components must have both failure and repair distributions.
    ``n_jobs > 1`` distributes replication chunks over a process pool.
    """
    rng = rng if rng is not None else np.random.default_rng()
    components, _ = _adapter(model)
    _require_lifetimes(components)
    missing_repair = [n for n, c in components.items() if c.repair is None]
    if missing_repair:
        raise ModelDefinitionError(
            f"availability simulation needs repair distributions for: {missing_repair}"
        )
    warmup = horizon * float(warmup_fraction)
    with get_tracer().span(
        "sim.availability",
        n_replications=int(n_replications),
        n_jobs=int(n_jobs),
        horizon=float(horizon),
    ):
        if n_jobs == 1:
            with get_tracer().span(
                "sim.trial_chunk", index=0, trials=int(n_replications)
            ):
                fractions = _availability_chunk(model, horizon, warmup, n_replications, rng)
        else:
            fractions = np.concatenate(
                _fan_out(
                    _availability_chunk,
                    model,
                    (horizon, warmup),
                    n_replications,
                    _REPLICATION_CHUNK,
                    rng,
                    n_jobs,
                )
            )
    return estimate_mean(fractions)
