"""Monte Carlo simulation of structural (non-state-space) models.

Independent validation path for RBDs, fault trees and reliability graphs:
sample component lifetimes (and repair cycles), replay the structure
function, and estimate the same measures the analytic engines compute.
Used by benchmark E22 and by the property tests as an oracle of last
resort.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from ..exceptions import ModelDefinitionError
from ..nonstate.components import Component
from ..nonstate.faulttree import FaultTree
from ..nonstate.rbd import ReliabilityBlockDiagram
from ..nonstate.relgraph import ReliabilityGraph
from .estimators import Estimate, estimate_mean, estimate_proportion

__all__ = [
    "simulate_reliability",
    "simulate_mttf",
    "simulate_steady_availability",
]

StructuralModel = Union[FaultTree, ReliabilityBlockDiagram, ReliabilityGraph]


def _adapter(model: StructuralModel) -> Tuple[Dict[str, Component], Callable[[Mapping[str, bool]], bool]]:
    """(components, is_up(failed_map)) for any structural model."""
    if isinstance(model, FaultTree):
        components = {name: ev.component for name, ev in model.basic_events.items()}
        manager, node = model._ensure_bdd()

        def is_up(failed: Mapping[str, bool]) -> bool:
            return not manager.evaluate(node, failed)

        return components, is_up
    if isinstance(model, ReliabilityBlockDiagram):
        components = model.components
        manager, node = model._ensure_bdd()

        def is_up(failed: Mapping[str, bool]) -> bool:
            return manager.evaluate(node, {k: not v for k, v in failed.items()})

        return components, is_up
    if isinstance(model, ReliabilityGraph):
        components = model.components
        manager, node = model._ensure_bdd()

        def is_up(failed: Mapping[str, bool]) -> bool:
            return manager.evaluate(node, {k: not v for k, v in failed.items()})

        return components, is_up
    raise ModelDefinitionError(f"unsupported structural model: {type(model).__name__}")


def _require_lifetimes(components: Dict[str, Component]) -> None:
    fixed = [name for name, c in components.items() if c.failure is None]
    if fixed:
        raise ModelDefinitionError(
            f"components without lifetime distributions cannot be simulated in time: {fixed}"
        )


def simulate_reliability(
    model: StructuralModel,
    t: float,
    n_samples: int = 10_000,
    rng: Optional[np.random.Generator] = None,
) -> Estimate:
    """Estimate mission reliability at time ``t`` by direct sampling."""
    rng = rng if rng is not None else np.random.default_rng()
    components, is_up = _adapter(model)
    _require_lifetimes(components)
    names = list(components)
    lifetimes = {
        name: np.asarray(components[name].failure.sample(rng, size=n_samples))
        for name in names
    }
    up_count = 0
    for k in range(n_samples):
        failed = {name: bool(lifetimes[name][k] <= t) for name in names}
        if is_up(failed):
            up_count += 1
    return estimate_proportion(up_count, n_samples)


def simulate_mttf(
    model: StructuralModel,
    n_samples: int = 10_000,
    rng: Optional[np.random.Generator] = None,
) -> Estimate:
    """Estimate the system MTTF by replaying failures in time order.

    Valid for coherent structures: as components fail one by one the
    system can only go down, so the system failure time is the first
    prefix of failures that downs it.
    """
    rng = rng if rng is not None else np.random.default_rng()
    components, is_up = _adapter(model)
    _require_lifetimes(components)
    names = list(components)
    samples = np.empty(n_samples)
    lifetimes = {
        name: np.asarray(components[name].failure.sample(rng, size=n_samples))
        for name in names
    }
    for k in range(n_samples):
        order = sorted(names, key=lambda name: lifetimes[name][k])
        failed = {name: False for name in names}
        system_failure = float("inf")
        for name in order:
            failed[name] = True
            if not is_up(failed):
                system_failure = float(lifetimes[name][k])
                break
        samples[k] = system_failure
    if np.any(~np.isfinite(samples)):
        raise ModelDefinitionError(
            "system never failed in some replications; the structure has no cut set"
        )
    return estimate_mean(samples)


def simulate_steady_availability(
    model: StructuralModel,
    horizon: float,
    n_replications: int = 64,
    warmup_fraction: float = 0.1,
    rng: Optional[np.random.Generator] = None,
) -> Estimate:
    """Estimate steady-state availability by alternating-renewal replay.

    Each component alternates lifetime/repair draws independently; the
    system up fraction over ``[warmup, horizon]`` per replication is the
    sample.  Components must have both failure and repair distributions.
    """
    rng = rng if rng is not None else np.random.default_rng()
    components, is_up = _adapter(model)
    _require_lifetimes(components)
    missing_repair = [n for n, c in components.items() if c.repair is None]
    if missing_repair:
        raise ModelDefinitionError(
            f"availability simulation needs repair distributions for: {missing_repair}"
        )
    names = list(components)
    warmup = horizon * float(warmup_fraction)
    fractions = np.empty(n_replications)

    for rep in range(n_replications):
        # Per-component alternating renewal event streams.
        events = []  # (time, name, new_failed_state)
        for name in names:
            comp = components[name]
            t = 0.0
            failed = False
            while t < horizon:
                if not failed:
                    t += float(comp.failure.sample(rng))
                    if t < horizon:
                        events.append((t, name, True))
                else:
                    t += float(comp.repair.sample(rng))
                    if t < horizon:
                        events.append((t, name, False))
                failed = not failed
        events.sort(key=lambda e: e[0])
        failed_map = {name: False for name in names}
        up_time = 0.0
        current = warmup
        system_up = True
        # Replay events; accumulate up time after warmup.
        for time, name, new_state in events:
            if time > warmup:
                if system_up:
                    up_time += min(time, horizon) - current
                current = min(time, horizon)
            failed_map[name] = new_state
            system_up = is_up(failed_map)
            if time >= horizon:
                break
        if system_up:
            up_time += horizon - current
        fractions[rep] = up_time / (horizon - warmup)
    return estimate_mean(fractions)
