"""Trajectory simulation of CTMCs.

The second half of the E22 cross-validation: simulate the chain the
solvers analyze and check that transient probabilities, steady-state
fractions and absorption times agree within confidence intervals.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..exceptions import ModelDefinitionError, StateSpaceError
from ..markov.ctmc import CTMC
from .estimators import Estimate, estimate_mean, estimate_proportion

__all__ = [
    "simulate_transient_probability",
    "simulate_steady_fraction",
    "simulate_time_to_absorption",
]

State = Hashable


def _outgoing(chain: CTMC) -> Dict[State, List[Tuple[State, float]]]:
    out: Dict[State, List[Tuple[State, float]]] = {s: [] for s in chain.states}
    for src in chain.states:
        for dst in chain.states:
            if src == dst:
                continue
            rate = chain.rate(src, dst)
            if rate > 0:
                out[src].append((dst, rate))
    return out


def _step(
    state: State,
    outgoing: Dict[State, List[Tuple[State, float]]],
    rng: np.random.Generator,
) -> Tuple[Optional[State], float]:
    """(next state or None if absorbing, holding time)."""
    moves = outgoing[state]
    if not moves:
        return None, float("inf")
    total = sum(rate for _, rate in moves)
    hold = rng.exponential(1.0 / total)
    u = rng.uniform() * total
    acc = 0.0
    for target, rate in moves:
        acc += rate
        if u <= acc:
            return target, hold
    return moves[-1][0], hold


def simulate_transient_probability(
    chain: CTMC,
    target_states,
    t: float,
    initial,
    n_samples: int = 10_000,
    rng: Optional[np.random.Generator] = None,
) -> Estimate:
    """Estimate ``P[X(t) ∈ target_states]`` by trajectory sampling."""
    rng = rng if rng is not None else np.random.default_rng()
    targets = set(target_states)
    outgoing = _outgoing(chain)
    hits = 0
    for _ in range(n_samples):
        state = initial
        clock = 0.0
        while True:
            nxt, hold = _step(state, outgoing, rng)
            if clock + hold > t or nxt is None:
                break
            clock += hold
            state = nxt
        if state in targets:
            hits += 1
    return estimate_proportion(hits, n_samples)


def simulate_steady_fraction(
    chain: CTMC,
    target_states,
    horizon: float,
    initial,
    n_replications: int = 32,
    warmup_fraction: float = 0.1,
    rng: Optional[np.random.Generator] = None,
) -> Estimate:
    """Estimate the long-run fraction of time in ``target_states``."""
    rng = rng if rng is not None else np.random.default_rng()
    targets = set(target_states)
    outgoing = _outgoing(chain)
    warmup = horizon * float(warmup_fraction)
    fractions = np.empty(n_replications)
    for rep in range(n_replications):
        state = initial
        clock = 0.0
        in_target = 0.0
        while clock < horizon:
            nxt, hold = _step(state, outgoing, rng)
            end = min(clock + hold, horizon)
            if end > warmup and state in targets:
                in_target += end - max(clock, warmup)
            clock = end
            if nxt is None:
                if state in targets and clock < horizon and horizon > warmup:
                    in_target += horizon - max(clock, warmup)
                break
            if clock < horizon:
                state = nxt
        fractions[rep] = in_target / (horizon - warmup)
    return estimate_mean(fractions)


def simulate_time_to_absorption(
    chain: CTMC,
    initial,
    n_samples: int = 10_000,
    rng: Optional[np.random.Generator] = None,
    absorbing=None,
) -> Estimate:
    """Estimate the mean time to absorption by trajectory sampling."""
    rng = rng if rng is not None else np.random.default_rng()
    target = set(absorbing) if absorbing is not None else set(chain.absorbing_states())
    if not target:
        raise StateSpaceError("chain has no absorbing states")
    outgoing = _outgoing(chain)
    times = np.empty(n_samples)
    for k in range(n_samples):
        state = initial
        clock = 0.0
        guard = 0
        while state not in target:
            nxt, hold = _step(state, outgoing, rng)
            if nxt is None:
                raise ModelDefinitionError(
                    f"trajectory stuck in non-target absorbing state {state!r}"
                )
            clock += hold
            state = nxt
            guard += 1
            if guard > 10_000_000:  # pragma: no cover - runaway guard
                raise StateSpaceError("trajectory exceeded 10^7 jumps without absorbing")
        times[k] = clock
    return estimate_mean(times)
