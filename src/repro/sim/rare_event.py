"""Rare-event simulation: importance sampling with failure biasing.

Highly available systems fail so rarely that naive simulation wastes
almost every replication — the classic motivation for *failure biasing*:
simulate under a distorted jump chain that makes failure transitions
likely, and correct each outcome by its likelihood ratio.  Combined with
the regenerative identity

    MTTF  =  E[cycle length] / P[cycle ends in system failure]

this estimates MTTFs of 10^9+ hours from thousands of short cycles.

The implementation works on the embedded jump chain (sojourn times do
not affect *which* absorbing set a cycle hits) and uses simple constant
failure biasing (Lewis & Böhm): at every state with both failure-ward
and repair-ward moves, the failure-ward moves jointly receive
probability ``bias``.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..exceptions import ModelDefinitionError, StateSpaceError
from ..markov.ctmc import CTMC
from .estimators import Estimate, estimate_mean

__all__ = ["simulate_cycle_failure_probability", "simulate_mttf_importance_sampling"]

State = Hashable
TransitionClassifier = Callable[[State, State], bool]


def _jump_data(chain: CTMC) -> Dict[State, List[Tuple[State, float]]]:
    out: Dict[State, List[Tuple[State, float]]] = {s: [] for s in chain.states}
    for src in chain.states:
        for dst in chain.states:
            if src != dst:
                rate = chain.rate(src, dst)
                if rate > 0:
                    out[src].append((dst, rate))
    return out


def simulate_cycle_failure_probability(
    chain: CTMC,
    start: State,
    failure_states,
    is_failure_transition: TransitionClassifier,
    bias: float = 0.5,
    n_cycles: int = 10_000,
    rng: Optional[np.random.Generator] = None,
    max_jumps: int = 100_000,
) -> Estimate:
    """IS estimate of ``P[cycle from `start` hits failure before returning]``.

    Parameters
    ----------
    chain:
        The availability CTMC (regenerative at ``start``).
    start:
        The regeneration state (e.g. "all components up").
    failure_states:
        System-failure states; reaching any of them ends the cycle as a
        failure.
    is_failure_transition:
        Classifier: True for failure-ward moves (these get boosted).
    bias:
        Total biased probability of the failure-ward moves in each state
        that has both kinds (0 < bias < 1); 0.5 is the standard choice.
    n_cycles:
        Number of simulated regenerative cycles.

    Returns
    -------
    An :class:`~repro.sim.estimators.Estimate` whose ``value`` is the
    (unbiased) importance-sampling estimate of the per-cycle failure
    probability.
    """
    if not 0.0 < bias < 1.0:
        raise ModelDefinitionError(f"bias must be in (0, 1), got {bias}")
    rng = rng if rng is not None else np.random.default_rng()
    failures = set(failure_states)
    if start in failures:
        raise ModelDefinitionError("the regeneration state cannot be a failure state")
    jumps = _jump_data(chain)
    if not jumps.get(start):
        raise StateSpaceError(f"start state {start!r} has no outgoing transitions")

    samples = np.empty(n_cycles)
    for k in range(n_cycles):
        state = start
        weight = 1.0
        result = 0.0
        for _ in range(max_jumps):
            moves = jumps[state]
            if not moves:
                raise StateSpaceError(
                    f"state {state!r} is absorbing but not a failure state"
                )
            total = sum(r for _s, r in moves)
            fail_moves = [(s, r) for s, r in moves if is_failure_transition(state, s)]
            other_moves = [(s, r) for s, r in moves if not is_failure_transition(state, s)]
            fail_rate = sum(r for _s, r in fail_moves)

            if fail_moves and other_moves:
                # Biased kernel: failure-ward set gets `bias` in total.
                if rng.uniform() < bias:
                    target = _pick(fail_moves, rng)
                    p_true = chain.rate(state, target) / total
                    p_sim = bias * chain.rate(state, target) / fail_rate
                else:
                    target = _pick(other_moves, rng)
                    p_true = chain.rate(state, target) / total
                    p_sim = (1.0 - bias) * chain.rate(state, target) / (total - fail_rate)
                weight *= p_true / p_sim
            else:
                target = _pick(moves, rng)

            state = target
            if state in failures:
                result = weight
                break
            if state == start:
                result = 0.0
                break
        else:  # pragma: no cover - runaway guard
            raise StateSpaceError(f"cycle exceeded {max_jumps} jumps")
        samples[k] = result
    return estimate_mean(samples)


def _pick(moves: List[Tuple[State, float]], rng: np.random.Generator) -> State:
    total = sum(r for _s, r in moves)
    u = rng.uniform() * total
    acc = 0.0
    for state, rate in moves:
        acc += rate
        if u <= acc:
            return state
    return moves[-1][0]


def simulate_mttf_importance_sampling(
    chain: CTMC,
    start: State,
    failure_states,
    is_failure_transition: TransitionClassifier,
    bias: float = 0.5,
    n_cycles: int = 10_000,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[float, Estimate, Estimate]:
    """MTTF via the regenerative identity with failure biasing.

    ``MTTF ≈ E[cycle length] / p`` where ``p`` is the per-cycle failure
    probability from :func:`simulate_cycle_failure_probability` and the
    expected cycle length is estimated under the *unbiased* dynamics
    (cheap: cycles are short).

    Returns
    -------
    ``(mttf_estimate, cycle_length_estimate, failure_probability_estimate)``.

    Notes
    -----
    Strictly, the regenerative formula uses the expected cycle length
    conditioned on no failure; for highly reliable systems (p << 1) the
    difference is O(p) and far below the sampling noise — the standard
    practical approximation.
    """
    rng = rng if rng is not None else np.random.default_rng()
    p_est = simulate_cycle_failure_probability(
        chain, start, failure_states, is_failure_transition,
        bias=bias, n_cycles=n_cycles, rng=rng,
    )
    if p_est.value <= 0.0:
        raise StateSpaceError("no failures observed even under biasing; raise bias")

    # Unbiased cycle-length estimate (failures contribute negligibly).
    jumps = _jump_data(chain)
    failures = set(failure_states)
    lengths = np.empty(min(n_cycles, 5000))
    for k in range(lengths.size):
        state = start
        clock = 0.0
        while True:
            moves = jumps[state]
            total = sum(r for _s, r in moves)
            clock += rng.exponential(1.0 / total)
            state = _pick(moves, rng)
            if state == start or state in failures:
                break
        lengths[k] = clock
    length_est = estimate_mean(lengths)
    mttf = length_est.value / p_est.value
    return mttf, length_est, p_est
