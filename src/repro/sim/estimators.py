"""Statistical estimators for simulation output.

Simulation answers come with sampling error; these helpers make that
error explicit — point estimate, standard error, confidence interval —
so the E22 cross-validation can assert "analytic result inside the
simulation CI" instead of comparing noisy point values.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np
from scipy import stats

from ..exceptions import SolverError

__all__ = ["Estimate", "estimate_mean", "estimate_proportion"]


class Estimate:
    """A point estimate with its sampling uncertainty.

    Attributes
    ----------
    value:
        The point estimate.
    std_error:
        Standard error of the estimate.
    n:
        Number of independent replications behind it.
    """

    def __init__(self, value: float, std_error: float, n: int):
        self.value = float(value)
        self.std_error = float(std_error)
        self.n = int(n)

    def interval(self, level: float = 0.95) -> Tuple[float, float]:
        """Normal-approximation confidence interval."""
        if not 0.0 < level < 1.0:
            raise SolverError(f"level must be in (0, 1), got {level}")
        half = stats.norm.ppf(0.5 + level / 2.0) * self.std_error
        return self.value - half, self.value + half

    def contains(self, truth: float, level: float = 0.95) -> bool:
        """True when ``truth`` lies inside the CI at ``level``."""
        low, high = self.interval(level)
        return low <= truth <= high

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        low, high = self.interval()
        return f"Estimate({self.value:.6g} ± [{low:.6g}, {high:.6g}], n={self.n})"


def estimate_mean(samples: Sequence[float]) -> Estimate:
    """Mean estimate from i.i.d. replications."""
    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        raise SolverError("need at least two replications")
    return Estimate(float(arr.mean()), float(arr.std(ddof=1)) / math.sqrt(arr.size), arr.size)


def estimate_proportion(successes: int, n: int) -> Estimate:
    """Bernoulli proportion estimate (Wald standard error)."""
    if n < 1:
        raise SolverError("need at least one trial")
    p = successes / n
    se = math.sqrt(max(p * (1.0 - p), 1e-12) / n)
    return Estimate(p, se, n)
