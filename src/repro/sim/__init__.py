"""Discrete-event Monte Carlo simulation (system S19 in DESIGN.md).

Independent validation substrate: structural (RBD/FT/relgraph) sampling,
CTMC trajectory simulation, and Petri-net token-game simulation, each
reporting estimates with confidence intervals via
:class:`~repro.sim.estimators.Estimate`.
"""

from .estimators import Estimate, estimate_mean, estimate_proportion
from .markov_sim import (
    simulate_steady_fraction,
    simulate_time_to_absorption,
    simulate_transient_probability,
)
from .rare_event import (
    simulate_cycle_failure_probability,
    simulate_mttf_importance_sampling,
)
from .spn_sim import simulate_reward_rate, simulate_transient_reward
from .structural import simulate_mttf, simulate_reliability, simulate_steady_availability

__all__ = [
    "Estimate",
    "estimate_mean",
    "estimate_proportion",
    "simulate_reliability",
    "simulate_mttf",
    "simulate_steady_availability",
    "simulate_transient_probability",
    "simulate_steady_fraction",
    "simulate_time_to_absorption",
    "simulate_reward_rate",
    "simulate_transient_reward",
    "simulate_cycle_failure_probability",
    "simulate_mttf_importance_sampling",
]
