"""Token-game simulation of stochastic Petri nets.

Plays the net directly — exponential races among enabled timed
transitions, weight-proportional choice among enabled immediates — with
no reachability graph, so it also works as a sanity check that the
analytic generation in :mod:`repro.petrinet.reachability` produced the
right chain.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..exceptions import StateSpaceError
from ..petrinet.net import Marking, PetriNet
from .estimators import Estimate, estimate_mean

__all__ = ["simulate_reward_rate", "simulate_transient_reward"]

RewardFunction = Callable[[Marking], float]

_MAX_IMMEDIATE_CHAIN = 10_000


def _fire_immediates(net: PetriNet, marking: Marking, rng: np.random.Generator) -> Marking:
    for _ in range(_MAX_IMMEDIATE_CHAIN):
        if not net.is_vanishing(marking):
            return marking
        enabled = net.enabled_transitions(marking)
        weights = np.array([t.weight_in(marking) for t in enabled])
        total = weights.sum()
        if total <= 0:
            raise StateSpaceError(f"zero total immediate weight in {marking!r}")
        choice = rng.choice(len(enabled), p=weights / total)
        marking = enabled[choice].fire(marking)
    raise StateSpaceError("immediate-transition chain exceeded 10000 firings (timeless trap?)")


def _advance(
    net: PetriNet, marking: Marking, rng: np.random.Generator
) -> "tuple[Optional[Marking], float]":
    """One tangible step: (next tangible marking or None if dead, holding time)."""
    enabled = net.enabled_transitions(marking)
    timed = [(t, t.rate_in(marking)) for t in enabled if not t.is_immediate]
    timed = [(t, r) for t, r in timed if r > 0]
    if not timed:
        return None, float("inf")
    total = sum(r for _, r in timed)
    hold = rng.exponential(1.0 / total)
    u = rng.uniform() * total
    acc = 0.0
    chosen = timed[-1][0]
    for transition, rate in timed:
        acc += rate
        if u <= acc:
            chosen = transition
            break
    successor = _fire_immediates(net, chosen.fire(marking), rng)
    return successor, hold


def simulate_reward_rate(
    net: PetriNet,
    reward: RewardFunction,
    horizon: float,
    n_replications: int = 32,
    warmup_fraction: float = 0.1,
    rng: Optional[np.random.Generator] = None,
) -> Estimate:
    """Estimate the steady-state expected reward rate by time averaging."""
    rng = rng if rng is not None else np.random.default_rng()
    warmup = horizon * float(warmup_fraction)
    samples = np.empty(n_replications)
    for rep in range(n_replications):
        marking = _fire_immediates(net, net.initial_marking(), rng)
        clock = 0.0
        accumulated = 0.0
        while clock < horizon:
            nxt, hold = _advance(net, marking, rng)
            end = min(clock + hold, horizon)
            if end > warmup:
                accumulated += reward(marking) * (end - max(clock, warmup))
            clock = end
            if nxt is None:
                if clock < horizon and horizon > warmup:
                    accumulated += reward(marking) * (horizon - max(clock, warmup))
                break
            marking = nxt
        samples[rep] = accumulated / (horizon - warmup)
    return estimate_mean(samples)


def simulate_transient_reward(
    net: PetriNet,
    reward: RewardFunction,
    t: float,
    n_samples: int = 10_000,
    rng: Optional[np.random.Generator] = None,
) -> Estimate:
    """Estimate the expected reward rate at time ``t`` by replication."""
    rng = rng if rng is not None else np.random.default_rng()
    values = np.empty(n_samples)
    for k in range(n_samples):
        marking = _fire_immediates(net, net.initial_marking(), rng)
        clock = 0.0
        while True:
            nxt, hold = _advance(net, marking, rng)
            if clock + hold > t or nxt is None:
                break
            clock += hold
            marking = nxt
        values[k] = reward(marking)
    return estimate_mean(values)
