"""Exporters for traces and metrics.

Three targets cover the practitioner workflows:

* :func:`format_trace` — a human terminal tree, the "where did the
  campaign spend its time" view;
* :meth:`Tracer.to_json <repro.obs.trace.Tracer.to_json>` — a
  machine-readable document (span tree + metrics) for archiving a run
  alongside its results;
* :func:`to_prometheus` — the Prometheus text exposition format, so a
  long-running service wrapping the library can expose its counters on
  a ``/metrics`` endpoint with zero extra dependencies.
"""

from __future__ import annotations

from typing import List, Optional, Union

from .metrics import MetricsRegistry, NullMetrics
from .trace import NullTracer, Span, Tracer

__all__ = ["format_trace", "to_prometheus"]

#: Attribute keys rendered inline next to the span name, in this order.
_INLINE_ATTRS = ("method", "kind", "executor", "spec", "index", "tasks", "n_states", "trials")


def _span_line(span: Span) -> str:
    inline = [
        f"{key}={span.attributes[key]}" for key in _INLINE_ATTRS if key in span.attributes
    ]
    if "error" in span.attributes:
        inline.append(f"error={span.attributes['error']!r}")
    detail = f" [{' '.join(inline)}]" if inline else ""
    return f"{span.name}{detail} ({1e3 * span.duration:.3g} ms)"


def format_trace(
    trace: Union[Tracer, NullTracer, Span],
    max_depth: Optional[int] = None,
) -> str:
    """Render a trace (or any span subtree) as an indented tree.

    Parameters
    ----------
    trace:
        A :class:`~repro.obs.Tracer` (its root is rendered) or a single
        :class:`~repro.obs.Span`.  The disabled tracer renders as
        ``"<no trace>"``.
    max_depth:
        Optional depth cutoff; deeper subtrees are summarized as
        ``"… (n spans)"`` so a 100k-point campaign stays readable.

    Examples
    --------
    >>> from repro.obs import trace, format_trace
    >>> with trace("sweep") as t:
    ...     with t.span("chunk", index=0, tasks=2):
    ...         pass
    >>> print(format_trace(t))  # doctest: +ELLIPSIS
    sweep (... ms)
    └─ chunk [index=0 tasks=2] (... ms)
    """
    if isinstance(trace, NullTracer):
        return "<no trace>"
    root = trace.root if isinstance(trace, Tracer) else trace
    lines: List[str] = [_span_line(root)]

    def walk(span: Span, prefix: str, depth: int) -> None:
        for i, child in enumerate(span.children):
            last = i == len(span.children) - 1
            branch = "└─ " if last else "├─ "
            if max_depth is not None and depth >= max_depth:
                hidden = sum(1 for _ in child.iter())
                lines.append(f"{prefix}{branch}… ({hidden} spans)")
                continue
            lines.append(f"{prefix}{branch}{_span_line(child)}")
            walk(child, prefix + ("   " if last else "│  "), depth + 1)

    walk(root, "", 1)
    return "\n".join(lines)


def _metric_name(name: str, prefix: str) -> str:
    sanitized = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{prefix}{sanitized}"


def _label_str(labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{{{inner}}}"


def _merge_labels(labels, extra_key: str, extra_value: str) -> str:
    merged = list(labels) + [(extra_key, extra_value)]
    return _label_str(merged)


def to_prometheus(
    metrics: Union[MetricsRegistry, NullMetrics, Tracer],
    prefix: str = "repro_",
) -> str:
    """Serialize a metrics registry in the Prometheus text format.

    Accepts a registry or a :class:`~repro.obs.Tracer` (its registry is
    used).  Metric names are sanitized (``engine.cache.hits`` →
    ``repro_engine_cache_hits``); histograms emit the conventional
    ``_bucket``/``_sum``/``_count`` series with cumulative ``le`` labels.

    Examples
    --------
    >>> from repro.obs import MetricsRegistry, to_prometheus
    >>> registry = MetricsRegistry()
    >>> registry.counter("engine.tasks").inc(3)
    >>> print(to_prometheus(registry))
    # TYPE repro_engine_tasks counter
    repro_engine_tasks 3
    """
    if isinstance(metrics, Tracer):
        metrics = metrics.metrics
    lines: List[str] = []
    typed: set = set()
    for instrument in metrics.instruments():
        name = _metric_name(instrument.name, prefix)
        if name not in typed:
            lines.append(f"# TYPE {name} {instrument.kind}")
            typed.add(name)
        if instrument.kind == "histogram":
            bounds = [f"{b:g}" for b in instrument.buckets] + ["+Inf"]
            for bound, count in zip(bounds, instrument.bucket_counts):
                labels = _merge_labels(instrument.labels, "le", bound)
                lines.append(f"{name}_bucket{labels} {count}")
            labels = _label_str(instrument.labels)
            lines.append(f"{name}_sum{labels} {instrument.sum:g}")
            lines.append(f"{name}_count{labels} {instrument.count}")
        else:
            labels = _label_str(instrument.labels)
            value = instrument.value
            text = f"{value:g}" if value != int(value) else f"{int(value)}"
            lines.append(f"{name}{labels} {text}")
    return "\n".join(lines)
