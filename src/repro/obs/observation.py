"""The :class:`Observation` protocol — the shared reporting contract.

PR 1 and PR 2 each grew an ad-hoc reporting surface
(:class:`~repro.engine.EngineStats`,
:class:`~repro.markov.fallback.SolverReport`,
:class:`~repro.robust.ErrorRecord`).  This protocol unifies them: an
*observation* is any object that can render itself as

* ``to_dict()`` — a JSON-safe nested dict, the archival form attached
  to trace spans (:meth:`repro.obs.Span.observe`);
* ``summary()`` — a flat ``name → float`` dict of headline numbers, the
  table-printing form.

The protocol is ``runtime_checkable``, so
``isinstance(stats, Observation)`` works for duck-typed reporters.
"""

from __future__ import annotations

from typing import Any, Dict, Protocol, runtime_checkable

__all__ = ["Observation"]


@runtime_checkable
class Observation(Protocol):
    """Structural interface of every reporting object in the library."""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe nested dict of everything the observation knows."""
        ...  # pragma: no cover - protocol

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline numbers (for table printing)."""
        ...  # pragma: no cover - protocol
