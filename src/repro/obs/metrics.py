"""Counters, gauges and timing histograms with Prometheus-style export.

A :class:`MetricsRegistry` is a flat namespace of named instruments,
optionally carrying label sets (``counter("solver.stage", method="gth")``).
Instruments are memoized by ``(name, labels)``, so instrumentation sites
just ask the registry every time — no instance threading.

The registry is deliberately zero-dependency: values live in plain
Python attributes, histograms use fixed logarithmic buckets (the
Prometheus convention), and the exporters
(:meth:`MetricsRegistry.to_dict` for JSON,
:func:`~repro.obs.export.to_prometheus` for the text exposition format)
do nothing more exotic than string formatting.

:data:`NULL_METRICS` is the no-op twin used by the disabled tracer:
every instrument it hands out swallows updates, so instrumented code
never needs an ``if metrics is not None`` guard.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ThreadSafeMetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets (seconds): 1 µs … 100 s, one per decade,
#: with an implicit +Inf bucket — wide enough for everything from a
#: cache hit to a long campaign.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(10.0 ** e for e in range(-6, 3))

LabelSet = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Mapping[str, Any]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, node count, ...)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram of observations (timings, sizes).

    ``buckets`` are upper bounds in increasing order; an implicit +Inf
    bucket catches the rest.  ``bucket_counts[i]`` is the number of
    observations ``<= buckets[i]`` — the cumulative convention the
    Prometheus text format expects.
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "count", "sum")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram buckets must be strictly increasing: {bounds}")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = overflow (+Inf)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[i] += 1
                return
        self._counts[-1] += 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations (e.g. a durations array)."""
        for value in values:
            self.observe(value)

    @property
    def bucket_counts(self) -> List[int]:
        """Cumulative counts per bucket bound, +Inf bucket last."""
        cumulative: List[int] = []
        running = 0
        for count in self._counts:
            running += count
            cumulative.append(running)
        return cumulative

    def mean(self) -> float:
        """Mean of the observations (NaN when empty)."""
        return self.sum / self.count if self.count else float("nan")


class _NullInstrument:
    """Accepts every update and records nothing."""

    __slots__ = ()
    name = "null"
    labels: LabelSet = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """A namespace of memoized counters, gauges and histograms.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("engine.tasks").inc(5)
    >>> registry.counter("engine.tasks").value
    5.0
    >>> registry.counter("solver.stage", method="gth").inc()
    >>> sorted(m.name for m in registry.instruments())
    ['engine.tasks', 'solver.stage']
    """

    enabled = True

    def __init__(self):
        self._instruments: Dict[Tuple[str, str, LabelSet], Any] = {}

    def _get(self, kind: str, cls, name: str, labels: Mapping[str, Any], **kwargs):
        key = (kind, str(name), _freeze_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(str(name), key[2], **kwargs)
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, **labels: Any
    ) -> Histogram:
        return self._get("histogram", Histogram, name, labels, buckets=buckets)

    def instruments(self) -> List[Any]:
        """Every instrument, in registration order."""
        return list(self._instruments.values())

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary of every instrument."""
        out: Dict[str, Any] = {}
        for instrument in self._instruments.values():
            entry: Dict[str, Any]
            if instrument.kind == "histogram":
                entry = {
                    "kind": "histogram",
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "buckets": {
                        str(bound): count
                        for bound, count in zip(
                            list(instrument.buckets) + ["+Inf"],
                            instrument.bucket_counts,
                        )
                    },
                }
            else:
                entry = {"kind": instrument.kind, "value": instrument.value}
            if instrument.labels:
                entry["labels"] = dict(instrument.labels)
            key = instrument.name
            if instrument.labels:
                key = f"{key}{{{','.join(f'{k}={v}' for k, v in instrument.labels)}}}"
            out[key] = entry
        return out

    def summary(self) -> Dict[str, float]:
        """Flat name → value map (histograms contribute count and sum)."""
        out: Dict[str, float] = {}
        for instrument in self._instruments.values():
            key = instrument.name
            if instrument.labels:
                key = f"{key}{{{','.join(f'{k}={v}' for k, v in instrument.labels)}}}"
            if instrument.kind == "histogram":
                out[f"{key}.count"] = float(instrument.count)
                out[f"{key}.sum"] = float(instrument.sum)
            else:
                out[key] = float(instrument.value)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsRegistry({len(self._instruments)} instruments)"


class _LockedCounter(Counter):
    __slots__ = ("_lock",)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            super().inc(amount)


class _LockedGauge(Gauge):
    __slots__ = ("_lock",)

    def set(self, value: float) -> None:
        with self._lock:
            super().set(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            super().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            super().dec(amount)


class _LockedHistogram(Histogram):
    __slots__ = ("_lock",)

    def observe(self, value: float) -> None:
        with self._lock:
            super().observe(value)


_LOCKED_CLASSES = {Counter: _LockedCounter, Gauge: _LockedGauge, Histogram: _LockedHistogram}


class ThreadSafeMetricsRegistry(MetricsRegistry):
    """A :class:`MetricsRegistry` safe to mutate from many threads.

    The plain registry is single-writer by design (the engine's pool
    backends record worker metrics privately and merge in the calling
    thread).  A long-running server mutates counters from every request
    thread concurrently, so this variant serializes instrument creation
    *and* every update behind one lock — ``value += amount`` is a
    read-modify-write, not an atomic op, even under the GIL.  The
    exporters (:meth:`to_dict`, :func:`~repro.obs.export.to_prometheus`)
    work unchanged because the instruments are plain subclasses.
    """

    def __init__(self):
        super().__init__()
        self._lock = threading.Lock()

    def _get(self, kind: str, cls, name: str, labels: Mapping[str, Any], **kwargs):
        with self._lock:
            instrument = super()._get(kind, _LOCKED_CLASSES[cls], name, labels, **kwargs)
            if getattr(instrument, "_lock", None) is None:
                instrument._lock = self._lock
            return instrument


class NullMetrics:
    """The disabled registry: hands out the shared no-op instrument."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def instruments(self) -> List[Any]:
        return []

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def summary(self) -> Dict[str, float]:
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullMetrics()"


NULL_METRICS = NullMetrics()
