"""Hierarchical tracing with a context-local active tracer.

The library's observability spine: a :class:`Span` is one timed,
attributed node of a trace tree; a :class:`Tracer` owns such a tree and
a :class:`~repro.obs.metrics.MetricsRegistry`; :func:`trace` installs a
tracer as the *active* one for the enclosing context so that every
instrumented hot path — the batch engine, the solver fallback chains,
BDD compilation, the simulators — records into it without any plumbing
through intermediate call signatures.

Two properties make the design safe to leave permanently enabled in the
instrumentation sites:

* **Zero-cost when off.**  The default active tracer is the singleton
  :data:`NULL_TRACER`, whose ``enabled`` flag is ``False`` and whose
  ``span()`` returns a shared no-op context manager.  Instrumented code
  fetches the tracer once per operation (one ``ContextVar`` lookup) and
  guards anything more expensive behind ``tracer.enabled``.
* **Worker propagation by envelope.**  ``ContextVar`` values do not
  cross thread- or process-pool boundaries, so pool backends wrap each
  dispatched chunk in :func:`record_span`: the worker records into a
  private tracer, the finished span travels back with the results as a
  plain dict, and the parent grafts it into the live tree
  (:meth:`Tracer.graft`) in deterministic submission order.  The
  resulting span tree is therefore identical across Serial / Thread /
  Process executors modulo timings.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .metrics import NULL_METRICS, MetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "trace",
    "get_tracer",
    "activate_tracer",
    "record_span",
    "span_signature",
]


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of attribute values to JSON-safe types."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    # numpy scalars and arrays, and anything else with item()/tolist()
    for method in ("item", "tolist"):
        fn = getattr(value, method, None)
        if callable(fn):
            try:
                return _jsonable(fn())
            except Exception:  # pragma: no cover - exotic array-likes
                break
    return repr(value)


class Span:
    """One timed node of a trace tree.

    Attributes
    ----------
    name:
        The operation name (``"engine.batch"``, ``"solver.stage"``, ...).
    attributes:
        Arbitrary key → value annotations.  By convention timing-like
        values are floats, so :func:`span_signature` can exclude them
        when comparing trees across executors.
    children:
        Nested spans, in start order.
    start_time / end_time:
        ``perf_counter`` readings; ``None`` while the span is open.
        Spans grafted from another process keep only their duration
        (clock readings are not comparable across processes).
    """

    __slots__ = ("name", "attributes", "children", "start_time", "end_time")

    def __init__(self, name: str, attributes: Optional[Mapping[str, Any]] = None):
        self.name = str(name)
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List["Span"] = []
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None

    @property
    def duration(self) -> float:
        """Span duration in seconds (0.0 while the span is still open)."""
        if self.start_time is None or self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def observe(self, observation: Any, key: Optional[str] = None) -> "Span":
        """Attach an :class:`~repro.obs.Observation` (anything with
        ``to_dict()``) under its lower-cased class name (or ``key``)."""
        name = key if key is not None else type(observation).__name__.lower()
        self.attributes[name] = observation.to_dict()
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe nested dict (the wire format used to cross pools)."""
        return {
            "name": self.name,
            "duration_s": self.duration,
            "attributes": {str(k): _jsonable(v) for k, v in self.attributes.items()},
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        """Rebuild a span (tree) from :meth:`to_dict` output.

        Only the duration survives; absolute clock readings from another
        process would be meaningless here.
        """
        span = cls(data["name"], data.get("attributes"))
        span.start_time = 0.0
        span.end_time = float(data.get("duration_s", 0.0))
        span.children = [cls.from_dict(child) for child in data.get("children", ())]
        return span

    def iter(self):
        """Depth-first iteration over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.iter()

    def find(self, name: str) -> List["Span"]:
        """All descendant spans (including self) with the given name."""
        return [span for span in self.iter() if span.name == name]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, {self.duration:.3g}s, "
            f"{len(self.children)} children)"
        )


def span_signature(span: Span) -> Tuple:
    """Structural identity of a span tree, timings excluded.

    Returns ``(name, static_attrs, child_signatures)`` where
    ``static_attrs`` keeps only non-float scalar attribute values —
    floats are, by the library's convention, timings/residuals that may
    legitimately differ between two otherwise identical runs.  Two
    traces of the same workload through different executors compare
    equal under this signature.
    """
    static = tuple(
        sorted(
            (key, value)
            for key, value in (
                (k, _jsonable(v)) for k, v in span.attributes.items()
            )
            if isinstance(value, (str, int, bool)) and not isinstance(value, float)
        )
    )
    return (span.name, static, tuple(span_signature(c) for c in span.children))


class _NullSpan:
    """Shared no-op span: context manager, ``set`` and ``observe`` sinks."""

    __slots__ = ()
    name = "null"
    attributes: Dict[str, Any] = {}
    children: List[Span] = []
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def observe(self, observation: Any, key: Optional[str] = None) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Installed as the default active tracer so instrumentation sites can
    call ``get_tracer().span(...)`` unconditionally; the whole code path
    costs one context-variable lookup and an attribute check.
    """

    enabled = False
    metrics = NULL_METRICS

    @property
    def current(self) -> _NullSpan:
        return _NULL_SPAN

    @property
    def root(self) -> _NullSpan:
        return _NULL_SPAN

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def graft(self, span_dict: Mapping[str, Any], parent: Optional[Span] = None) -> _NullSpan:
        return _NULL_SPAN

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTracer()"


NULL_TRACER = NullTracer()


class Tracer:
    """A live trace: a root span, a cursor stack and a metrics registry.

    Not thread-safe by design — pool backends record worker-side spans
    into private tracers via :func:`record_span` and graft the results
    back in the calling thread, so a single :class:`Tracer` instance is
    only ever mutated from one thread.
    """

    enabled = True

    def __init__(self, name: str = "trace", metrics: Optional[MetricsRegistry] = None):
        self.root = Span(name)
        self.root.start_time = perf_counter()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._stack: List[Span] = [self.root]

    @property
    def current(self) -> Span:
        """The innermost open span (the root when none is open)."""
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, **attributes: Any):
        """Open a child span of the current one for the ``with`` body.

        An exception raised inside the body is annotated on the span as
        ``error="ExceptionType: message"`` and re-raised.
        """
        span = Span(name, attributes)
        span.start_time = perf_counter()
        self._stack[-1].children.append(span)
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.attributes.setdefault("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            span.end_time = perf_counter()
            self._stack.pop()

    def graft(self, span_dict: Mapping[str, Any], parent: Optional[Span] = None) -> Span:
        """Attach a worker-recorded span dict under ``parent`` (default:
        the current span); returns the reconstructed :class:`Span`."""
        span = Span.from_dict(span_dict)
        (parent if parent is not None else self.current).children.append(span)
        return span

    def close(self) -> None:
        """Stamp the root span's end time (idempotent)."""
        if self.root.end_time is None:
            self.root.end_time = perf_counter()

    # ------------------------------------------------------------ export
    def to_json(self, indent: Optional[int] = None) -> str:
        """The whole trace — span tree plus metrics — as a JSON document."""
        self.close()
        return json.dumps(
            {"trace": self.root.to_dict(), "metrics": self.metrics.to_dict()},
            indent=indent,
        )

    def format(self, max_depth: Optional[int] = None) -> str:
        """Human-readable tree rendering (see :func:`~repro.obs.format_trace`)."""
        from .export import format_trace

        return format_trace(self, max_depth=max_depth)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n_spans = sum(1 for _ in self.root.iter())
        return f"Tracer({self.root.name!r}, {n_spans} spans)"


_ACTIVE_TRACER: ContextVar["Tracer | NullTracer"] = ContextVar(
    "repro_active_tracer", default=NULL_TRACER
)


def get_tracer() -> "Tracer | NullTracer":
    """The context-local active tracer (:data:`NULL_TRACER` by default).

    This is the single lookup every instrumentation site performs; with
    no :func:`trace` block active it returns the shared no-op tracer.
    """
    return _ACTIVE_TRACER.get()


@contextmanager
def activate_tracer(tracer: "Tracer | NullTracer"):
    """Install ``tracer`` as the active one for the ``with`` body.

    The lower-level sibling of :func:`trace` for pre-built tracers —
    e.g. the one carried by :class:`repro.engine.EngineOptions`.
    """
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)


@contextmanager
def trace(name: str = "trace", metrics: Optional[MetricsRegistry] = None):
    """Record everything in the ``with`` body into a fresh :class:`Tracer`.

    Examples
    --------
    >>> from repro.obs import trace
    >>> with trace("demo") as t:
    ...     with t.span("work", items=3):
    ...         pass
    >>> [s.name for s in t.root.iter()]
    ['demo', 'work']
    """
    tracer = Tracer(name, metrics)
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        tracer.close()
        _ACTIVE_TRACER.reset(token)


def record_span(
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    kwargs: Optional[Mapping[str, Any]] = None,
    name: str = "task",
    attributes: Optional[Mapping[str, Any]] = None,
) -> Tuple[Any, Dict[str, Any]]:
    """Run ``fn`` under a private tracer; return ``(result, span_dict)``.

    The engine's *task envelope*: module-level (hence picklable by
    reference) so pool backends can dispatch it to thread or process
    workers.  Inside the worker it installs a fresh recorder tracer as
    the context-local active one, so any instrumented library code the
    task calls — solver stages, BDD builds — nests under the envelope
    span exactly as it would have in-process.  The finished span comes
    back as a plain dict for :meth:`Tracer.graft`.
    """
    recorder = Tracer(name="__recorder__", metrics=MetricsRegistry())
    token = _ACTIVE_TRACER.set(recorder)
    try:
        with recorder.span(name, **(attributes or {})):
            result = fn(*args, **(kwargs or {}))
    finally:
        _ACTIVE_TRACER.reset(token)
    return result, recorder.root.children[0].to_dict()
