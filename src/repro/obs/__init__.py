"""Zero-dependency tracing + metrics observability layer (E32).

``repro.obs`` answers the question a large availability study always
ends up asking: *where did the time go, and which solver stage actually
ran?*  It provides

* hierarchical :class:`Span` traces with a context-local active
  :class:`Tracer` (:func:`trace` / :func:`get_tracer`), propagated into
  thread/process pool workers through the engine's task envelopes
  (:func:`record_span` / :meth:`Tracer.graft`);
* a :class:`MetricsRegistry` of counters, gauges and timing histograms
  (:data:`NULL_METRICS` when tracing is off);
* exporters: :meth:`Tracer.to_json`, the Prometheus text format
  (:func:`to_prometheus`) and a human tree view (:func:`format_trace`);
* the :class:`Observation` protocol shared by every reporting object
  (:class:`~repro.engine.EngineStats`,
  :class:`~repro.markov.fallback.SolverReport`,
  :class:`~repro.robust.ErrorRecord`).

The instrumentation built into the engine, the Markov solvers, the BDD
compiler and the simulators is permanently enabled but guarded by the
no-op :class:`NullTracer`, so with no :func:`trace` block active the
overhead is a single context-variable lookup per operation.

Examples
--------
>>> from repro.obs import trace
>>> from repro.engine import evaluate_batch
>>> with trace("sweep") as t:
...     result = evaluate_batch(lambda p: p["x"] ** 2, [{"x": 2.0}, {"x": 3.0}])
>>> t.root.children[0].name
'engine.batch'
"""

from .metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    ThreadSafeMetricsRegistry,
)
from .observation import Observation
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    activate_tracer,
    get_tracer,
    record_span,
    span_signature,
    trace,
)
from .export import format_trace, to_prometheus

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "trace",
    "get_tracer",
    "activate_tracer",
    "record_span",
    "span_signature",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ThreadSafeMetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
    "Observation",
    "format_trace",
    "to_prometheus",
]
