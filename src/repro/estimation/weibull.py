"""Weibull parameter estimation (wear-out analysis).

Implements the standard maximum-likelihood fit for complete and
right-censored samples.  The shape MLE solves the classical profile
equation

    Σ t_i^k ln t_i / Σ t_i^k  -  1/k  =  (1/r) Σ_{failures} ln t_i

(sums over *all* units, right-censored included; the right-hand side
over failures only), solved by bisection/brentq; the scale then follows
in closed form.  A method-of-moments starter is also exposed.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Optional, Sequence

import numpy as np
from scipy import optimize

from ..distributions import Weibull
from ..exceptions import DistributionError

__all__ = ["WeibullEstimate", "fit_weibull_mle", "fit_weibull_moments"]


class WeibullEstimate(NamedTuple):
    """Fitted Weibull parameters."""

    shape: float
    scale: float
    #: log-likelihood at the optimum (censoring included)
    log_likelihood: float

    def distribution(self) -> Weibull:
        """The fitted distribution object."""
        return Weibull(shape=self.shape, scale=self.scale)


def _profile_equation(k: float, times: np.ndarray, failures: np.ndarray) -> float:
    powered = times**k
    lhs = float((powered * np.log(times)).sum() / powered.sum()) - 1.0 / k
    rhs = float(np.log(failures).mean())
    return lhs - rhs


def fit_weibull_mle(
    failure_times: Sequence[float],
    censoring_times: Optional[Sequence[float]] = None,
) -> WeibullEstimate:
    """Maximum-likelihood Weibull fit with optional right censoring.

    Parameters
    ----------
    failure_times:
        Observed failure times (at least 2, all positive).
    censoring_times:
        Right-censoring times of surviving units (optional).

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(1)
    >>> data = Weibull(shape=2.0, scale=10.0).sample(rng, 4000)
    >>> est = fit_weibull_mle(data)
    >>> abs(est.shape - 2.0) < 0.1
    True
    """
    failures = np.asarray(list(failure_times), dtype=float)
    censored = np.asarray([] if censoring_times is None else list(censoring_times), dtype=float)
    if failures.size < 2:
        raise DistributionError("need at least two failure times")
    if np.any(failures <= 0) or np.any(censored <= 0):
        raise DistributionError("all times must be strictly positive")
    all_times = np.concatenate([failures, censored]) if censored.size else failures

    # Bracket the profile-equation root.
    lo, hi = 1e-3, 1.0
    while _profile_equation(hi, all_times, failures) < 0 and hi < 1e4:
        hi *= 2.0
    if _profile_equation(lo, all_times, failures) > 0:
        raise DistributionError("Weibull MLE profile equation has no root in range")
    shape = float(optimize.brentq(
        _profile_equation, lo, hi, args=(all_times, failures), xtol=1e-12
    ))
    scale = float((all_times**shape).sum() / failures.size) ** (1.0 / shape)

    r = failures.size
    log_lik = (
        r * math.log(shape)
        - r * shape * math.log(scale)
        + float(((shape - 1.0) * np.log(failures)).sum())
        - float(((all_times / scale) ** shape).sum())
    )
    return WeibullEstimate(shape=shape, scale=scale, log_likelihood=log_lik)


def fit_weibull_moments(samples: Sequence[float]) -> WeibullEstimate:
    """Method-of-moments Weibull fit (complete samples only).

    Matches the sample CV to the Weibull CV by solving for the shape,
    then matches the mean.  Useful as a starter or a rough-and-ready fit.
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size < 2:
        raise DistributionError("need at least two samples")
    if np.any(data <= 0):
        raise DistributionError("all samples must be strictly positive")
    mean = float(data.mean())
    cv = float(data.std(ddof=1)) / mean
    if cv <= 0:
        raise DistributionError("degenerate sample (zero variance)")

    def cv_gap(k: float) -> float:
        g1 = math.gamma(1.0 + 1.0 / k)
        g2 = math.gamma(1.0 + 2.0 / k)
        return math.sqrt(max(g2 - g1 * g1, 0.0)) / g1 - cv

    lo, hi = 0.05, 1.0
    while cv_gap(hi) > 0 and hi < 1e4:
        hi *= 2.0
    shape = float(optimize.brentq(cv_gap, lo, hi, xtol=1e-10))
    scale = mean / math.gamma(1.0 + 1.0 / shape)
    fitted = Weibull(shape=shape, scale=scale)
    log_lik = float(np.log(fitted.pdf(data)).sum())
    return WeibullEstimate(shape=shape, scale=scale, log_likelihood=log_lik)
