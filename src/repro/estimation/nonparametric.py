"""Nonparametric reliability estimation: Kaplan–Meier.

When no parametric family is trusted, the product-limit estimator gives
the empirical survival curve directly from (possibly right-censored)
field data; Greenwood's formula supplies pointwise variances.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from ..exceptions import DistributionError

__all__ = ["KaplanMeier", "kaplan_meier"]


class KaplanMeier(NamedTuple):
    """Product-limit survival estimate.

    Attributes
    ----------
    times:
        Distinct event (failure) times, increasing.
    survival:
        Estimated S(t) immediately after each event time.
    variance:
        Greenwood variance of the estimate at each event time.
    """

    times: np.ndarray
    survival: np.ndarray
    variance: np.ndarray

    def survival_at(self, t) -> np.ndarray:
        """Step-function evaluation of the estimated survival curve."""
        t = np.asarray(t, dtype=float)
        idx = np.searchsorted(self.times, t, side="right") - 1
        out = np.where(idx < 0, 1.0, self.survival[np.clip(idx, 0, None)])
        return out if out.ndim else float(out)

    def confidence_band(self, level: float = 0.95) -> Tuple[np.ndarray, np.ndarray]:
        """Pointwise normal-approximation confidence band."""
        if not 0.0 < level < 1.0:
            raise DistributionError(f"level must be in (0, 1), got {level}")
        z = stats.norm.ppf(0.5 + level / 2.0)
        half = z * np.sqrt(self.variance)
        return np.clip(self.survival - half, 0.0, 1.0), np.clip(
            self.survival + half, 0.0, 1.0
        )

    def median_lifetime(self) -> float:
        """Smallest event time with S(t) <= 0.5 (inf if never reached)."""
        below = np.nonzero(self.survival <= 0.5)[0]
        if below.size == 0:
            return float("inf")
        return float(self.times[below[0]])


def kaplan_meier(
    failure_times: Sequence[float],
    censoring_times: Optional[Sequence[float]] = None,
) -> KaplanMeier:
    """Kaplan–Meier product-limit estimator.

    Parameters
    ----------
    failure_times:
        Observed failure times.
    censoring_times:
        Right-censoring times (units still alive at loss to follow-up).

    Examples
    --------
    >>> km = kaplan_meier([1.0, 2.0, 3.0], censoring_times=[2.5])
    >>> float(km.survival_at(1.5))
    0.75
    """
    failures = np.asarray(list(failure_times), dtype=float)
    censored = np.asarray([] if censoring_times is None else list(censoring_times), dtype=float)
    if failures.size == 0:
        raise DistributionError("need at least one failure time")
    if np.any(failures < 0) or np.any(censored < 0):
        raise DistributionError("times must be non-negative")

    event_times = np.unique(failures)
    n_total = failures.size + censored.size

    survival = []
    variance_sum = 0.0
    variances = []
    current = 1.0
    for t in event_times:
        at_risk = int((failures >= t).sum() + (censored >= t).sum())
        deaths = int((failures == t).sum())
        if at_risk <= 0:
            break
        current *= 1.0 - deaths / at_risk
        if at_risk > deaths:
            variance_sum += deaths / (at_risk * (at_risk - deaths))
        survival.append(current)
        variances.append(current**2 * variance_sum)
    k = len(survival)
    return KaplanMeier(
        times=event_times[:k],
        survival=np.asarray(survival),
        variance=np.asarray(variances),
    )
