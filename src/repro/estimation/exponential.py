"""Estimating exponential failure/repair rates from field data.

Dependability models are only as good as their input rates; this module
implements the standard inference recipes for the exponential case:

* MLE from complete and right-censored (Type-I / Type-II) samples —
  ``λ̂ = r / T`` with ``r`` observed failures and ``T`` total time on
  test;
* exact chi-square confidence intervals for the rate (and hence MTTF);
* zero-failure (success-run) upper bounds — the "no failures observed,
  what can we claim?" question certification asks.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from ..exceptions import DistributionError

__all__ = [
    "RateEstimate",
    "estimate_rate",
    "rate_confidence_interval",
    "zero_failure_rate_upper_bound",
]


class RateEstimate(NamedTuple):
    """MLE of an exponential rate from (possibly censored) data."""

    #: point estimate λ̂ = failures / total time on test
    rate: float
    #: number of observed failures
    failures: int
    #: accumulated time on test (failures + censored units)
    total_time: float

    @property
    def mttf(self) -> float:
        """Point estimate of the mean time to failure, ``1 / λ̂``."""
        if self.rate <= 0:
            return math.inf
        return 1.0 / self.rate

    def confidence_interval(self, level: float = 0.95) -> Tuple[float, float]:
        """Exact chi-square CI for the rate (time-censored convention)."""
        return rate_confidence_interval(
            self.failures, self.total_time, level=level
        )


def estimate_rate(
    failure_times: Sequence[float],
    censoring_times: Optional[Sequence[float]] = None,
) -> RateEstimate:
    """MLE of the exponential rate from failures plus right-censored units.

    Parameters
    ----------
    failure_times:
        Observed times to failure.
    censoring_times:
        Running times of units that had not failed when observation
        stopped (right censoring).  Optional.

    Examples
    --------
    >>> est = estimate_rate([100.0, 300.0], censoring_times=[600.0])
    >>> round(est.rate, 6)
    0.002
    """
    failures = np.asarray(list(failure_times), dtype=float)
    censored = np.asarray([] if censoring_times is None else list(censoring_times), dtype=float)
    if failures.size == 0 and censored.size == 0:
        raise DistributionError("no data supplied")
    if np.any(failures < 0) or np.any(censored < 0):
        raise DistributionError("times must be non-negative")
    total_time = float(failures.sum() + censored.sum())
    if total_time <= 0:
        raise DistributionError("total time on test must be positive")
    r = int(failures.size)
    return RateEstimate(rate=r / total_time, failures=r, total_time=total_time)


def rate_confidence_interval(
    failures: int, total_time: float, level: float = 0.95
) -> Tuple[float, float]:
    """Exact two-sided chi-square CI for an exponential rate.

    Uses the time-censored (Type-I) convention::

        λ_lo = χ²(α/2; 2r) / (2T)        λ_hi = χ²(1-α/2; 2r+2) / (2T)

    With zero failures the lower limit is 0.

    Examples
    --------
    >>> lo, hi = rate_confidence_interval(2, 1000.0)
    >>> lo < 2 / 1000.0 < hi
    True
    """
    if failures < 0:
        raise DistributionError(f"failures must be >= 0, got {failures}")
    if total_time <= 0:
        raise DistributionError(f"total_time must be positive, got {total_time}")
    if not 0.0 < level < 1.0:
        raise DistributionError(f"level must be in (0, 1), got {level}")
    alpha = 1.0 - level
    if failures == 0:
        lower = 0.0
    else:
        lower = stats.chi2.ppf(alpha / 2.0, 2 * failures) / (2.0 * total_time)
    upper = stats.chi2.ppf(1.0 - alpha / 2.0, 2 * failures + 2) / (2.0 * total_time)
    return float(lower), float(upper)


def zero_failure_rate_upper_bound(total_time: float, confidence: float = 0.95) -> float:
    """Upper bound on the rate after ``total_time`` hours with *no* failures.

    ``λ_hi = -ln(1 - confidence) / T`` — the classical success-run bound.

    Examples
    --------
    >>> round(zero_failure_rate_upper_bound(10_000.0, 0.95), 8)
    0.00029957
    """
    if total_time <= 0:
        raise DistributionError(f"total_time must be positive, got {total_time}")
    if not 0.0 < confidence < 1.0:
        raise DistributionError(f"confidence must be in (0, 1), got {confidence}")
    return -math.log(1.0 - confidence) / total_time
