"""Estimating availability from operational logs.

Given alternating up/down session durations from monitoring, estimate
steady-state availability and its confidence interval.  The classical
result for the ratio estimator ``Â = U / (U + D)`` uses the delta method
on the two session means — what an SRE team needs to turn an uptime log
into a defensible availability claim.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Sequence, Tuple

import numpy as np
from scipy import stats

from ..exceptions import DistributionError

__all__ = ["AvailabilityEstimate", "estimate_availability"]


class AvailabilityEstimate(NamedTuple):
    """Availability point estimate with the inputs it came from."""

    availability: float
    mean_uptime: float
    mean_downtime: float
    n_cycles: int
    #: delta-method standard error of the availability estimate
    std_error: float

    def confidence_interval(self, level: float = 0.95) -> Tuple[float, float]:
        """Normal-approximation CI, clipped to [0, 1]."""
        if not 0.0 < level < 1.0:
            raise DistributionError(f"level must be in (0, 1), got {level}")
        z = stats.norm.ppf(0.5 + level / 2.0)
        return (
            max(0.0, self.availability - z * self.std_error),
            min(1.0, self.availability + z * self.std_error),
        )

    @property
    def downtime_minutes_per_year(self) -> float:
        """Annualized downtime implied by the point estimate."""
        return (1.0 - self.availability) * 525_600.0


def estimate_availability(
    uptimes: Sequence[float], downtimes: Sequence[float]
) -> AvailabilityEstimate:
    """Estimate steady-state availability from paired up/down sessions.

    Parameters
    ----------
    uptimes, downtimes:
        Observed session durations.  At least two of each; the estimator
        pairs them cycle-wise (truncating to the shorter list).

    Examples
    --------
    >>> est = estimate_availability([99.0, 101.0, 100.0], [1.0, 1.0, 1.0])
    >>> round(est.availability, 4)
    0.9901
    """
    ups = np.asarray(list(uptimes), dtype=float)
    downs = np.asarray(list(downtimes), dtype=float)
    n = min(ups.size, downs.size)
    if n < 2:
        raise DistributionError("need at least two complete up/down cycles")
    if np.any(ups[:n] < 0) or np.any(downs[:n] < 0):
        raise DistributionError("durations must be non-negative")
    ups, downs = ups[:n], downs[:n]

    mu_u = float(ups.mean())
    mu_d = float(downs.mean())
    total = mu_u + mu_d
    if total <= 0:
        raise DistributionError("all sessions have zero length")
    a_hat = mu_u / total

    # Delta method on A = U/(U+D):
    #   dA/dU = D/(U+D)^2,  dA/dD = -U/(U+D)^2
    var_u = float(ups.var(ddof=1)) / n
    var_d = float(downs.var(ddof=1)) / n
    cov = float(np.cov(ups, downs, ddof=1)[0, 1]) / n
    du = mu_d / total**2
    dd = -mu_u / total**2
    var_a = du * du * var_u + dd * dd * var_d + 2.0 * du * dd * cov
    return AvailabilityEstimate(
        availability=a_hat,
        mean_uptime=mu_u,
        mean_downtime=mu_d,
        n_cycles=n,
        std_error=math.sqrt(max(var_a, 0.0)),
    )
