"""Parameter estimation from field data.

The front end of every practical study: turning failure logs into the
rates and distributions the models consume — exponential MLE with
censoring and exact chi-square intervals, Weibull MLE for wear-out,
Kaplan–Meier for distribution-free survival curves, and availability
estimation from up/down session logs.
"""

from .availability import AvailabilityEstimate, estimate_availability
from .exponential import (
    RateEstimate,
    estimate_rate,
    rate_confidence_interval,
    zero_failure_rate_upper_bound,
)
from .nonparametric import KaplanMeier, kaplan_meier
from .weibull import WeibullEstimate, fit_weibull_mle, fit_weibull_moments

__all__ = [
    "RateEstimate",
    "estimate_rate",
    "rate_confidence_interval",
    "zero_failure_rate_upper_bound",
    "WeibullEstimate",
    "fit_weibull_mle",
    "fit_weibull_moments",
    "KaplanMeier",
    "kaplan_meier",
    "AvailabilityEstimate",
    "estimate_availability",
]
