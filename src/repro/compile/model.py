"""Compiled case-study evaluators: the whole hierarchy, fill-and-solve.

:func:`compile_model` turns a sweepable model — one of the tutorial case
studies, a :class:`~repro.markov.CTMC`, an RBD or a fault tree — into a
picklable evaluator whose *structure* was built exactly once:

* every leaf CTMC becomes a :class:`~repro.compile.ctmc.CompiledCTMC`
  (frozen state order + sparsity, symbolic rates);
* every RBD layer becomes a
  :class:`~repro.compile.structure.CompiledStructureFunction`
  (vectorized bottom-up program);
* the hierarchy's solve order is baked into straight-line code.

The compiled evaluators replicate the uncompiled computation to the
bit: the same floating-point expressions in the same order, the same
validation checks raising the same exceptions with the same messages.
``evaluate_availability(a) == compile_model(evaluate_availability)(a)``
is an exact equality, not an approximate one — which is what lets the
engine substitute a compiled evaluator without perturbing cached or
previously published sweep results.

Case-study evaluator functions advertise their compiled form through a
``__compiles_to__ = "module:ClassName"`` attribute; the engine's
auto-compile hook and :func:`supports_compilation` key off it.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_positive, check_probability
from ..exceptions import ModelDefinitionError
from .ctmc import CompiledCTMC, Complement, Param, Scaled, Times
from .structure import CompiledStructureFunction

__all__ = [
    "CompiledEvaluator",
    "CompiledBladeCenter",
    "CompiledCiscoRouter",
    "CompiledSunPlatform",
    "compile_model",
    "supports_compilation",
]


def _exp_steady_up(failure_rate: float, repair_rate: float) -> float:
    """Up-probability of an exponential component, uncompiled route.

    Replicates ``Component.from_rates(...)`` validation followed by the
    ``1 - (1 - MTTF / (MTTF + MTTR))`` chain the RBD evaluation applies.
    """
    f = check_positive(failure_rate, "failure_rate")
    r = check_positive(repair_rate, "repair_rate")
    mttf = 1.0 / f
    mttr = 1.0 / r
    ssa = mttf / (mttf + mttr)
    return 1.0 - (1.0 - ssa)


def _fixed_up(unavailability: float) -> float:
    """Up-probability of a fixed-probability component.

    ``Component.fixed`` validates, then the RBD asks for
    ``1 - failure_probability = 1 - (1 - (1 - p))``; the full complement
    chain is replicated literally to stay bit-identical.
    """
    check_probability(unavailability)
    return 1.0 - (1.0 - (1.0 - unavailability))


class CompiledEvaluator:
    """Base class of compiled, picklable batch evaluators.

    Subclasses freeze a model's structure at construction and implement
    :meth:`evaluate_many`; ``__call__`` is the engine-compatible
    single-assignment form.  ``__ship_once__`` marks the object for the
    process executor's ship-once initializer path (the evaluator is
    pickled once per worker instead of once per task chunk).
    """

    __ship_once__ = True

    #: parameter names the evaluator accepts (dataclass field names)
    parameters: Tuple[str, ...] = ()

    def __call__(self, assignment: Mapping[str, float]) -> float:
        return float(self.evaluate_many([assignment])[0])

    def evaluate_many(self, assignments: Sequence[Mapping[str, float]]) -> np.ndarray:
        """Evaluate a whole batch; default is the per-point loop."""
        raise NotImplementedError

    def size(self) -> Dict[str, int]:
        """Model-scale metadata: aggregate state/component counts.

        Walks the evaluator's frozen structure and sums what it finds —
        ``n_states`` over every embedded :class:`CompiledCTMC` (plain
        attributes and dict values, the layouts the case-study
        evaluators use), ``n_components`` over every
        :class:`CompiledStructureFunction` — plus ``n_chains`` /
        ``n_structure_functions`` counts.  This is the introspectable
        answer to "how big is this model?" that benchmark notes used to
        bury; the serving registry republishes it per model.
        """
        n_states = n_chains = n_components = n_sfs = 0

        def visit(value) -> None:
            nonlocal n_states, n_chains, n_components, n_sfs
            if isinstance(value, CompiledCTMC):
                n_states += value.n_states
                n_chains += 1
            elif isinstance(value, CompiledStructureFunction):
                n_components += value.n_components
                n_sfs += 1

        for attr_value in vars(self).values():
            visit(attr_value)
            if isinstance(attr_value, dict):
                for inner in attr_value.values():
                    visit(inner)
        return {
            "n_states": n_states,
            "n_chains": n_chains,
            "n_components": n_components,
            "n_structure_functions": n_sfs,
        }

    def describe(self) -> Dict[str, object]:
        """Advertised metadata: evaluator class, parameters and size."""
        return {
            "evaluator": type(self).__name__,
            "parameters": list(self.parameters),
            "size": self.size(),
        }


class CompiledBladeCenter(CompiledEvaluator):
    """Compiled IBM BladeCenter hierarchy (case study E19).

    Structure compiled once: the 2-unit redundant-pair CTMC pattern
    (instantiated symbolically for power / cooling / management /
    switch), the RAID-1 pair CTMC, and the three RBD layers (chassis,
    blade, system) as vectorized structure functions.  Per point, only
    ``fill`` + GTH solves + the vectorized products run.
    """

    #: chassis leaves: (name, failure-rate parameter)
    _CHASSIS_LEAVES: Tuple[Tuple[str, str], ...] = (
        ("power", "power_failure_rate"),
        ("cooling", "blower_failure_rate"),
        ("management", "management_failure_rate"),
        ("switch", "switch_failure_rate"),
    )

    def __init__(self):
        from ..casestudies.bladecenter import BladeCenterParameters

        self.parameters = tuple(BladeCenterParameters.__dataclass_fields__)
        # 2-unit redundant pair, shared repair: states [2, 1, 0].
        self._pairs: Dict[str, CompiledCTMC] = {
            name: CompiledCTMC(
                [2, 1, 0],
                [
                    (0, 1, Scaled(2.0, frate)),
                    (1, 2, Param(frate)),
                    (1, 0, Param("chassis_repair_rate")),
                    (2, 1, Param("chassis_repair_rate")),
                ],
            )
            for name, frate in self._CHASSIS_LEAVES
        }
        self._raid = CompiledCTMC(
            [2, 1, 0],
            [
                (0, 1, Scaled(2.0, "disk_failure_rate")),
                (1, 2, Param("disk_failure_rate")),
                (1, 0, Param("raid_rebuild_rate")),
                (2, 1, Param("blade_repair_rate")),
            ],
        )
        leaf = lambda i: ("leaf", i)  # noqa: E731 - spec shorthand
        self._chassis_sf = CompiledStructureFunction(
            ["power", "cooling", "management", "switch", "midplane"],
            tree=("series", tuple(leaf(i) for i in range(5))),
        )
        self._blade_sf = CompiledStructureFunction(
            ["cpu", "memory", "disks_raid1", "nic1", "nic2", "os"],
            tree=(
                "series",
                (leaf(0), leaf(1), leaf(2), ("parallel", (leaf(3), leaf(4))), leaf(5)),
            ),
        )
        self._system_sf = CompiledStructureFunction(
            ["chassis", "blade"], tree=("series", (leaf(0), leaf(1)))
        )

    @staticmethod
    def _pair_up_states_sum(pi: np.ndarray) -> float:
        # up states {2, 1} -> indices 0, 1 in the frozen order
        return float(pi[0]) + float(pi[1])

    def _point_rows(self, params) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """Chassis and blade component up-probability rows for one point.

        Check order mirrors the uncompiled hierarchy solve: all four
        chassis-pair rate validations first (the ``_chassis_leaves``
        dict is built before any solve), then each pair's solve +
        probability check, then midplane, then the blade layer.
        """
        values = params.__dict__
        for name, _ in self._CHASSIS_LEAVES:
            pair = self._pairs[name]
            if not pair.memoized(values):
                pair.validate(values)  # rate validation pass
        chassis_row = []
        for name, _ in self._CHASSIS_LEAVES:
            pi = self._pairs[name].steady_state_cached(values)
            unavail = 1.0 - self._pair_up_states_sum(pi)
            chassis_row.append(_fixed_up(unavail))
        chassis_row.append(
            _exp_steady_up(params.midplane_failure_rate, params.midplane_repair_rate)
        )
        # blade layer: raid pair first, then NICs, CPU, memory, OS (the
        # order build_blade_server constructs and validates them in)
        pi = self._raid.steady_state_cached(values)
        raid_unavail = 1.0 - self._pair_up_states_sum(pi)
        p_raid = _fixed_up(raid_unavail)
        p_nic1 = _exp_steady_up(params.nic_failure_rate, params.blade_repair_rate)
        p_nic2 = _exp_steady_up(params.nic_failure_rate, params.blade_repair_rate)
        p_cpu = _exp_steady_up(params.cpu_failure_rate, params.blade_repair_rate)
        p_memory = _exp_steady_up(params.memory_failure_rate, params.blade_repair_rate)
        p_os = _exp_steady_up(params.software_failure_rate, params.software_repair_rate)
        blade_row = (p_cpu, p_memory, p_raid, p_nic1, p_nic2, p_os)
        return tuple(chassis_row), blade_row

    def evaluate_many(self, assignments: Sequence[Mapping[str, float]]) -> np.ndarray:
        from ..casestudies.bladecenter import resolve_parameters

        params_list = [resolve_parameters(a) for a in assignments]
        n = len(params_list)
        chassis_P = np.empty((n, 5))
        blade_P = np.empty((n, 6))
        for i, params in enumerate(params_list):
            chassis_row, blade_row = self._point_rows(params)
            chassis_P[i] = chassis_row
            blade_P[i] = blade_row
        a_chassis = self._chassis_sf.evaluate(chassis_P)
        a_blade = self._blade_sf.evaluate(blade_P)
        # system layer: per-point scalar pass so the fixed-component
        # probability checks fire in the uncompiled order
        out = np.empty(n)
        for i in range(n):
            p_ch = _fixed_up(1.0 - float(a_chassis[i]))
            p_bl = _fixed_up(1.0 - float(a_blade[i]))
            row = np.array([[p_ch, p_bl]])
            out[i] = float(self._system_sf.evaluate(row)[0])
        return out


class CompiledCiscoRouter(CompiledEvaluator):
    """Compiled Cisco GSR router (case study E18, redundant processor).

    One 5-state processor CTMC with symbolic coverage-split rates plus a
    six-component series RBD (processor, fabric, four line cards).
    """

    def __init__(self):
        from ..casestudies.cisco import CiscoParameters

        self.parameters = tuple(CiscoParameters.__dataclass_fields__)
        lam = Param("processor_failure_rate")
        # states in first-seen order: "2", "failover", "uncovered", "1", "0"
        self._processor = CompiledCTMC(
            ["2", "failover", "uncovered", "1", "0"],
            [
                (0, 1, Times(lam, Param("coverage"))),
                (0, 2, Times(lam, Complement(Param("coverage")))),
                (0, 3, lam),
                (1, 3, Param("failover_rate")),
                (2, 3, Param("uncovered_recovery_rate")),
                (3, 4, lam),
                (3, 0, Param("processor_repair_rate")),
                (4, 3, Param("processor_repair_rate")),
            ],
        )
        leaf = lambda i: ("leaf", i)  # noqa: E731 - spec shorthand
        names = ["processor", "fabric"] + [f"linecard{k}" for k in range(4)]
        self._router_sf = CompiledStructureFunction(
            names, tree=("series", tuple(leaf(i) for i in range(6)))
        )

    def _point_row(self, params) -> Tuple[float, ...]:
        values = params.__dict__
        pi = self._processor.steady_state_cached(values)
        # up states {"2", "1"} -> indices 0 and 3
        unavail = 1.0 - (float(pi[0]) + float(pi[3]))
        p_proc = _fixed_up(unavail)
        p_fabric = _exp_steady_up(params.fabric_failure_rate, params.fabric_repair_rate)
        linecards = tuple(
            _exp_steady_up(params.linecard_failure_rate, params.linecard_repair_rate)
            for _ in range(4)
        )
        return (p_proc, p_fabric) + linecards

    def evaluate_many(self, assignments: Sequence[Mapping[str, float]]) -> np.ndarray:
        from ..casestudies.cisco import resolve_parameters

        params_list = [resolve_parameters(a) for a in assignments]
        P = np.empty((len(params_list), 6))
        for i, params in enumerate(params_list):
            P[i] = self._point_row(params)
        return self._router_sf.evaluate(P)


class CompiledSunPlatform(CompiledEvaluator):
    """Compiled Sun carrier-grade platform (case study E20).

    Compiles the **immediate**-repair policy, the one
    ``sun.evaluate_availability`` sweeps.  The deferred policy has a
    three-state up set whose summation order in the uncompiled model
    depends on set iteration, so it is deliberately left uncompiled
    rather than risking a bit divergence.
    """

    def __init__(self):
        from ..casestudies.sun import SunParameters

        self.parameters = tuple(SunParameters.__dataclass_fields__)
        lam = Param("failure_rate")
        # states in first-seen order: "2", "failover", "uncovered", "1", "0"
        self._platform = CompiledCTMC(
            ["2", "failover", "uncovered", "1", "0"],
            [
                (0, 1, Times(lam, Param("coverage"))),
                (0, 2, Times(lam, Complement(Param("coverage")))),
                (1, 3, Param("failover_rate")),
                (2, 3, Param("uncovered_recovery_rate")),
                (0, 3, lam),
                (3, 0, Param("repair_rate")),
                (3, 4, lam),
                (4, 3, Param("repair_rate")),
            ],
        )

    def evaluate_many(self, assignments: Sequence[Mapping[str, float]]) -> np.ndarray:
        from ..casestudies.sun import resolve_parameters

        out = np.empty(len(assignments))
        for i, assignment in enumerate(assignments):
            params = resolve_parameters(assignment)
            pi = self._platform.steady_state_cached(params.__dict__)
            # up states {"2", "1"} -> indices 0 and 3
            out[i] = float(pi[0]) + float(pi[3])
        return out


#: name -> "module:Class" spec of the compiled evaluator, for
#: compile_model("bladecenter") etc.  Lazy string specs (same format as
#: ``__compiles_to__``) so entries may live in modules that import this
#: one — ``repro.compile.sparse`` does.
_NAMED_MODELS: Dict[str, str] = {
    "bladecenter": "repro.compile.model:CompiledBladeCenter",
    "cisco": "repro.compile.model:CompiledCiscoRouter",
    "sun": "repro.compile.model:CompiledSunPlatform",
    "nfvchain": "repro.compile.sparse:CompiledNFVChain",
}

#: per-class singleton cache: compiling the same model twice reuses the
#: already-built structure (the whole point of the subsystem)
_INSTANCES: Dict[type, CompiledEvaluator] = {}


def _instance(cls: type) -> CompiledEvaluator:
    found = _INSTANCES.get(cls)
    if found is None:
        found = cls()
        _INSTANCES[cls] = found
    return found


def _resolve_spec(spec: str, owner) -> type:
    """Import a ``"module:Class"`` compiled-evaluator spec."""
    module_name, _, class_name = spec.partition(":")
    import importlib

    module = importlib.import_module(module_name)
    cls = getattr(module, class_name, None)
    if cls is None or not (isinstance(cls, type) and issubclass(cls, CompiledEvaluator)):
        raise ModelDefinitionError(
            f"{owner!r} advertises compiled form {spec!r}, "
            "which does not resolve to a CompiledEvaluator subclass"
        )
    return cls


def _compiled_class_of(target) -> Optional[type]:
    """Resolve a ``__compiles_to__ = "module:Class"`` advertisement."""
    spec = getattr(target, "__compiles_to__", None)
    if not isinstance(spec, str) or ":" not in spec:
        return None
    return _resolve_spec(spec, target)


def supports_compilation(target) -> bool:
    """True when :func:`compile_model` can compile ``target``.

    Covers already-compiled evaluators, callables advertising
    ``__compiles_to__``, the case-study names, the directly compilable
    model objects (CTMC / sparse CTMC / RBD / fault tree), and lazy
    SRNs (whose chain is an already-frozen sparse CTMC).
    """
    from ..markov.ctmc import CTMC
    from ..nonstate.faulttree import FaultTree
    from ..nonstate.rbd import ReliabilityBlockDiagram
    from ..petrinet.srn import StochasticRewardNet
    from ..sparse.ctmc import SparseCTMC

    if isinstance(
        target, (CompiledEvaluator, CTMC, SparseCTMC, ReliabilityBlockDiagram, FaultTree)
    ):
        return True
    if isinstance(target, StochasticRewardNet):
        return bool(target.lazy)
    if isinstance(target, str):
        return target in _NAMED_MODELS
    return getattr(target, "__compiles_to__", None) is not None


def compile_model(target):
    """Compile a model or evaluator into its structure-frozen form.

    Parameters
    ----------
    target:
        One of

        * a :class:`CompiledEvaluator` — returned as-is;
        * a case-study evaluator function carrying ``__compiles_to__``
          (e.g. ``bladecenter.evaluate_availability``) — resolved to its
          compiled class, one shared instance per process;
        * a case-study name: ``"bladecenter"``, ``"cisco"``, ``"sun"``,
          ``"nfvchain"``;
        * a :class:`~repro.markov.CTMC` →
          :meth:`CompiledCTMC.from_ctmc`;
        * a :class:`~repro.sparse.SparseCTMC` — returned as-is: its CSR
          generator is already structure-and-value frozen, so it *is*
          its own compiled form (and carries ``__ship_once__`` for the
          process pool);
        * a lazy :class:`~repro.petrinet.srn.StochasticRewardNet` — its
          generated chain, which is exactly such a sparse CTMC (eager
          SRNs are rejected: their dict-built chains re-derive rates
          from live marking closures);
        * a :class:`~repro.nonstate.ReliabilityBlockDiagram` or
          :class:`~repro.nonstate.FaultTree` →
          :class:`CompiledStructureFunction`.

    Raises
    ------
    ModelDefinitionError
        When the target does not support compilation.
    """
    from ..markov.ctmc import CTMC
    from ..nonstate.faulttree import FaultTree
    from ..nonstate.rbd import ReliabilityBlockDiagram

    if isinstance(target, CompiledEvaluator):
        return target
    if isinstance(target, str):
        spec = _NAMED_MODELS.get(target)
        if spec is None:
            raise ModelDefinitionError(
                f"unknown model name {target!r}; known: {sorted(_NAMED_MODELS)}"
            )
        return _instance(_resolve_spec(spec, target))
    if isinstance(target, CTMC):
        return CompiledCTMC.from_ctmc(target)
    from ..petrinet.srn import StochasticRewardNet
    from ..sparse.ctmc import SparseCTMC

    if isinstance(target, StochasticRewardNet):
        if not target.lazy:
            raise ModelDefinitionError(
                "cannot compile an eager SRN; regenerate with lazy=True so the "
                "chain is a structure-frozen SparseCTMC"
            )
        return target.chain
    if isinstance(target, SparseCTMC):
        return target
    if isinstance(target, ReliabilityBlockDiagram):
        return CompiledStructureFunction.from_rbd(target)
    if isinstance(target, FaultTree):
        return CompiledStructureFunction.from_fault_tree(target)
    cls = _compiled_class_of(target)
    if cls is not None:
        return _instance(cls)
    raise ModelDefinitionError(
        f"cannot compile {target!r}: not a compiled evaluator, a known model "
        "name, a CTMC/RBD/FaultTree, and no __compiles_to__ advertisement"
    )
