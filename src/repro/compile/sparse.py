"""Compiled sparse sweeps: build the CSR once, fill rates per point.

A parameter sweep over a large-state-space chain re-runs BFS
reachability, re-interns every marking, re-factors the preconditioner
and cold-starts the Krylov iteration at **every** point — even though
the CSR structure is rate-independent.  :class:`CompiledSparseCTMC` is
the large-state-space counterpart of :class:`~repro.compile.ctmc.CompiledCTMC`:

* the CSR ``indices``/``indptr`` arrays are frozen at compile time
  (byte-identical across every refill), together with one interned
  symbolic :class:`~repro.compile.ctmc.RateTerm` per *distinct* rate
  expression and a per-transition multiplier (the vanishing-resolution
  probability);
* :meth:`fill` evaluates the distinct terms once per point and scatters
  ``term_value × multiplier`` into a preallocated thread-local ``data``
  buffer — no re-BFS, no re-interning, O(nnz) work;
* per-point solves reuse the previous point's solution as the Krylov
  initial guess (``x0=`` warm start) and reuse the preconditioner
  across points with an adaptive refresh policy: Jacobi is refreshed
  in-place from the new diagonal, ILU is re-factored only when the
  iteration count regresses past a threshold;
* the normalized-augmented system ``A x = e_n`` is assembled per point
  by one precomputed gather from the filled ``data`` buffer — no
  transpose, no ``vstack``.

:func:`continuation_order` reorders an arbitrary campaign so that
consecutive points are nearest neighbors in (log-scaled, normalized)
parameter space, which is what makes warm starts pay off under grids.

The module deliberately never materializes a dense n×n array (lint rule
R007 enforces it, exactly as for :mod:`repro.sparse`).
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from .._validation import check_rate
from ..exceptions import ConvergenceError, ModelDefinitionError, SolverError
from ..markov.fallback import SolverReport, solve_steady_state
from ..markov.registry import consume_iterations
from ..obs.trace import get_tracer
from .ctmc import RateTerm
from .model import CompiledEvaluator

__all__ = [
    "CompiledSparseCTMC",
    "CompiledNFVChain",
    "continuation_order",
    "SweepStats",
]


class SweepStats:
    """Counters of one :meth:`CompiledSparseCTMC.sweep` run."""

    __slots__ = (
        "points",
        "fills",
        "warm_solves",
        "cold_solves",
        "fallbacks",
        "precond_builds",
        "precond_reuses",
        "precond_refactors",
        "iterations",
        "fill_seconds",
        "solve_seconds",
    )

    def __init__(self):
        self.points = 0
        self.fills = 0
        self.warm_solves = 0
        self.cold_solves = 0
        self.fallbacks = 0
        self.precond_builds = 0
        self.precond_reuses = 0
        self.precond_refactors = 0
        self.iterations: List[Optional[int]] = []
        self.fill_seconds = 0.0
        self.solve_seconds = 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe summary (benchmarks persist this)."""
        known = [i for i in self.iterations if i is not None]
        return {
            "points": self.points,
            "fills": self.fills,
            "warm_solves": self.warm_solves,
            "cold_solves": self.cold_solves,
            "fallbacks": self.fallbacks,
            "precond_builds": self.precond_builds,
            "precond_reuses": self.precond_reuses,
            "precond_refactors": self.precond_refactors,
            "mean_iterations": float(np.mean(known)) if known else None,
            "max_iterations": max(known) if known else None,
            "fill_seconds": self.fill_seconds,
            "solve_seconds": self.solve_seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SweepStats(points={self.points}, warm={self.warm_solves}, "
            f"cold={self.cold_solves}, precond builds/reuses/refactors="
            f"{self.precond_builds}/{self.precond_reuses}/{self.precond_refactors})"
        )


class CompiledSparseCTMC(CompiledEvaluator):
    """A sparse CTMC with frozen CSR structure and symbolic rates.

    Built by :func:`repro.sparse.build_sparse_reachability` with
    ``rate_terms=`` (see :attr:`SparseReachabilityResult.compiled <repro.sparse.SparseReachabilityResult>`):
    the BFS runs exactly once, and every later parameter point is a
    rate-only refill of the same ``data`` array.

    Parameters
    ----------
    n / indices / indptr:
        The frozen CSR pattern (the exact arrays of the generator the
        lazy builder produced — they are never copied or re-sorted, so
        refills leave them byte-identical).
    trip_rows / trip_cols:
        The streamed off-diagonal triplet coordinates in BFS order
        (rows nondecreasing), one entry per transition firing.
    terms / term_ids / multipliers:
        ``terms`` holds the distinct interned rate terms;
        ``term_ids[k]`` selects the term of triplet ``k`` and
        ``multipliers[k]`` its vanishing-resolution probability, so
        the triplet's value at a point is
        ``terms[term_ids[k]](values) * multipliers[k]`` — the same
        float expression the BFS computed as ``rate * prob``.
    up / initial:
        Optional up-state mask (enables :meth:`availability`) and
        initial probability vector, both in BFS state order.
    build_values:
        The parameter values the structure was generated at; the
        deterministic reference solution used to warm-start engine-path
        solves is computed here.
    """

    #: Below this many states the standard dense/direct fallback chain
    #: wins and warm starts are pointless — same threshold as
    #: :attr:`repro.sparse.SparseCTMC.ITERATIVE_LIMIT`.
    ITERATIVE_LIMIT = 5_000

    _MEMO_LIMIT = 1024

    def __init__(
        self,
        n: int,
        indices: np.ndarray,
        indptr: np.ndarray,
        trip_rows: np.ndarray,
        trip_cols: np.ndarray,
        terms: Sequence[RateTerm],
        term_ids: np.ndarray,
        multipliers: np.ndarray,
        up: Optional[np.ndarray] = None,
        initial: Optional[np.ndarray] = None,
        build_values: Optional[Mapping[str, float]] = None,
    ):
        self.n = int(n)
        if self.n < 1:
            raise ModelDefinitionError("chain has no states")
        self._indices = np.asarray(indices)
        self._indptr = np.asarray(indptr)
        self._trip_rows = np.asarray(trip_rows, dtype=np.int64)
        self._trip_cols = np.asarray(trip_cols, dtype=np.int64)
        self._terms: Tuple[RateTerm, ...] = tuple(terms)
        self._term_ids = np.asarray(term_ids, dtype=np.int64)
        self._mult = np.asarray(multipliers, dtype=np.float64)
        if not (self._trip_rows.size == self._trip_cols.size == self._term_ids.size == self._mult.size):
            raise ModelDefinitionError("triplet arrays disagree in length")
        self.up = None if up is None else np.asarray(up, dtype=bool)
        self.initial = None if initial is None else np.asarray(initial, dtype=float)
        self._build_values: Dict[str, float] = dict(build_values or {})

        # Map each streamed triplet (and each diagonal entry) to its slot
        # in the frozen CSR data array.  csr_key is strictly increasing
        # (CSR from COO is deduplicated and column-sorted), so one
        # searchsorted resolves every coordinate.
        nnz = self._indices.size
        row_of = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self._indptr)
        )
        csr_key = row_of * self.n + self._indices.astype(np.int64)
        trip_key = self._trip_rows * self.n + self._trip_cols
        self._trip_slots = np.searchsorted(csr_key, trip_key)
        if self._trip_slots.size and (
            self._trip_slots.max(initial=0) >= nnz
            or not np.array_equal(csr_key[self._trip_slots], trip_key)
        ):
            raise ModelDefinitionError(
                "triplet coordinates do not match the CSR pattern"
            )
        diag_key = np.arange(self.n, dtype=np.int64) * (self.n + 1)
        self._diag_slots = np.searchsorted(csr_key, diag_key)
        if self._diag_slots.size and not np.array_equal(
            csr_key[self._diag_slots], diag_key
        ):
            raise ModelDefinitionError("CSR pattern is missing diagonal entries")
        # Duplicate (i, j) triplets (two transitions firing to the same
        # target) need accumulation instead of a plain scatter.
        self._has_duplicates = bool(
            trip_key.size > 1 and np.any(np.diff(np.sort(trip_key)) == 0)
        )
        self._nnz = int(nnz)
        self.parameters = self._term_parameters()
        self._local = threading.local()
        self._memo: Dict[Tuple, float] = {}
        self._ref_pi: Optional[np.ndarray] = None
        self._aug: Optional[Tuple] = None
        tracer = get_tracer()
        if tracer.enabled:
            tracer.metrics.counter("compile.sparse.structure_builds").inc()

    # ---------------------------------------------------------- pickling
    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        # Thread-local buffers, memos and the assembled augmented system
        # never cross processes; workers rebuild them deterministically.
        state["_local"] = None
        state["_memo"] = {}
        state["_ref_pi"] = None
        state["_aug"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._local = threading.local()

    # ------------------------------------------------------------ access
    @property
    def n_states(self) -> int:
        """Number of states (BFS order, frozen)."""
        return self.n

    @property
    def nnz(self) -> int:
        """Stored entries of the frozen CSR pattern (diagonal included)."""
        return self._nnz

    def _term_parameters(self) -> Tuple[str, ...]:
        from ..analyze.compiled import term_parameters

        names: Dict[str, None] = {}
        for term in self._terms:
            for name in term_parameters(term):
                names.setdefault(name)
        return tuple(names)

    def size(self) -> Dict[str, int]:
        """Model-scale metadata (serve-registry advertisement form)."""
        return {
            "n_states": self.n,
            "n_chains": 1,
            "n_components": 0,
            "n_structure_functions": 0,
        }

    # -------------------------------------------------------------- fill
    def _workspace(self) -> threading.local:
        ws = self._local
        if getattr(ws, "data", None) is None:
            ws.data = np.zeros(self._nnz)
            ws.tvals = np.empty(len(self._terms))
            ws.trip = np.empty(self._term_ids.size)
        return ws

    def fill(self, values: Mapping[str, float]) -> np.ndarray:
        """Evaluate the rate terms into the thread-local CSR data buffer.

        Each *distinct* term is evaluated (and ``check_rate``-validated,
        raising what the uncompiled net build would raise) exactly once;
        the per-triplet values are one vectorized gather-and-scale.  The
        diagonal accumulates ``-Σ row`` in triplet order, bit-identical
        to the lazy builder's ``np.subtract.at``.  Returns the buffer —
        shared per thread, copy it to keep it across fills.
        """
        tracer = get_tracer()
        t0 = perf_counter()
        ws = self._workspace()
        for k, term in enumerate(self._terms):
            rate = term(values)
            check_rate(rate)
            ws.tvals[k] = float(rate)
        np.take(ws.tvals, self._term_ids, out=ws.trip)
        ws.trip *= self._mult
        data = ws.data
        if self._has_duplicates:
            data[...] = 0.0
            np.add.at(data, self._trip_slots, ws.trip)
        else:
            data[self._trip_slots] = ws.trip
        diag = np.bincount(self._trip_rows, weights=ws.trip, minlength=self.n)
        np.negative(diag, out=diag)
        data[self._diag_slots] = diag
        if tracer.enabled:
            tracer.metrics.counter("compile.sparse_fill_seconds").inc(
                perf_counter() - t0
            )
        return data

    def generator(self, values: Mapping[str, float]) -> sparse.csr_matrix:
        """The filled generator as CSR (shares the frozen index arrays).

        The returned matrix's ``indices``/``indptr`` are the compile-time
        arrays themselves — refills can never perturb the pattern — and
        its ``data`` is the thread-local fill buffer.
        """
        data = self.fill(values)
        return sparse.csr_matrix(
            (data, self._indices, self._indptr), shape=(self.n, self.n)
        )

    # -------------------------------------------- augmented-system reuse
    def _ensure_system(self):
        """Precompute the gather that assembles ``A x = e_n`` per point.

        ``A`` is ``Qᵀ`` with the last row replaced by ones.  Building it
        once from a probe matrix whose data values encode their own slot
        index yields, for every stored entry of ``A``, the position in
        the CSR ``data`` buffer it reads from — per-point assembly is a
        single fancy-index gather instead of a transpose + vstack.
        """
        if self._aug is None:
            from ..sparse.krylov import augmented_system

            probe = sparse.csr_matrix(
                (
                    np.arange(2.0, self._nnz + 2.0),
                    self._indices.copy(),
                    self._indptr.copy(),
                ),
                shape=(self.n, self.n),
            )
            a, b = augmented_system(probe)
            is_norm = a.data == 1.0
            positions = np.flatnonzero(~is_norm)
            src = (a.data[positions] - 2.0).astype(np.int64)
            a.data[is_norm] = 1.0
            self._aug = (a, b, positions, src)
        return self._aug

    def _assemble_system(self, data: np.ndarray):
        a, b, positions, src = self._ensure_system()
        a.data[positions] = data[src]
        return a, b

    def _jacobi(self, data: np.ndarray, inv: Optional[np.ndarray] = None):
        """(Re)build the Jacobi preconditioner from the filled diagonal.

        ``inv`` is the reusable buffer backing an existing operator; the
        in-place refresh is what "reusing" Jacobi across points means.
        """
        fresh = inv is None
        if fresh:
            inv = np.empty(self.n)
        diag = data[self._diag_slots]
        np.divide(1.0, np.where(diag == 0.0, 1.0, diag), out=inv[: self.n])
        inv[self.n - 1] = 1.0
        if not fresh:
            return None
        return sparse_linalg.LinearOperator(
            (self.n, self.n), matvec=lambda x, _inv=inv: _inv * x, dtype=float
        ), inv

    # ------------------------------------------------------------- solve
    def _reference(self) -> np.ndarray:
        """The fixed warm-start vector for engine-path solves.

        Solved cold at the compile-time parameter values through the
        fully-validated front door, once per process.  Warm-starting
        every point from this *same* deterministic vector (instead of
        chaining point to point) keeps batch results independent of
        evaluation order — serial, thread and process sweeps stay
        bit-identical.
        """
        if self._ref_pi is None:
            report = solve_steady_state(
                self.generator(self._build_values),
                iterative_limit=self.ITERATIVE_LIMIT,
            )
            self._ref_pi = report.pi
        return self._ref_pi

    def steady_state_report(
        self,
        values: Mapping[str, float],
        x0: Union[None, str, np.ndarray] = "reference",
    ) -> SolverReport:
        """Fill at ``values`` and solve through the standard front door.

        ``x0="reference"`` (default) warm-starts chains above
        :attr:`ITERATIVE_LIMIT` from the :meth:`_reference` solution;
        ``x0=None`` forces a cold start; an explicit vector is forwarded
        as-is.  Below the limit the call is exactly what the uncompiled
        :meth:`repro.sparse.SparseCTMC.steady_state_report` runs on the
        same generator bytes, so small-chain results are bit-identical.
        """
        if isinstance(x0, str):
            if x0 != "reference":
                raise SolverError(f"unknown x0 policy {x0!r}; use 'reference'")
            x0 = self._reference() if self.n > self.ITERATIVE_LIMIT else None
        q = self.generator(values)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.metrics.counter("compile.reuse", kind="sparse").inc()
        return solve_steady_state(q, iterative_limit=self.ITERATIVE_LIMIT, x0=x0)

    def steady_state(
        self,
        values: Mapping[str, float],
        x0: Union[None, str, np.ndarray] = "reference",
    ) -> np.ndarray:
        """Stationary vector at one parameter point (BFS state order)."""
        return self.steady_state_report(values, x0=x0).pi

    def availability(self, values: Mapping[str, float]) -> float:
        """Steady-state availability at one point (memoized, bounded).

        Requires the compile-time ``up`` mask.  The memo keys on the raw
        values of :attr:`parameters`, exactly like
        :meth:`CompiledCTMC.steady_state_cached`.
        """
        mask = self._up_mask()
        key = tuple(values[name] for name in self.parameters)
        hit = self._memo.get(key)
        if hit is not None:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.metrics.counter("compile.reuse", kind="sparse-memo").inc()
            return hit
        pi = self.steady_state(values)
        result = float(pi[mask].sum())
        if len(self._memo) >= self._MEMO_LIMIT:
            self._memo.clear()
        self._memo[key] = result
        return result

    def _up_mask(self) -> np.ndarray:
        if self.up is None:
            raise ModelDefinitionError(
                "no up-state mask was attached at compile time; rebuild with "
                "build_sparse_reachability(..., up=...) to evaluate availability"
            )
        return self.up

    # ------------------------------------------------------- batch/engine
    def __call__(self, assignment: Mapping[str, float]) -> float:
        unknown = sorted(set(assignment) - set(self.parameters))
        if unknown:
            raise ModelDefinitionError(
                f"unknown parameter(s) {unknown}; this compiled chain sweeps "
                f"{list(self.parameters)}"
            )
        values = dict(self._build_values)
        values.update(assignment)
        return self.availability(values)

    def evaluate_many(self, assignments: Sequence[Mapping[str, float]]) -> np.ndarray:
        out = np.empty(len(assignments))
        for i, assignment in enumerate(assignments):
            out[i] = self(assignment)
        return out

    # -------------------------------------------------------------- sweep
    def sweep(
        self,
        assignments: Sequence[Mapping[str, float]],
        order: Optional[str] = None,
        method: str = "gmres",
        preconditioner: str = "jacobi",
        tol: float = 1e-12,
        refresh_factor: float = 3.0,
        min_refresh_iterations: int = 30,
    ) -> np.ndarray:
        """Availability across a campaign with chained warm starts.

        The continuation fast path: per point, :meth:`fill` rewrites the
        CSR data buffer, the augmented system is reassembled by one
        gather, the Krylov solve warm-starts from the *previous point's*
        solution, and the preconditioner is reused — Jacobi refreshed
        in-place from the new diagonal; ILU re-factored only when a
        point's iteration count regresses past
        ``max(refresh_factor × rolling-best, min_refresh_iterations)``.

        Results match cold per-point solves within the solver tolerance
        (not bitwise — warm starts chain point to point, so use the
        engine path when evaluation-order independence matters).
        ``order="continuation"`` first reorders the points with
        :func:`continuation_order` (outputs are returned in the input
        order regardless).  Statistics of the run land on
        :attr:`last_sweep_stats`.
        """
        if order not in (None, "continuation"):
            raise ModelDefinitionError(
                f"unknown sweep order {order!r}; use None or 'continuation'"
            )
        mask = self._up_mask()
        stats = SweepStats()
        self.last_sweep_stats = stats
        perm = (
            continuation_order(assignments)
            if order == "continuation"
            else list(range(len(assignments)))
        )
        out = np.empty(len(assignments))
        if self.n <= self.ITERATIVE_LIMIT:
            # Small chains: direct/GTH per point beats any warm start;
            # structure reuse is still the win (no re-BFS).
            for i in perm:
                out[i] = self(assignments[i])
                stats.points += 1
                stats.cold_solves += 1
            return out

        tracer = get_tracer()
        m_op = None
        jacobi_inv: Optional[np.ndarray] = None
        best_iters: Optional[int] = None
        prev_pi: Optional[np.ndarray] = None
        for i in perm:
            values = dict(self._build_values)
            values.update(assignments[i])
            t0 = perf_counter()
            data = self.fill(values)
            stats.fills += 1
            stats.fill_seconds += perf_counter() - t0
            a, b = self._assemble_system(data)
            t0 = perf_counter()
            if preconditioner == "jacobi":
                if m_op is None:
                    m_op, jacobi_inv = self._jacobi(data)
                    stats.precond_builds += 1
                    if tracer.enabled:
                        tracer.metrics.counter("compile.precond.build", kind="jacobi").inc()
                else:
                    self._jacobi(data, jacobi_inv)
                    stats.precond_reuses += 1
                    if tracer.enabled:
                        tracer.metrics.counter("compile.precond.reuse", kind="jacobi").inc()
            elif preconditioner == "ilu":
                if m_op is None:
                    m_op = self._factor_ilu(a)
                    stats.precond_builds += 1
                    best_iters = None
                    if tracer.enabled:
                        tracer.metrics.counter("compile.precond.build", kind="ilu").inc()
                else:
                    stats.precond_reuses += 1
                    if tracer.enabled:
                        tracer.metrics.counter("compile.precond.reuse", kind="ilu").inc()
            elif preconditioner == "none":
                m_op = None
            else:
                raise SolverError(
                    f"unknown preconditioner {preconditioner!r}; "
                    "use 'jacobi', 'ilu' or 'none'"
                )
            try:
                from ..sparse.krylov import steady_state_iterative

                pi = steady_state_iterative(
                    None,
                    method=method,
                    tol=tol,
                    preconditioner=m_op,
                    validated=True,
                    x0=prev_pi,
                    system=(a, b),
                )
                iters = consume_iterations()
            except (ConvergenceError, SolverError):
                # Robust fallback: re-validate and walk the full chain
                # cold.  The warm path resumes at the next point.
                stats.fallbacks += 1
                report = solve_steady_state(
                    self.generator(values), iterative_limit=self.ITERATIVE_LIMIT
                )
                pi = report.pi
                iters = report.iterations
                if preconditioner == "ilu":
                    m_op = None  # force a refactor at the next point
            stats.solve_seconds += perf_counter() - t0
            stats.points += 1
            stats.iterations.append(iters)
            if prev_pi is None:
                stats.cold_solves += 1
            else:
                stats.warm_solves += 1
            prev_pi = pi
            out[i] = float(pi[mask].sum())
            if preconditioner == "ilu" and iters is not None and m_op is not None:
                if best_iters is None or iters < best_iters:
                    best_iters = iters
                threshold = max(
                    refresh_factor * best_iters, float(min_refresh_iterations)
                )
                if iters > threshold:
                    m_op = self._factor_ilu(a)
                    best_iters = None
                    stats.precond_refactors += 1
                    if tracer.enabled:
                        tracer.metrics.counter(
                            "compile.precond.refactor", kind="ilu"
                        ).inc()
        return out

    def _factor_ilu(self, a: sparse.csr_matrix) -> sparse_linalg.LinearOperator:
        try:
            ilu = sparse_linalg.spilu(a.tocsc(), drop_tol=1e-5, fill_factor=10.0)
        except RuntimeError as exc:  # pragma: no cover - SuperLU failure path
            raise SolverError(f"ILU preconditioner factorization failed: {exc}") from exc
        return sparse_linalg.LinearOperator(
            (self.n, self.n), matvec=ilu.solve, dtype=float
        )

    def describe(self) -> Dict[str, object]:
        """Advertised metadata (adds the structure-reuse facts)."""
        info = super().describe()
        info["nnz"] = self._nnz
        info["n_terms"] = len(self._terms)
        return info

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledSparseCTMC(n_states={self.n}, nnz={self._nnz}, "
            f"n_terms={len(self._terms)}, parameters={list(self.parameters)})"
        )


class CompiledNFVChain(CompiledEvaluator):
    """Compiled NFV service-chain evaluator (case study E37/E38).

    The engine-substitutable form of
    :func:`repro.casestudies.nfvchain.evaluate_availability`: per point
    it resolves the spec, fetches the count-signature-memoized
    :class:`CompiledSparseCTMC` structure from the case study's bounded
    cache, and refills rates — so a rate-only sweep never re-runs BFS.
    Above ``solver_limit`` states it switches to the analytic
    product-form oracle, exactly like the uncompiled evaluator.
    """

    #: mirror of ``evaluate_availability(solver_limit=...)``'s default
    solver_limit: Optional[int] = 200_000

    def __init__(self):
        from ..casestudies.nfvchain import NFVChainSpec

        self.parameters = tuple(NFVChainSpec.__dataclass_fields__)

    def evaluate_many(self, assignments: Sequence[Mapping[str, float]]) -> np.ndarray:
        from ..casestudies import nfvchain

        out = np.empty(len(assignments))
        for i, assignment in enumerate(assignments):
            out[i] = nfvchain.evaluate_availability(
                assignment, solver_limit=self.solver_limit
            )
        return out

    def size(self) -> Dict[str, int]:
        from ..casestudies import nfvchain

        return {
            "n_states": nfvchain.state_count(nfvchain.NFVChainSpec()),
            "n_chains": 1,
            "n_components": 0,
            "n_structure_functions": 0,
        }


#: Beyond this many points the O(m²) greedy tour is not worth the
#: ordering win; the original order is returned unchanged.
_CONTINUATION_LIMIT = 4_096


def continuation_order(
    assignments: Sequence[Mapping[str, float]],
    parameters: Optional[Sequence[str]] = None,
) -> List[int]:
    """Greedy nearest-neighbor visiting order over a campaign's points.

    Builds one row per assignment over ``parameters`` (default: the
    union of keys in first-use order), log-scales strictly-positive
    columns (rates sweep across decades — nearness should be relative,
    not absolute), normalizes each column to [0, 1], and walks a greedy
    nearest-neighbor tour from the first point.  Consecutive points end
    up adjacent in parameter space, which is what makes chained Krylov
    warm starts converge in a handful of iterations even when the
    campaign generator emitted an arbitrary grid order.

    Deterministic (ties resolve to the lowest index) and O(m²); inputs
    longer than 4 096 points are returned in their original order.
    """
    m = len(assignments)
    if m <= 2 or m > _CONTINUATION_LIMIT:
        return list(range(m))
    if parameters is None:
        keys: List[str] = []
        seen = set()
        for assignment in assignments:
            for key in assignment:
                if key not in seen:
                    seen.add(key)
                    keys.append(key)
    else:
        keys = list(parameters)
    if not keys:
        return list(range(m))
    x = np.zeros((m, len(keys)))  # (n_points, n_params) features, not n^2  # noqa: R007
    for j, key in enumerate(keys):
        col = np.array([float(a.get(key, 0.0)) for a in assignments])
        if np.all(col > 0.0):
            col = np.log10(col)
        lo, hi = float(col.min()), float(col.max())
        if hi > lo:
            x[:, j] = (col - lo) / (hi - lo)
    order = [0]
    remaining = np.ones(m, dtype=bool)
    remaining[0] = False
    current = 0
    for _ in range(m - 1):
        d2 = ((x - x[current]) ** 2).sum(axis=1)
        d2[~remaining] = np.inf
        current = int(np.argmin(d2))
        remaining[current] = False
        order.append(current)
    return order
