"""Compiled CTMC kernels: freeze structure once, fill and solve per point.

A parameter sweep over a CTMC model re-solves the *same* chain topology
at every point — only the numeric rates change.  The uncompiled path
rebuilds everything per point: label→index maps, the rate dictionary,
the COO triplets, the CSR generator, and (for reliability measures) a
second absorbing chain.  :class:`CompiledCTMC` hoists all of that out of
the loop:

* the **state ordering** and the **sparsity pattern** (COO row/column
  index arrays, one slot per distinct transition) are frozen at compile
  time;
* :meth:`fill` evaluates the symbolic rate terms into a preallocated
  dense buffer (one per thread) — per-point cost is "evaluate the terms
  and write ``nnz`` cells", not "rebuild the model";
* :meth:`steady_state` feeds the filled buffer straight to the GTH
  kernel with ``validated=True`` (the fill itself enforces positive
  finite rates, exactly like :meth:`repro.markov.CTMC.add_transition`);
  the sparse-direct method reuses a precomputed CSC pattern so each
  solve only writes a data vector;
* :meth:`transient` assembles the CSR generator from the frozen pattern
  and delegates to :func:`~repro.markov.solvers.solve_transient`, whose
  Poisson truncation points are memoized on ``(λt, tol)`` — nearby
  points with identical rates share the truncation machinery.

Results are **bit-identical** to building the equivalent
:class:`~repro.markov.CTMC` and solving it: the fill accumulates
duplicate transitions and the diagonal in the same floating-point order
as ``CTMC.add_transition`` + ``CTMC.generator()``.

Rates are expressed as picklable :class:`RateTerm` objects over a
parameter mapping (:class:`Const`, :class:`Param`, :class:`Scaled`,
:class:`Times`, :class:`Complement`), so a compiled chain can cross a
process boundary once and be filled many times in the worker.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from .._validation import check_rate
from ..exceptions import ModelDefinitionError, SolverError
from ..markov.solvers import gth_solve, solve_transient, steady_state_direct, steady_state_power
from ..obs.trace import get_tracer

__all__ = [
    "RateTerm",
    "Const",
    "Param",
    "Scaled",
    "Times",
    "Complement",
    "CompiledCTMC",
]

State = Hashable


class RateTerm:
    """A picklable symbolic rate: ``term(values) -> float``.

    Subclasses reproduce the exact floating-point expression the
    uncompiled model constructor evaluates, so the filled generator is
    bit-identical to the one ``CTMC.add_transition`` would build.
    """

    def __call__(self, values: Mapping[str, float]) -> float:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class Const(RateTerm):
    """A fixed rate, independent of the sweep parameters."""

    value: float

    def __call__(self, values: Mapping[str, float]) -> float:
        return self.value


@dataclass(frozen=True)
class Param(RateTerm):
    """The rate is the parameter ``name`` itself.

    Returns the raw mapping value (no float coercion): validation and
    conversion happen in :meth:`CompiledCTMC.fill`, in the same order
    ``CTMC.add_transition`` applies them.
    """

    name: str

    def __call__(self, values: Mapping[str, float]) -> float:
        return values[self.name]


@dataclass(frozen=True)
class Scaled(RateTerm):
    """``factor * values[name]`` — e.g. ``2.0 * failure_rate``."""

    factor: float
    name: str

    def __call__(self, values: Mapping[str, float]) -> float:
        return self.factor * values[self.name]


@dataclass(frozen=True)
class Times(RateTerm):
    """Product of two terms — e.g. ``failure_rate * coverage``."""

    left: RateTerm
    right: RateTerm

    def __call__(self, values: Mapping[str, float]) -> float:
        return self.left(values) * self.right(values)


@dataclass(frozen=True)
class Complement(RateTerm):
    """``1.0 - term`` — e.g. the uncovered branch ``1 - coverage``."""

    term: RateTerm

    def __call__(self, values: Mapping[str, float]) -> float:
        return 1.0 - self.term(values)


class CompiledCTMC:
    """A CTMC whose structure is frozen and whose rates are symbolic.

    Parameters
    ----------
    states:
        State labels in index order (the order ``CTMC.add_state`` would
        assign while replaying the transitions).
    transitions:
        ``(source_index, target_index, term)`` triples in the order the
        uncompiled constructor adds them.  Duplicate ``(i, j)`` pairs
        accumulate in insertion order, exactly like repeated
        ``add_transition`` calls.

    Examples
    --------
    >>> cc = CompiledCTMC([2, 1, 0], [
    ...     (0, 1, Scaled(2.0, "lam")), (1, 2, Param("lam")),
    ...     (1, 0, Param("mu")), (2, 1, Param("mu"))])
    >>> pi = cc.steady_state({"lam": 0.001, "mu": 0.1})
    >>> round(float(pi[0] + pi[1]), 8)
    0.99980396
    """

    def __init__(
        self,
        states: Sequence[State],
        transitions: Sequence[Tuple[int, int, RateTerm]],
    ):
        self.states: Tuple[State, ...] = tuple(states)
        self.n = len(self.states)
        if self.n == 0:
            raise ModelDefinitionError("chain has no states")
        self._index: Dict[State, int] = {s: i for i, s in enumerate(self.states)}
        if len(self._index) != self.n:
            raise ModelDefinitionError("duplicate state labels")
        # Group terms by (i, j) in first-insertion order — one COO slot
        # per distinct pair, matching the CTMC rate-dict accumulation.
        slots: Dict[Tuple[int, int], List[RateTerm]] = {}
        for i, j, term in transitions:
            i, j = int(i), int(j)
            if i == j:
                raise ModelDefinitionError("self-loops are meaningless in a CTMC")
            if not (0 <= i < self.n and 0 <= j < self.n):
                raise ModelDefinitionError(
                    f"transition ({i}, {j}) outside the {self.n}-state space"
                )
            slots.setdefault((i, j), []).append(term)
        self._slot_terms: Tuple[Tuple[int, int, Tuple[RateTerm, ...]], ...] = tuple(
            (i, j, tuple(terms)) for (i, j), terms in slots.items()
        )
        nnz = len(self._slot_terms)
        # Frozen COO pattern: transition slots first, diagonal last —
        # the exact layout CTMC.generator() emits.
        rows = np.empty(nnz + self.n, dtype=np.int64)
        cols = np.empty(nnz + self.n, dtype=np.int64)
        for k, (i, j, _) in enumerate(self._slot_terms):
            rows[k] = i
            cols[k] = j
        rows[nnz:] = np.arange(self.n)
        cols[nnz:] = np.arange(self.n)
        self._coo_rows = rows
        self._coo_cols = cols
        self._nnz = nnz
        # Lazily-built CSC pattern for the sparse-direct method.
        self._direct_pattern: Optional[Tuple[np.ndarray, ...]] = None
        self._local = threading.local()
        self._param_names: Tuple[str, ...] = self.parameters()
        # Stationary-vector memo keyed on (method, parameter values):
        # in a sweep most leaf chains see the same rates at every point.
        self._memo: Dict[Tuple, np.ndarray] = {}

    @classmethod
    def from_ctmc(cls, chain) -> "CompiledCTMC":
        """Freeze an existing :class:`~repro.markov.CTMC`.

        Every transition becomes a :class:`Const` term, so the compiled
        chain reproduces ``chain.generator()`` exactly; combine with
        hand-written :class:`Param` terms when rates should track a
        sweep instead.
        """
        transitions = [
            (int(i), int(j), Const(float(v)))
            for i, j, v in zip(chain._coo_rows, chain._coo_cols, chain._coo_vals)
        ]
        return cls(chain.states, transitions)

    # ---------------------------------------------------------- pickling
    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state["_local"] = None  # thread-local buffers never cross processes
        state["_memo"] = {}  # solves are cheap to redo; keep payloads small
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._local = threading.local()

    # ------------------------------------------------------------ access
    def index_of(self, state: State) -> int:
        """Index of a state label (frozen at compile time)."""
        try:
            return self._index[state]
        except KeyError:
            raise ModelDefinitionError(f"unknown state: {state!r}") from None

    @property
    def n_states(self) -> int:
        """Number of states."""
        return self.n

    def parameters(self) -> Tuple[str, ...]:
        """Parameter names the rate terms read, in first-use order."""
        names: Dict[str, None] = {}

        def walk(term: RateTerm) -> None:
            if isinstance(term, (Param, Scaled)):
                names.setdefault(term.name)
            elif isinstance(term, Times):
                walk(term.left)
                walk(term.right)
            elif isinstance(term, Complement):
                walk(term.term)

        for _, _, terms in self._slot_terms:
            for term in terms:
                walk(term)
        return tuple(names)

    # -------------------------------------------------------------- fill
    def _workspace(self) -> threading.local:
        ws = self._local
        if getattr(ws, "dense", None) is None:
            ws.dense = np.zeros((self.n, self.n))
            ws.diag = np.zeros(self.n)
            ws.vals = np.empty(self._nnz + self.n)
        return ws

    def fill(self, values: Mapping[str, float]) -> np.ndarray:
        """Evaluate the rate terms into the preallocated dense generator.

        Every term is validated with the same ``check_rate`` check (and
        in the same order) as the equivalent ``add_transition`` calls,
        so a bad parameter raises the identical
        :class:`~repro.exceptions.DistributionError`.  Returns the
        thread-local ``(n, n)`` buffer — copy it if you need to keep it
        across calls.
        """
        ws = self._workspace()
        dense = ws.dense
        diag = ws.diag
        vals = ws.vals
        dense[...] = 0.0
        diag[...] = 0.0
        for k, (i, j, terms) in enumerate(self._slot_terms):
            rate = 0.0
            for term in terms:
                r = term(values)
                check_rate(r)
                rate = rate + float(r)
            vals[k] = rate
            diag[i] -= rate
            dense[i, j] = rate
        vals[self._nnz :] = diag
        dense[np.arange(self.n), np.arange(self.n)] = diag
        return dense

    def validate(self, values: Mapping[str, float]) -> None:
        """Run the per-transition rate checks without touching buffers.

        Raises exactly what :meth:`fill` would raise, in the same order
        — the cheap stand-in when a caller needs the error contract of a
        model build but the solve itself will come from the memo.  The
        walk lives in :func:`repro.analyze.compiled.validate_terms`, the
        same scan the :func:`repro.analyze.analyze` lint reuses, so the
        two accept/reject bit-identically by construction.
        """
        from ..analyze.compiled import validate_terms

        validate_terms(self._slot_terms, values)

    def generator(self, values: Mapping[str, float]) -> sparse.csr_matrix:
        """The filled generator as a CSR matrix (frozen pattern).

        Bit-identical to ``CTMC.generator()`` of the equivalent chain:
        same COO layout, same duplicate accumulation, same diagonal
        subtraction order.
        """
        ws = self._workspace()
        self.fill(values)
        return sparse.csr_matrix(
            (ws.vals.copy(), (self._coo_rows, self._coo_cols)),
            shape=(self.n, self.n),
            dtype=float,
        )

    # ------------------------------------------------------------- solve
    def steady_state(self, values: Mapping[str, float], method: str = "gth") -> np.ndarray:
        """Stationary vector at one parameter point (index order).

        ``method="gth"`` (default) runs GTH elimination on the filled
        dense buffer; ``"direct"`` reuses the precomputed CSC pattern of
        the normalized system across solves; ``"power"`` iterates on the
        uniformized chain.  All three skip re-validation (the fill
        enforces the generator invariants by construction) and return
        the same bits as the uncompiled ``CTMC.steady_state``.
        """
        tracer = get_tracer()
        t0 = perf_counter()
        dense = self.fill(values)
        t1 = perf_counter()
        if method == "gth":
            pi = gth_solve(dense, validated=True)
        elif method == "direct":
            pi = self._steady_state_direct(dense)
        elif method == "power":
            ws = self._workspace()
            q = sparse.csr_matrix(
                (ws.vals.copy(), (self._coo_rows, self._coo_cols)),
                shape=(self.n, self.n),
                dtype=float,
            )
            pi = steady_state_power(q, validated=True)
        else:
            raise SolverError(f"unknown steady-state method {method!r}")
        if tracer.enabled:
            t2 = perf_counter()
            tracer.metrics.counter("compile.reuse", kind="ctmc").inc()
            tracer.metrics.counter("compile.fill_seconds").inc(t1 - t0)
            tracer.metrics.counter("compile.solve_seconds").inc(t2 - t1)
        return pi

    _MEMO_LIMIT = 1024

    def memo_key(self, values: Mapping[str, float], method: str = "gth") -> Tuple:
        """Memo key for one parameter point: the raw swept values."""
        return (method,) + tuple(values[name] for name in self._param_names)

    def memoized(self, values: Mapping[str, float], method: str = "gth") -> bool:
        """Whether :meth:`steady_state_cached` would be a memo hit."""
        return self.memo_key(values, method) in self._memo

    def steady_state_cached(self, values: Mapping[str, float], method: str = "gth") -> np.ndarray:
        """Memoized :meth:`steady_state` — treat the result as read-only.

        Sweeps usually vary a handful of parameters; every leaf chain
        whose rates happen to be constant across points re-solves the
        identical generator at every one of them.  The memo keys on the
        raw parameter values, so a hit returns the exact array an
        earlier solve produced (bit-identity is trivial).  Failures are
        never cached — a bad value misses the memo, and the fill inside
        :meth:`steady_state` raises exactly as the uncompiled build
        would.  The returned array is shared with the memo: copy it
        before mutating.
        """
        key = self.memo_key(values, method)
        pi = self._memo.get(key)
        if pi is None:
            pi = self.steady_state(values, method)
            if len(self._memo) >= self._MEMO_LIMIT:
                self._memo.clear()
            self._memo[key] = pi
        else:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.metrics.counter("compile.reuse", kind="ctmc-memo").inc()
        return pi

    def _ensure_direct_pattern(self) -> Tuple[np.ndarray, ...]:
        """CSC pattern of ``[Q^T with last row ← 1]``, built once.

        The pattern depends only on the frozen transition structure
        (explicit zeros are preserved through the conversions), so a
        single template conversion — the exact
        ``transpose().tolil()`` route of
        :func:`~repro.markov.solvers.steady_state_direct` — yields the
        index arrays every subsequent solve writes its data into.
        """
        if self._direct_pattern is None:
            ws = self._workspace()
            q = sparse.csr_matrix(
                (ws.vals.copy(), (self._coo_rows, self._coo_cols)),
                shape=(self.n, self.n),
                dtype=float,
            )
            a = q.transpose().tolil()
            a[self.n - 1, :] = 1.0
            template = sparse.csc_matrix(a)
            indices = template.indices.copy()
            indptr = template.indptr.copy()
            # Position p in column c holds A[r, c] = Q[c, r] (or 1.0 in
            # the normalization row r = n-1).
            col_of = np.repeat(np.arange(self.n), np.diff(indptr))
            is_norm = indices == self.n - 1
            self._direct_pattern = (indices, indptr, col_of, is_norm)
        return self._direct_pattern

    def _steady_state_direct(self, dense: np.ndarray) -> np.ndarray:
        if self.n == 1:
            return np.ones(1)
        indices, indptr, col_of, is_norm = self._ensure_direct_pattern()
        data = dense[col_of, indices]
        data[is_norm] = 1.0
        a = sparse.csc_matrix((data, indices, indptr), shape=(self.n, self.n))
        b = np.zeros(self.n)
        b[self.n - 1] = 1.0
        try:
            pi = sparse_linalg.spsolve(a, b)
        except RuntimeError as exc:  # pragma: no cover - SuperLU failure path
            raise SolverError(f"sparse direct solve failed: {exc}") from exc
        if not np.all(np.isfinite(pi)):
            raise SolverError("sparse direct solve produced non-finite probabilities")
        pi = np.maximum(pi, 0.0)
        total = pi.sum()
        if total <= 0:
            raise SolverError("sparse direct solve produced a zero vector")
        return pi / total

    # --------------------------------------------------------- transient
    def initial_vector(self, initial) -> np.ndarray:
        """Initial probability vector from a label or a distribution."""
        vec = np.zeros(self.n)
        if isinstance(initial, Mapping):
            total = 0.0
            for state, prob in initial.items():
                vec[self.index_of(state)] = float(prob)
                total += float(prob)
            if abs(total - 1.0) > 1e-9:
                raise ModelDefinitionError(
                    f"initial probabilities sum to {total}, expected 1"
                )
        else:
            vec[self.index_of(initial)] = 1.0
        return vec

    def transient(
        self,
        values: Mapping[str, float],
        times,
        initial,
        method: str = "auto",
        tol: float = 1e-10,
    ) -> np.ndarray:
        """Transient probabilities ``(len(times), n)`` at one point.

        Assembles the CSR generator from the frozen pattern and
        delegates to :func:`~repro.markov.solvers.solve_transient`;
        across nearby points with identical rates the Poisson truncation
        points are served from the ``(λt, tol)`` memo instead of being
        re-derived.
        """
        ts = np.atleast_1d(np.asarray(times, dtype=float))
        p0 = self.initial_vector(initial)
        q = self.generator(values)
        return solve_transient(q, p0, ts, method=method, tol=tol)

    def steady_state_direct_reference(self, values: Mapping[str, float]) -> np.ndarray:
        """Uncompiled-route direct solve (for verification): builds the
        CSR generator and calls :func:`steady_state_direct` as-is."""
        return steady_state_direct(self.generator(values), validated=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompiledCTMC(n_states={self.n}, n_transitions={self._nnz})"
