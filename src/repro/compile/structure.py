"""Compiled structure functions: one build, vectorized evaluation.

RBD and fault-tree quantification is a bottom-up pass over a structure
(the series/parallel/k-of-n tree, or the shared ROBDD for models with
repeated components).  In a sweep, the structure never changes — only
the component probabilities do — yet the uncompiled path re-walks the
Python object graph point by point, re-dispatching on node types and
re-hashing memo dictionaries every time.

:class:`CompiledStructureFunction` lowers the structure once into flat
arrays/tuples and evaluates **all sweep points at once**: given an
``(n_points, n_components)`` probability matrix, a single vectorized
bottom-up pass computes the ``(n_points,)`` result vector.  Per-element
arithmetic is exactly the uncompiled expression (IEEE-754 elementwise
ops on float64 match the scalar Python-float ops bit for bit), so the
compiled answers are bit-identical to calling
``ReliabilityBlockDiagram.system_up_probability`` /
``FaultTree.top_event_probability`` in a loop.

Two lowering modes, mirroring the RBD dispatch rule:

* **tree** — no repeated components: the block tree becomes a nested
  spec of ``("leaf", col)``, ``("series", children)``,
  ``("parallel", children)`` and ``("kofn", k, children)`` tuples,
  evaluated with the same sequential product/complement/counting-DP
  recurrences as ``RBDBlock.up_probability``;
* **bdd** — repeated components (or any fault tree): the reachable
  ROBDD nodes are flattened into ``(column, low, high)`` arrays in
  decreasing-level order (children strictly below parents in an ordered
  BDD), and the Shannon expansion
  ``value = (1 - p) * low + p * high`` runs once per node over the whole
  point matrix.

The compiled object holds only plain tuples and numpy arrays — it
pickles cheaply and crosses process boundaries once per worker.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ModelDefinitionError
from ..obs.trace import get_tracer

__all__ = ["CompiledStructureFunction"]

_TERMINAL_SLOTS = 2  # slot 0 = constant 0, slot 1 = constant 1


class CompiledStructureFunction:
    """A structure function lowered to a vectorized evaluation program.

    Build with one of the classmethods (:meth:`from_rbd`,
    :meth:`from_fault_tree`, :meth:`from_bdd`); evaluate either point
    by point with :meth:`prob` (bit-identical to the uncompiled model)
    or for a whole sweep with :meth:`evaluate`.

    Attributes
    ----------
    names:
        Component/variable names in column order for :meth:`evaluate`.
    kind:
        ``"up"`` when the function computes system-up probability from
        component up-probabilities (RBDs); ``"event"`` when it computes
        top-event probability from event occurrence probabilities
        (fault trees / raw BDDs).
    """

    def __init__(
        self,
        names: Sequence[str],
        *,
        tree: Optional[tuple] = None,
        bdd_program: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, int]] = None,
        kind: str = "up",
        missing_message: str = "missing up-probabilities for components: {}",
        required: Optional[Sequence[str]] = None,
    ):
        self.names: Tuple[str, ...] = tuple(names)
        self.kind = kind
        self._col: Dict[str, int] = {name: i for i, name in enumerate(self.names)}
        if (tree is None) == (bdd_program is None):
            raise ModelDefinitionError("exactly one of tree / bdd_program is required")
        self._tree = tree
        self._bdd_program = bdd_program
        self._missing_message = missing_message
        # Names whose absence prob() reports — all of them for RBDs, the
        # BDD support for fault trees (mirroring the uncompiled checks).
        self._required: Tuple[str, ...] = tuple(self.names if required is None else required)

    @property
    def n_components(self) -> int:
        """Number of component/variable columns (the model-scale metric
        a serving registry advertises for non-state-space structure)."""
        return len(self.names)

    # -------------------------------------------------------- construction
    @classmethod
    def from_rbd(cls, rbd) -> "CompiledStructureFunction":
        """Compile a :class:`~repro.nonstate.ReliabilityBlockDiagram`.

        Mirrors the RBD's own dispatch: independent (non-repeating)
        diagrams lower to the tree program, diagrams with repeated
        components build the BDD once and lower that.
        """
        names = list(rbd.components)  # first-occurrence order
        if rbd.has_repeated_components:
            manager, node = rbd._ensure_bdd()
            return cls.from_bdd(manager, node, kind="up",
                                missing_message="missing up-probabilities for components: {}",
                                required=names)
        col = {name: i for i, name in enumerate(names)}
        spec = _lower_block(rbd.root, col)
        return cls(names, tree=spec, kind="up")

    @classmethod
    def from_fault_tree(cls, tree) -> "CompiledStructureFunction":
        """Compile a :class:`~repro.nonstate.FaultTree` top-event function."""
        manager, node = tree._ensure_bdd()
        return cls.from_bdd(manager, node, kind="event",
                            missing_message="missing probabilities for variables: {}")

    @classmethod
    def from_bdd(
        cls,
        manager,
        node: int,
        kind: str = "event",
        missing_message: str = "missing probabilities for variables: {}",
        required: Optional[Sequence[str]] = None,
    ) -> "CompiledStructureFunction":
        """Compile an arbitrary BDD node into the flat-array program.

        Reachable non-terminals are laid out in decreasing-level order;
        in an ordered BDD every child sits strictly deeper than its
        parent, so by the time a node is evaluated both children already
        hold their values.
        """
        order = manager.var_order
        # Collect reachable non-terminals.
        reachable: List[int] = []
        seen = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n in (0, 1) or n in seen:
                continue
            seen.add(n)
            reachable.append(n)
            low, high = manager.children(n)
            stack.append(low)
            stack.append(high)
        reachable.sort(key=manager.level, reverse=True)
        slot_of = {0: 0, 1: 1}
        for i, n in enumerate(reachable):
            slot_of[n] = _TERMINAL_SLOTS + i
        cols = np.empty(len(reachable), dtype=np.int64)
        lows = np.empty(len(reachable), dtype=np.int64)
        highs = np.empty(len(reachable), dtype=np.int64)
        for i, n in enumerate(reachable):
            cols[i] = manager.level(n)
            low, high = manager.children(n)
            lows[i] = slot_of[low]
            highs[i] = slot_of[high]
        root_slot = slot_of[node]
        if required is None:
            required = manager.support(node)
        return cls(order, bdd_program=(cols, lows, highs, root_slot),
                   kind=kind, missing_message=missing_message, required=required)

    # ---------------------------------------------------------- evaluation
    def evaluate(self, probabilities: np.ndarray) -> np.ndarray:
        """Evaluate all sweep points in one vectorized pass.

        Parameters
        ----------
        probabilities:
            ``(n_points, len(self.names))`` matrix; column ``j`` holds
            the probability for ``self.names[j]`` at every point.

        Returns
        -------
        ``(n_points,)`` vector, bit-identical to evaluating the
        uncompiled model at each row.
        """
        P = np.asarray(probabilities, dtype=float)
        if P.ndim != 2 or P.shape[1] != len(self.names):
            raise ModelDefinitionError(
                f"expected an (n_points, {len(self.names)}) matrix, got shape {P.shape}"
            )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.metrics.counter("compile.reuse", kind="structure").inc()
        if self._tree is not None:
            return _eval_tree(self._tree, P)
        return self._eval_bdd(P)

    def _eval_bdd(self, P: np.ndarray) -> np.ndarray:
        cols, lows, highs, root_slot = self._bdd_program
        n_points = P.shape[0]
        vals = np.empty((_TERMINAL_SLOTS + len(cols), n_points))
        vals[0] = 0.0
        vals[1] = 1.0
        for i in range(len(cols)):
            p = P[:, cols[i]]
            vals[_TERMINAL_SLOTS + i] = (1.0 - p) * vals[lows[i]] + p * vals[highs[i]]
        return vals[root_slot].copy()

    def prob(self, probabilities: Mapping[str, float]) -> float:
        """Single-point evaluation with the uncompiled error contract.

        Performs the same missing-name check (same exception, same
        message) as ``system_up_probability`` /
        ``top_event_probability`` before evaluating, then runs the
        vectorized program on a one-row matrix.
        """
        missing = [name for name in self._required if name not in probabilities]
        if missing:
            raise ModelDefinitionError(self._missing_message.format(missing))
        row = np.array([[float(probabilities.get(name, 0.0)) for name in self.names]])
        return float(self.evaluate(row)[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "tree" if self._tree is not None else "bdd"
        return (
            f"CompiledStructureFunction(mode={mode!r}, kind={self.kind!r}, "
            f"n_components={len(self.names)})"
        )


def _lower_block(block, col: Mapping[str, int]) -> tuple:
    """Lower an RBD block tree into the nested evaluation spec."""
    from ..nonstate.rbd import BasicBlock, KofN, Parallel, Series

    if isinstance(block, BasicBlock):
        return ("leaf", col[block.component.name])
    if isinstance(block, Series):
        return ("series", tuple(_lower_block(b, col) for b in block.blocks))
    if isinstance(block, Parallel):
        return ("parallel", tuple(_lower_block(b, col) for b in block.blocks))
    if isinstance(block, KofN):
        return ("kofn", block.k, tuple(_lower_block(b, col) for b in block.blocks))
    raise ModelDefinitionError(f"cannot compile RBD block type {type(block).__name__}")


def _eval_tree(spec: tuple, P: np.ndarray) -> np.ndarray:
    """Vectorized tree evaluation replicating ``RBDBlock.up_probability``.

    Each recurrence applies the identical floating-point expression the
    scalar path applies, in the identical order, just elementwise over
    the point axis.
    """
    tag = spec[0]
    if tag == "leaf":
        return P[:, spec[1]].copy()
    if tag == "series":
        prob = np.ones(P.shape[0])
        for child in spec[1]:
            prob = prob * _eval_tree(child, P)
        return prob
    if tag == "parallel":
        prob_down = np.ones(P.shape[0])
        for child in spec[1]:
            prob_down = prob_down * (1.0 - _eval_tree(child, P))
        return 1.0 - prob_down
    # k-of-n counting DP over the number-up distribution, one row of
    # dist per sweep point.
    k, children = spec[1], spec[2]
    n_points = P.shape[0]
    dist = np.zeros((n_points, len(children) + 1))
    dist[:, 0] = 1.0
    for i, child in enumerate(children):
        p = _eval_tree(child, P)
        upper = i + 1
        dist[:, 1 : upper + 1] = dist[:, 1 : upper + 1] * (1.0 - p)[:, None] + dist[
            :, 0:upper
        ] * p[:, None]
        dist[:, 0] *= 1.0 - p
    return np.sum(dist[:, k:], axis=1)
