"""repro.compile — compiled-model sweep kernels.

Separates **symbolic structure** (built once) from **numeric fill**
(per sweep point):

* :class:`CompiledCTMC` — frozen state order + sparsity pattern,
  ``fill``-into-preallocated-buffers, pattern-reusing solves;
* :class:`CompiledSparseCTMC` — the large-state-space counterpart:
  frozen CSR ``indices``/``indptr`` from one lazy-reachability BFS,
  rate-only refills, preconditioner reuse and warm-started Krylov
  sweeps (:func:`continuation_order` orders campaigns so neighbors
  stay close in parameter space);
* :class:`CompiledStructureFunction` — RBD/fault-tree structure
  lowered once, all sweep points evaluated in one vectorized pass;
* :func:`compile_model` / :func:`supports_compilation` — turn case
  studies and model objects into picklable batch evaluators the engine
  ships once per worker.

All compiled paths are bit-identical to their uncompiled counterparts
(warm-started ``sweep`` chains are the documented tolerance-level
exception); see ``docs/PERFORMANCE.md`` for when compilation pays off.
"""

from .ctmc import CompiledCTMC, Complement, Const, Param, RateTerm, Scaled, Times
from .model import (
    CompiledBladeCenter,
    CompiledCiscoRouter,
    CompiledEvaluator,
    CompiledSunPlatform,
    compile_model,
    supports_compilation,
)
from .sparse import CompiledNFVChain, CompiledSparseCTMC, SweepStats, continuation_order
from .structure import CompiledStructureFunction

__all__ = [
    "RateTerm",
    "Const",
    "Param",
    "Scaled",
    "Times",
    "Complement",
    "CompiledCTMC",
    "CompiledSparseCTMC",
    "CompiledStructureFunction",
    "CompiledEvaluator",
    "CompiledBladeCenter",
    "CompiledCiscoRouter",
    "CompiledSunPlatform",
    "CompiledNFVChain",
    "SweepStats",
    "compile_model",
    "supports_compilation",
    "continuation_order",
]
