"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch library-level failures with a
single ``except`` clause while letting programming errors (``TypeError``
from bad call signatures, etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelDefinitionError",
    "ModelDiagnosticError",
    "DiagnosticWarning",
    "SolverError",
    "ConvergenceError",
    "StateSpaceError",
    "DistributionError",
    "HierarchyError",
    "EvaluationTimeout",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelDefinitionError(ReproError):
    """A model was structurally invalid (bad gate arity, unknown block, ...)."""


class ModelDiagnosticError(ModelDefinitionError):
    """A model failed a ``diagnostics="strict"`` pre-flight lint.

    Raised by the solver front doors and the batch engine when the
    :func:`repro.analyze.analyze` pass finds error-severity diagnostics
    and the caller asked for strict mode.

    Attributes
    ----------
    report:
        The full :class:`~repro.analyze.AnalysisReport` — every
        diagnostic found, not just the errors that triggered the raise.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class DiagnosticWarning(UserWarning):
    """Emitted in ``diagnostics="warn"`` mode when a model lint finds issues."""


class SolverError(ReproError):
    """A numeric solver failed (singular matrix, invalid tolerance, ...)."""


class ConvergenceError(SolverError):
    """An iterative method exhausted its iteration budget without converging.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final residual / change measure observed, when available.
    """

    def __init__(self, message: str, iterations: int = 0, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class StateSpaceError(ReproError):
    """State-space construction failed or exceeded configured limits.

    Attributes
    ----------
    certificate:
        When the sparse pre-flight refused the build *before* BFS, the
        :class:`~repro.analyze.invariants.StructuralAnalysis` whose
        P-invariant state bound proved the net over budget; ``None`` for
        runtime (mid-BFS) failures.
    """

    def __init__(self, message: str, certificate=None):
        super().__init__(message)
        self.certificate = certificate


class DistributionError(ReproError):
    """Invalid distribution parameters or unsupported distribution operation."""


class HierarchyError(ReproError):
    """Invalid hierarchical model composition (unknown import, bad binding, ...)."""


class EvaluationTimeout(ReproError):
    """A batch evaluation exceeded the :class:`~repro.robust.FaultPolicy` time budget.

    The budget is *soft*: a running Python frame cannot be interrupted
    safely, so the evaluation completes and is then flagged — the value
    is discarded and the task handled per the policy's ``on_error``.
    """
