"""repro.serve — the always-on availability-query daemon (E35).

The tutorial's models answer "what is the availability at *this*
parameter point?"; this subsystem keeps those answers a ``curl`` away.
A long-running HTTP daemon — stdlib only, zero new dependencies —
serves availability queries against a :class:`ModelRegistry` of named
models, preloaded with the eight tutorial case studies
(:func:`default_registry`) and open to user registrations.

The serving pipeline reuses the library's own machinery end to end:

* **warm evaluators** — registration compiles what the compile
  subsystem accepts (:func:`~repro.compile.compile_model`), runs the
  static lint (:func:`~repro.analyze.analyze`, strict by default) and
  probes the nominal point, so startup — not the first request — pays
  every avoidable cost;
* **micro-batching** — a :class:`MicroBatcher` coalesces concurrent
  point queries into single :func:`~repro.engine.evaluate_batch` calls
  (deduplicated on :func:`~repro.engine.canonical_point_key`), trading
  a bounded ``flush_window`` of latency for batch throughput;
* **result cache** — a :class:`ResultCache` of per-model
  :class:`~repro.engine.EvaluationCache` LRUs (failures never cached);
* **observability** — per-request spans into a shared
  :class:`~repro.obs.ThreadSafeMetricsRegistry`, exported at
  ``GET /metrics`` in the Prometheus text format
  (:func:`~repro.obs.to_prometheus`); every failure leaves as a
  structured :class:`~repro.robust.ErrorRecord` JSON envelope.

Run it::

    python -m repro.serve --port 8035

    curl -s localhost:8035/models
    curl -s -X POST localhost:8035/models/bladecenter/evaluate \
         -d '{"blade_failure_rate": 0.0001}'

Served values are bit-identical to a direct
:func:`~repro.engine.evaluate_batch` call on the same evaluator — the
daemon adds transport and scheduling, never arithmetic.
"""

from .app import ServeApp, ServeServer, create_server
from .batcher import EvaluationFailed, MicroBatcher
from .cache import ResultCache
from .registry import ModelRegistry, RegisteredModel, UnknownModelError, default_registry
from .schemas import RequestError

__all__ = [
    "ServeApp",
    "ServeServer",
    "create_server",
    "MicroBatcher",
    "EvaluationFailed",
    "ResultCache",
    "ModelRegistry",
    "RegisteredModel",
    "UnknownModelError",
    "default_registry",
    "RequestError",
]
