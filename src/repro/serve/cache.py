"""The daemon's result cache: per-model LRU memo of served points.

A thin aggregation of :class:`~repro.engine.EvaluationCache` instances,
one per model name, keyed on the engine's
:func:`~repro.engine.canonical_point_key` — the *same* function the
batch engine memoizes with, so a point served over HTTP and a point
swept through :func:`~repro.engine.evaluate_batch` share one notion of
identity.  The cache inherits the engine cache's semantics wholesale:
LRU eviction past ``maxsize``, lifetime hit/miss counters, and —
critically for a daemon — **failures are never cached** (a point that
raised is retried on the next request, never replayed from memory).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..engine.cache import EvaluationCache, canonical_point_key
from ..exceptions import ModelDefinitionError

__all__ = ["ResultCache"]


class ResultCache:
    """Per-model LRU result memo for the serve layer.

    Parameters
    ----------
    maxsize:
        Entry bound *per model*; ``0`` disables caching entirely
        (every lookup misses without counting, every store is dropped).

    Examples
    --------
    >>> cache = ResultCache(maxsize=8)
    >>> cache.get("m", {"x": 1.0})
    (False, nan)
    >>> cache.put("m", {"x": 1.0}, 0.5)
    >>> cache.get("m", {"b": 0, "x": 1})   # different point, same model
    (False, nan)
    >>> cache.get("m", {"x": 1})           # canonical: int 1 == float 1.0
    (True, 0.5)
    >>> cache.stats()["hits"], cache.stats()["misses"]
    (1, 2)
    """

    def __init__(self, maxsize: Optional[int] = 1024):
        if maxsize is not None and maxsize < 0:
            raise ModelDefinitionError(f"maxsize must be >= 0 or None, got {maxsize}")
        if maxsize == 0:
            maxsize = None
            self.enabled = False
        else:
            self.enabled = True
        self.maxsize = maxsize
        self._per_model: Dict[str, EvaluationCache] = {}

    def _cache(self, model: str) -> EvaluationCache:
        cache = self._per_model.get(model)
        if cache is None:
            cache = self._per_model[model] = EvaluationCache(maxsize=self.maxsize)
        return cache

    def get(self, model: str, assignment: Mapping[str, float]) -> Tuple[bool, float]:
        """``(found, value)``; counts one hit or miss when enabled."""
        if not self.enabled:
            return False, float("nan")
        cache = self._cache(model)
        found, value = cache.peek(canonical_point_key(assignment))
        if found:
            cache.count_hits(1)
        else:
            cache.count_misses(1)
        return found, value

    def put(self, model: str, assignment: Mapping[str, float], value: float) -> None:
        """Store a *successful* evaluation (callers must not cache failures)."""
        if self.enabled:
            self._cache(model).put(canonical_point_key(assignment), float(value))

    def clear(self) -> None:
        """Drop every entry (counters are kept, engine-cache style)."""
        for cache in self._per_model.values():
            cache.clear()

    def stats(self) -> Dict[str, object]:
        """JSON-safe totals plus a per-model breakdown."""
        per_model = {
            name: {"entries": len(cache), "hits": cache.hits, "misses": cache.misses}
            for name, cache in sorted(self._per_model.items())
        }
        return {
            "enabled": self.enabled,
            "maxsize": self.maxsize,
            "entries": sum(m["entries"] for m in per_model.values()),
            "hits": sum(m["hits"] for m in per_model.values()),
            "misses": sum(m["misses"] for m in per_model.values()),
            "models": per_model,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        totals = self.stats()
        return (
            f"ResultCache({totals['entries']} entries, "
            f"{totals['hits']} hits / {totals['misses']} misses)"
        )
