"""Wire formats of the serve API: parsing, validation, JSON envelopes.

Kept separate from the HTTP plumbing so the contract is testable
without a socket.  Two principles govern every byte that leaves the
daemon:

* **structured errors only** — a client never sees a bare traceback;
  every failure is an :class:`~repro.robust.ErrorRecord` rendered as
  JSON under a conventional ``{"error": {...}}`` envelope, with the
  HTTP status carrying the class of failure (400 malformed, 404
  unknown, 405 method, 422 evaluation failure, 500 internal);
* **round-tripping floats** — values are serialized with
  :func:`json.dumps` defaults (``repr``-based shortest round-trip), so
  a served availability compares bit-identical to the same point from
  a direct :func:`~repro.engine.evaluate_batch` call.

The evaluate request body is either a single JSON object (one
assignment: ``{"x": 1.0}``) or an array of objects (a client batch).
The response mirrors the shape: ``"value"`` for a single point,
``"values"`` for a batch — failed entries are ``null`` with a record in
``"errors"``, the engine's NaN-placeholder convention translated to
valid JSON.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Mapping, Optional, Tuple

from ..robust.policy import ErrorRecord

__all__ = [
    "RequestError",
    "parse_evaluate_request",
    "json_body",
    "error_body",
    "evaluate_response",
]

#: Hard cap on points per request — a parse-time guard so one client
#: cannot park an unbounded batch in the flush queue.
MAX_POINTS_PER_REQUEST = 4096


class RequestError(Exception):
    """A client-side protocol violation: HTTP status + structured record."""

    def __init__(self, status: int, error_type: str, message: str):
        super().__init__(message)
        self.status = int(status)
        self.record = ErrorRecord(index=0, error_type=error_type, message=message)


def _check_assignment(obj, index: int) -> Dict[str, float]:
    if not isinstance(obj, dict):
        raise RequestError(
            400,
            "MalformedRequest",
            f"point {index}: expected a JSON object of parameter values, "
            f"got {type(obj).__name__}",
        )
    out: Dict[str, float] = {}
    for key, value in obj.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise RequestError(
                400,
                "MalformedRequest",
                f"point {index}: parameter {key!r} must be a number, "
                f"got {json.dumps(value)}",
            )
        out[str(key)] = value
    return out


def parse_evaluate_request(body: bytes) -> Tuple[List[Dict[str, float]], bool]:
    """Decode a ``POST .../evaluate`` body into assignments.

    Returns ``(assignments, single)`` where ``single`` records whether
    the client sent one object (response carries ``"value"``) or an
    array (response carries ``"values"``).  Raises :class:`RequestError`
    (status 400) on anything that is not valid JSON of the documented
    shape.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RequestError(400, "MalformedRequest", f"invalid JSON body: {exc}") from None
    if isinstance(payload, dict):
        return [_check_assignment(payload, 0)], True
    if isinstance(payload, list):
        if not payload:
            raise RequestError(400, "MalformedRequest", "empty point list")
        if len(payload) > MAX_POINTS_PER_REQUEST:
            raise RequestError(
                400,
                "MalformedRequest",
                f"{len(payload)} points exceeds the per-request cap of "
                f"{MAX_POINTS_PER_REQUEST}",
            )
        return [_check_assignment(obj, i) for i, obj in enumerate(payload)], False
    raise RequestError(
        400,
        "MalformedRequest",
        "body must be a JSON object (one point) or array of objects (a batch), "
        f"got {type(payload).__name__}",
    )


def json_body(payload) -> bytes:
    """Serialize a response payload (UTF-8, strict JSON — no NaN/Inf)."""
    return json.dumps(payload, allow_nan=False).encode("utf-8")


def error_body(record: ErrorRecord) -> bytes:
    """The ``{"error": {...}}`` envelope for a failure response."""
    return json_body({"error": record.to_dict()})


def _clean(value: float) -> Optional[float]:
    """JSON-safe value: finite floats pass, NaN/Inf become ``null``."""
    return value if math.isfinite(value) else None


def evaluate_response(
    model: str,
    values: List[float],
    errors: List[ErrorRecord],
    single: bool,
    cached: int = 0,
    batched: bool = True,
) -> Dict[str, object]:
    """The success-path payload of ``POST /models/<name>/evaluate``."""
    out: Dict[str, object] = {"model": model}
    if single:
        out["value"] = _clean(values[0]) if values else None
    else:
        out["values"] = [_clean(v) for v in values]
    if errors:
        out["errors"] = [e.to_dict() for e in errors]
    out["stats"] = {
        "n_points": len(values),
        "n_failed": len(errors),
        "cache_hits": cached,
        "batched": batched,
    }
    return out
