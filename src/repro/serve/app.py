"""The daemon itself: route dispatch, request accounting, HTTP plumbing.

:class:`ServeApp` is the transport-free core — ``handle(method, path,
body)`` returns ``(status, content_type, payload)`` — so the whole API
contract is testable without opening a socket.  :func:`create_server`
wraps an app in a stdlib :class:`~http.server.ThreadingHTTPServer`
(zero new dependencies, HTTP/1.1 keep-alive) and returns a
:class:`ServeServer` whose :meth:`~ServeServer.close` shuts down
gracefully: stop accepting, wait out in-flight requests, drain the
micro-batcher, release the socket.

Endpoints
---------
``GET  /``                        endpoint index
``GET  /healthz``                 liveness + model count + uptime
``GET  /metrics``                 Prometheus text exposition
``GET  /models``                  registered model metadata
``GET  /models/<name>``           one model: parameters, defaults, size,
                                  registration diagnostics
``POST /models/<name>/evaluate``  one assignment object or an array

Every failure is a structured :class:`~repro.robust.ErrorRecord` JSON
envelope — a client never sees a bare traceback.
"""

from __future__ import annotations

import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter, time
from typing import Dict, List, Optional, Tuple

from ..engine.batch import evaluate_batch
from ..obs.export import to_prometheus
from ..obs.metrics import ThreadSafeMetricsRegistry
from ..obs.trace import Tracer
from ..robust.policy import ErrorRecord, FaultPolicy
from .batcher import EvaluationFailed, MicroBatcher
from .cache import ResultCache
from .registry import ModelRegistry, UnknownModelError, default_registry
from .schemas import (
    RequestError,
    error_body,
    evaluate_response,
    json_body,
    parse_evaluate_request,
)

__all__ = ["ServeApp", "ServeServer", "create_server"]

JSON = "application/json"
PROMETHEUS = "text/plain; version=0.0.4"

Response = Tuple[int, str, bytes]


class ServeApp:
    """The availability-query daemon, minus the transport.

    Parameters
    ----------
    registry:
        Models to serve; defaults to :func:`~repro.serve.default_registry`
        (the eight tutorial case studies).
    batching:
        Route point queries through a :class:`~repro.serve.MicroBatcher`
        (the default).  ``False`` evaluates synchronously in the request
        thread — one engine call per request, the naive baseline the E35
        benchmark compares against.
    max_batch / flush_window:
        Micro-batcher knobs (points per flush, seconds a burst waits).
    cache_size:
        Per-model result-cache bound; ``0`` disables the cache.
    executor / n_jobs:
        Engine fan-out per flush (default: serial, which keeps served
        values bit-identical to direct :func:`~repro.engine.evaluate_batch`).
    metrics:
        Metrics sink; defaults to a fresh
        :class:`~repro.obs.ThreadSafeMetricsRegistry` (request threads
        mutate it concurrently).
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        batching: bool = True,
        max_batch: int = 64,
        flush_window: float = 0.002,
        cache_size: int = 1024,
        executor=None,
        n_jobs: Optional[int] = None,
        metrics=None,
    ):
        self.registry = registry if registry is not None else default_registry()
        self.metrics = metrics if metrics is not None else ThreadSafeMetricsRegistry()
        self.cache = ResultCache(maxsize=cache_size)
        self.executor = executor
        self.n_jobs = n_jobs
        self.batcher: Optional[MicroBatcher] = (
            MicroBatcher(
                self.registry,
                max_batch=max_batch,
                flush_window=flush_window,
                executor=executor,
                n_jobs=n_jobs,
                metrics=self.metrics,
            )
            if batching
            else None
        )
        self.started_at = time()
        #: ring of recent request span dicts (debug/test introspection)
        self.recent_spans: "deque" = deque(maxlen=32)
        self._inflight = 0
        self._closing = False
        self._inflight_cond = threading.Condition()

    # ------------------------------------------------------------ dispatch
    def handle(self, method: str, path: str, body: bytes = b"") -> Response:
        """One request in, one ``(status, content_type, payload)`` out."""
        with self._inflight_cond:
            if self._closing:
                record = ErrorRecord(
                    index=0, error_type="ServerClosing", message="server is shutting down"
                )
                return 503, JSON, error_body(record)
            self._inflight += 1
        started = perf_counter()
        path = path.split("?", 1)[0].rstrip("/") or "/"
        route = path
        # Per-request private tracer over the shared thread-safe metrics
        # registry: Tracer itself is single-thread by design.
        tracer = Tracer("serve.request", metrics=self.metrics)
        tracer.root.set(method=method, path=path)
        try:
            try:
                status, content_type, payload, route = self._route(
                    method, path, body, tracer
                )
            except RequestError as exc:
                status, content_type, payload = exc.status, JSON, error_body(exc.record)
            except UnknownModelError as exc:
                record = ErrorRecord(
                    index=0, error_type="UnknownModel", message=str(exc)
                )
                status, content_type, payload = 404, JSON, error_body(record)
            except Exception as exc:
                # Never a bare traceback on the wire: internal failures
                # leave as a structured ErrorRecord envelope.
                record = ErrorRecord(
                    index=0, error_type=type(exc).__name__, message=str(exc)
                )
                status, content_type, payload = 500, JSON, error_body(record)
            duration = perf_counter() - started
            tracer.root.set(status=status)
            tracer.close()
            self.recent_spans.append(tracer.root.to_dict())
            self.metrics.counter(
                "serve.requests", route=route, status=str(status)
            ).inc()
            self.metrics.histogram("serve.request.seconds", route=route).observe(
                duration
            )
            return status, content_type, payload
        finally:
            with self._inflight_cond:
                self._inflight -= 1
                self._inflight_cond.notify_all()

    def _route(
        self, method: str, path: str, body: bytes, tracer: Tracer
    ) -> Tuple[int, str, bytes, str]:
        """Returns ``(status, content_type, payload, route_label)``."""
        if path == "/":
            self._require(method, "GET", path)
            return 200, JSON, json_body(self._index()), "/"
        if path == "/healthz":
            self._require(method, "GET", path)
            return 200, JSON, json_body(self._health()), "/healthz"
        if path == "/metrics":
            self._require(method, "GET", path)
            text = to_prometheus(self.metrics) + "\n"
            return 200, PROMETHEUS, text.encode("utf-8"), "/metrics"
        if path == "/models":
            self._require(method, "GET", path)
            return 200, JSON, json_body({"models": self.registry.describe()}), "/models"
        if path.startswith("/models/"):
            rest = path[len("/models/") :]
            if "/" not in rest:
                self._require(method, "GET", path)
                entry = self.registry.get(rest)
                return 200, JSON, json_body(entry.describe(verbose=True)), "/models/{name}"
            name, _, action = rest.partition("/")
            if action == "evaluate":
                self._require(method, "POST", path)
                status, payload = self._evaluate(name, body, tracer)
                return status, JSON, json_body(payload), "/models/{name}/evaluate"
        raise RequestError(404, "UnknownEndpoint", f"no route for {path!r}")

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise RequestError(
                405, "MethodNotAllowed", f"{path} only accepts {expected}, got {method}"
            )

    # ------------------------------------------------------------- routes
    def _index(self) -> Dict[str, object]:
        return {
            "service": "repro.serve",
            "endpoints": [
                "GET /healthz",
                "GET /metrics",
                "GET /models",
                "GET /models/{name}",
                "POST /models/{name}/evaluate",
            ],
            "models": self.registry.names(),
        }

    def _health(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "models": len(self.registry),
            "batching": self.batcher is not None,
            "cache": self.cache.stats(),
            "uptime_s": time() - self.started_at,
        }

    def _evaluate(
        self, name: str, body: bytes, tracer: Tracer
    ) -> Tuple[int, Dict[str, object]]:
        entry = self.registry.get(name)
        assignments, single = parse_evaluate_request(body)
        n = len(assignments)
        values: List[float] = [float("nan")] * n
        errors: List[ErrorRecord] = []
        misses: List[int] = []
        cache_hits = 0
        with tracer.span("serve.evaluate", model=name, points=n):
            for i, assignment in enumerate(assignments):
                found, value = self.cache.get(name, assignment)
                if found:
                    values[i] = value
                    cache_hits += 1
                else:
                    misses.append(i)
            if cache_hits:
                self.metrics.counter("serve.cache.hits", model=name).inc(cache_hits)
            if misses:
                self.metrics.counter("serve.cache.misses", model=name).inc(len(misses))
                if self.batcher is not None:
                    futures = self.batcher.submit_many(
                        name, [assignments[i] for i in misses]
                    )
                    for i, future in zip(misses, futures):
                        try:
                            values[i] = future.result()
                        except EvaluationFailed as exc:
                            errors.append(exc.record.with_index(i))
                        else:
                            self.cache.put(name, assignments[i], values[i])
                else:
                    result = evaluate_batch(
                        entry.evaluate,
                        [assignments[i] for i in misses],
                        executor=self.executor,
                        n_jobs=self.n_jobs,
                        policy=FaultPolicy("skip"),
                        tracer=tracer,
                    )
                    failed = {e.index: e for e in result.errors}
                    for pos, i in enumerate(misses):
                        if pos in failed:
                            errors.append(failed[pos].with_index(i))
                        else:
                            values[i] = float(result.outputs[pos])
                            self.cache.put(name, assignments[i], values[i])
        errors.sort(key=lambda e: e.index)
        # A fully-failed single-point request is a client-visible 422;
        # partial batch failure stays 200 with per-point records.
        status = 422 if (single and errors) else 200
        payload = evaluate_response(
            name,
            values,
            errors,
            single,
            cached=cache_hits,
            batched=self.batcher is not None,
        )
        return status, payload

    # -------------------------------------------------------------- close
    def close(self, timeout: float = 10.0) -> None:
        """Drain and stop: refuse new requests, wait out in-flight ones,
        then drain the micro-batcher.  Idempotent."""
        deadline = perf_counter() + timeout
        with self._inflight_cond:
            self._closing = True
            while self._inflight > 0:
                remaining = deadline - perf_counter()
                if remaining <= 0:
                    break
                self._inflight_cond.wait(remaining)
        if self.batcher is not None:
            self.batcher.close(drain=True, timeout=max(0.0, deadline - perf_counter()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "batched" if self.batcher is not None else "naive"
        return f"ServeApp({len(self.registry)} models, {mode})"


class _Handler(BaseHTTPRequestHandler):
    """Thin adapter: socket in, ``app.handle`` out.  Subclassed per
    server by :func:`create_server` to bind the ``app`` attribute."""

    protocol_version = "HTTP/1.1"  # keep-alive: required for sane qps
    app: ServeApp

    def _dispatch(self) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length > 0 else b""
            status, content_type, payload = self.app.handle(
                self.command, self.path, body
            )
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
        except Exception as exc:
            # Transport-level failure (client hung up mid-write, bad
            # framing): best-effort ErrorRecord response, never a dump.
            record = ErrorRecord(
                index=0, error_type=type(exc).__name__, message=str(exc)
            )
            try:
                payload = error_body(record)
                self.send_response(500)
                self.send_header("Content-Type", JSON)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)
            except OSError:
                pass  # connection already gone

    do_GET = _dispatch
    do_POST = _dispatch
    do_PUT = _dispatch
    do_DELETE = _dispatch

    def log_message(self, format: str, *args) -> None:
        # Access logging goes through the metrics registry, not stderr.
        pass


class ServeServer:
    """A running daemon: threaded HTTP server + graceful shutdown.

    Use as a context manager (tests) or via :meth:`serve_forever`
    (the CLI)::

        with create_server(ServeApp(), port=0) as server:
            url = f"http://{server.host}:{server.port}"
    """

    def __init__(self, app: ServeApp, host: str = "127.0.0.1", port: int = 8000):
        handler = type("BoundHandler", (_Handler,), {"app": app})
        self.app = app
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` ephemeral binding)."""
        return self._httpd.server_address[1]

    def start(self) -> "ServeServer":
        """Serve on a background thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serve-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (or Ctrl-C)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        """Graceful shutdown: stop accepting, drain, release the socket."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self.app.close()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "ServeServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServeServer(http://{self.host}:{self.port}, {self.app!r})"


def create_server(
    app: Optional[ServeApp] = None,
    host: str = "127.0.0.1",
    port: int = 8000,
) -> ServeServer:
    """Bind a :class:`ServeServer` (``port=0`` picks an ephemeral port).

    The server is bound but not yet serving: call
    :meth:`~ServeServer.start` (background thread) or
    :meth:`~ServeServer.serve_forever` (foreground), or enter it as a
    context manager.
    """
    return ServeServer(app if app is not None else ServeApp(), host=host, port=port)
