"""CLI entry point: ``python -m repro.serve [--port N] [--selfcheck]``.

Without ``--selfcheck`` this binds the daemon and serves until
interrupted — the first ``SIGTERM``/``SIGINT`` drains in-flight
requests and exits 0, a second force-exits
(:class:`~repro.robust.GracefulShutdown`).  With ``--selfcheck`` it instead boots a complete server
on an ephemeral port, exercises every registered model over real HTTP —
values must match direct evaluation bit-for-bit — probes the error
paths (malformed JSON, unknown model) and the ``/metrics`` endpoint,
shuts down gracefully, and exits non-zero on any mismatch.  CI runs the
selfcheck (see ``tools/check.sh``) so the serving stack cannot rot
silently.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
from typing import List, Optional, Tuple

from ..robust.shutdown import GracefulShutdown
from .app import ServeApp, create_server
from .registry import default_registry

__all__ = ["main", "selfcheck"]


def _request(
    host: str, port: int, method: str, path: str, body: Optional[bytes] = None
) -> Tuple[int, bytes]:
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        connection.request(
            method, path, body=body, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def selfcheck(quiet: bool = False) -> int:
    """Boot, exercise and drain a full server; 0 on success."""

    def say(line: str) -> None:
        if not quiet:
            print(line)

    failures: List[str] = []

    def check(ok: bool, what: str) -> None:
        say(f"  {'ok' if ok else 'FAIL'}: {what}")
        if not ok:
            failures.append(what)

    say("selfcheck: building default registry (compile + analyze + probe)")
    registry = default_registry()
    app = ServeApp(registry)
    with create_server(app, port=0) as server:
        host, port = server.host, server.port
        say(f"selfcheck: serving on http://{host}:{port}")

        status, body = _request(host, port, "GET", "/healthz")
        check(status == 200 and json.loads(body)["status"] == "ok", "GET /healthz")

        status, body = _request(host, port, "GET", "/models")
        listed = {m["name"] for m in json.loads(body)["models"]}
        check(
            status == 200 and listed == set(registry.names()),
            f"GET /models lists {len(listed)} models",
        )

        for name in registry.names():
            status, body = _request(host, port, "GET", f"/models/{name}")
            described = json.loads(body)
            check(
                status == 200 and "size" in described and "diagnostics" in described,
                f"GET /models/{name} (size + diagnostics)",
            )
            expected = float(registry.get(name).evaluate({}))
            status, body = _request(
                host, port, "POST", f"/models/{name}/evaluate", b"{}"
            )
            served = json.loads(body).get("value")
            check(
                status == 200 and served == expected,
                f"POST /models/{name}/evaluate matches direct evaluation "
                f"({served!r} == {expected!r})",
            )

        # client batch + result-cache round trip on one model
        name = registry.names()[0]
        points = json.dumps([{}, {}, {}]).encode()
        status, body = _request(host, port, "POST", f"/models/{name}/evaluate", points)
        payload = json.loads(body)
        check(
            status == 200
            and len(payload["values"]) == 3
            and len(set(payload["values"])) == 1
            and payload["stats"]["cache_hits"] >= 2,
            f"batched POST /models/{name}/evaluate (3 points, cache hits)",
        )

        status, body = _request(host, port, "POST", f"/models/{name}/evaluate", b"not json")
        check(
            status == 400 and json.loads(body)["error"]["error_type"] == "MalformedRequest",
            "malformed JSON -> 400 structured error",
        )
        status, body = _request(host, port, "POST", "/models/nope/evaluate", b"{}")
        check(
            status == 404 and json.loads(body)["error"]["error_type"] == "UnknownModel",
            "unknown model -> 404 structured error",
        )

        status, body = _request(host, port, "GET", "/metrics")
        text = body.decode()
        check(
            status == 200
            and "# TYPE repro_serve_requests counter" in text
            and "repro_serve_batch_flushes" in text,
            "GET /metrics exposes serve counters",
        )
    say("selfcheck: graceful shutdown complete")
    if failures:
        say(f"selfcheck: {len(failures)} failure(s)")
        return 1
    say("selfcheck: all checks passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Always-on availability-query daemon over the case-study registry.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default %(default)s)")
    parser.add_argument("--port", type=int, default=8035, help="bind port, 0 = ephemeral (default %(default)s)")
    parser.add_argument(
        "--models",
        nargs="+",
        metavar="NAME",
        help="serve only these registered case studies (default: all eight)",
    )
    parser.add_argument(
        "--no-batching",
        action="store_true",
        help="evaluate in the request thread (naive mode, no micro-batching)",
    )
    parser.add_argument("--max-batch", type=int, default=64, help="points per flush (default %(default)s)")
    parser.add_argument(
        "--flush-window",
        type=float,
        default=0.002,
        help="seconds a burst waits for company (default %(default)s)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="result-cache entries per model, 0 disables (default %(default)s)",
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default=None,
        help="engine executor per flush (default: serial)",
    )
    parser.add_argument("--n-jobs", type=int, default=None, help="engine workers per flush")
    parser.add_argument(
        "--diagnostics",
        choices=("ignore", "warn", "strict"),
        default="strict",
        help="registration-time lint enforcement (default %(default)s)",
    )
    parser.add_argument(
        "--selfcheck",
        action="store_true",
        help="boot an ephemeral server, exercise every endpoint, exit 0/1",
    )
    parser.add_argument("-q", "--quiet", action="store_true", help="suppress progress output")
    args = parser.parse_args(argv)

    if args.selfcheck:
        return selfcheck(quiet=args.quiet)

    registry = default_registry(diagnostics=args.diagnostics)
    if args.models:
        registry = registry.subset(args.models)
    app = ServeApp(
        registry,
        batching=not args.no_batching,
        max_batch=args.max_batch,
        flush_window=args.flush_window,
        cache_size=args.cache_size,
        executor=args.executor,
        n_jobs=args.n_jobs,
    )
    server = create_server(app, host=args.host, port=args.port)
    if not args.quiet:
        print(
            f"repro.serve: {len(registry)} model(s) on "
            f"http://{server.host}:{server.port} (Ctrl-C to stop)"
        )

    # Two-stage shutdown: the first SIGTERM/SIGINT drains in-flight
    # requests and exits 0; a second signal force-exits.  server.close()
    # calls shutdown(), which deadlocks if invoked from the thread inside
    # serve_forever() — hence the drain thread.
    def drain() -> None:
        if not args.quiet:
            print("repro.serve: draining and shutting down")
        threading.Thread(target=server.close, name="repro-serve-drain").start()

    shutdown = GracefulShutdown(on_first=drain)
    with shutdown:
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - direct ^C without handler
            drain()
        finally:
            server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
