"""The serving model registry: named, analyzed, warm evaluators.

A :class:`ModelRegistry` maps model names to :class:`RegisteredModel`
entries.  Registration is the expensive moment by design — the daemon
pays once, at startup, for everything a query should never wait on:

* **compilation** — evaluators the compile subsystem knows
  (:func:`~repro.compile.supports_compilation`) are compiled eagerly,
  so every request hits a warm
  :class:`~repro.compile.CompiledEvaluator` with its structure frozen
  and its steady-state memo shared across requests;
* **diagnostics** — when an analyzable form exists (the compiled
  evaluator, or an explicit ``model=``), :func:`repro.analyze.analyze`
  runs once and the :class:`~repro.analyze.AnalysisReport` is stored on
  the entry; ``diagnostics="strict"`` (the default) refuses to register
  a model with error-severity findings, so a broken model is rejected
  at startup instead of serving wrong numbers;
* **probing** — the evaluator is called once on its defaults, so an
  evaluator that cannot even produce its nominal point fails
  registration, not the first customer request.

:func:`default_registry` preloads the nine tutorial case studies.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..analyze import DIAGNOSTIC_MODES, AnalysisReport, analyze
from ..compile import compile_model, supports_compilation
from ..exceptions import DiagnosticWarning, ModelDefinitionError

__all__ = ["RegisteredModel", "ModelRegistry", "UnknownModelError", "default_registry"]


def _net_of(model):
    """The underlying PetriNet of a net-backed model, else None."""
    candidate = model
    srn = getattr(candidate, "srn", None)  # SRNDependabilityModel
    if srn is not None:
        candidate = srn
    net = getattr(candidate, "net", None)  # StochasticRewardNet
    if net is not None:
        candidate = net
    if hasattr(candidate, "_places") and hasattr(candidate, "_transitions"):
        return candidate
    return None


class UnknownModelError(KeyError):
    """Lookup of a model name the registry does not hold.

    A ``KeyError`` subclass so plain dict-style handling works; the
    serve app maps it to a 404 with the known names in the message.
    """

    def __init__(self, name: str, known: List[str]):
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return f"unknown model {self.name!r}; registered models: {self.known}"


class RegisteredModel:
    """One servable model: a warm evaluator plus its advertised metadata.

    Attributes
    ----------
    name:
        Registry key (URL path segment, so keep it token-like).
    evaluate:
        ``assignment -> float`` — the *warm* form actually served
        (the compiled evaluator when compilation applied).
    description:
        One human line for ``GET /models``.
    parameters:
        Accepted assignment keys, when known (compiled evaluators
        advertise them; opaque callables may pass them explicitly).
    defaults:
        The nominal parameter point (also the registration probe point).
    compiled:
        Whether ``evaluate`` is a :class:`~repro.compile.CompiledEvaluator`.
    size:
        Model-scale metadata (``n_states``, ``n_components``, ...) —
        taken from the compiled evaluator's
        :meth:`~repro.compile.CompiledEvaluator.size` or supplied by the
        registrant for opaque evaluators; ``None`` when unknown.  For
        net-backed models (Petri nets / SRNs, lazy ones in particular)
        registration adds ``predicted_states``: the P-invariant
        state-space bound from
        :func:`repro.analyze.invariants.structural_analysis`, computed
        without building reachability.
    report:
        The registration-time :class:`~repro.analyze.AnalysisReport`
        (``None`` when nothing analyzable was available).
    """

    def __init__(
        self,
        name: str,
        evaluate: Callable[[Mapping[str, float]], float],
        description: str = "",
        parameters: Tuple[str, ...] = (),
        defaults: Optional[Dict[str, float]] = None,
        compiled: bool = False,
        size: Optional[Dict[str, int]] = None,
        report: Optional[AnalysisReport] = None,
    ):
        self.name = name
        self.evaluate = evaluate
        self.description = description
        self.parameters = tuple(parameters)
        self.defaults = dict(defaults or {})
        self.compiled = compiled
        self.size = dict(size) if size is not None else None
        self.report = report

    def describe(self, verbose: bool = False) -> Dict[str, object]:
        """JSON-safe metadata (``GET /models`` row; full with ``verbose``)."""
        out: Dict[str, object] = {
            "name": self.name,
            "description": self.description,
            "compiled": self.compiled,
            "parameters": list(self.parameters),
        }
        if self.size is not None:
            out["size"] = dict(self.size)
        if verbose:
            out["defaults"] = dict(self.defaults)
            out["diagnostics"] = (
                self.report.to_dict() if self.report is not None else None
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "compiled" if self.compiled else "callable"
        return f"RegisteredModel({self.name!r}, {tag})"


class ModelRegistry:
    """Name → :class:`RegisteredModel` map with eager warm-up.

    Not request-hot: registration happens at startup (or through an
    explicit admin action), lookups afterwards are plain dict reads —
    the registry is therefore safe to share across request threads as
    long as registration is not concurrent with serving.
    """

    def __init__(self):
        self._models: "Dict[str, RegisteredModel]" = {}

    def register(
        self,
        name: str,
        evaluator: Callable[[Mapping[str, float]], float],
        description: str = "",
        parameters: Tuple[str, ...] = (),
        defaults: Optional[Dict[str, float]] = None,
        size: Optional[Dict[str, int]] = None,
        model=None,
        diagnostics: str = "strict",
        query: Optional[str] = "steady_state",
        probe: bool = True,
    ) -> RegisteredModel:
        """Warm, analyze and admit one model; returns the entry.

        Parameters
        ----------
        evaluator:
            ``assignment -> float``.  Anything
            :func:`~repro.compile.supports_compilation` accepts is
            compiled eagerly and the compiled form is served.
        model:
            Optional analyzable model object (CTMC, hierarchy, fault
            tree, ...) standing in for an opaque evaluator, so the
            registration lint has something to look at.
        diagnostics:
            ``"strict"`` (default) rejects error-severity findings with
            :class:`~repro.exceptions.ModelDiagnosticError`; ``"warn"``
            emits a :class:`~repro.exceptions.DiagnosticWarning`;
            ``"ignore"`` still analyzes (the report is served) but
            never complains.
        probe:
            Evaluate the ``defaults`` point once before admitting.
        """
        if not name or "/" in name:
            raise ModelDefinitionError(
                f"model name must be a non-empty path segment, got {name!r}"
            )
        if name in self._models:
            raise ModelDefinitionError(f"model {name!r} is already registered")
        if diagnostics not in DIAGNOSTIC_MODES:
            raise ModelDefinitionError(
                f"diagnostics must be one of {DIAGNOSTIC_MODES}, got {diagnostics!r}"
            )

        evaluate = evaluator
        compiled = False
        if supports_compilation(evaluator):
            evaluate = compile_model(evaluator)
            compiled = True
            if not parameters:
                parameters = tuple(evaluate.parameters)
            if size is None:
                size = evaluate.size()

        analyzable = model if model is not None else (evaluate if compiled else None)
        report: Optional[AnalysisReport] = None
        if analyzable is not None:
            report = analyze(analyzable, query=query)
            if diagnostics == "strict":
                report.raise_if_errors()
            elif diagnostics == "warn" and report.diagnostics:
                warnings.warn(
                    f"serve.register({name!r}): "
                    + "; ".join(d.render() for d in report.diagnostics),
                    DiagnosticWarning,
                    stacklevel=2,
                )

        net = _net_of(analyzable)
        if net is not None:
            from ..analyze import structural_analysis

            prediction = structural_analysis(net)
            if prediction.complete and prediction.state_bound is not None:
                size = dict(size) if size is not None else {}
                size.setdefault("predicted_states", prediction.state_bound)

        entry = RegisteredModel(
            name,
            evaluate,
            description=description,
            parameters=parameters,
            defaults=defaults,
            compiled=compiled,
            size=size,
            report=report,
        )
        if probe:
            # Fail registration, not the first request: one evaluation
            # at the nominal point proves the evaluator actually runs.
            float(entry.evaluate(entry.defaults))
        self._models[name] = entry
        return entry

    def get(self, name: str) -> RegisteredModel:
        """The entry for ``name``; :class:`UnknownModelError` otherwise."""
        try:
            return self._models[name]
        except KeyError:
            raise UnknownModelError(name, self.names()) from None

    def subset(self, names) -> "ModelRegistry":
        """A new registry sharing the named (already-warm) entries.

        Entries are reused, not re-registered — no recompilation, no
        re-analysis.  Unknown names raise :class:`UnknownModelError`.
        """
        registry = ModelRegistry()
        for name in names:
            registry._models[name] = self.get(name)
        return registry

    def names(self) -> List[str]:
        """Registered names, sorted."""
        return sorted(self._models)

    def describe(self) -> List[Dict[str, object]]:
        """``GET /models`` payload: one metadata row per model."""
        return [self._models[name].describe() for name in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self):
        return iter(self.names())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelRegistry({self.names()})"


def default_registry(diagnostics: str = "strict", probe: bool = True) -> ModelRegistry:
    """A registry preloaded with the nine tutorial case studies.

    The three compiled studies (BladeCenter, Cisco, Sun) serve their
    warm :class:`~repro.compile.CompiledEvaluator` singletons; the
    remaining six serve their module-level ``evaluate_availability``
    wrappers with an explicit analyzable model and honest hand-counted
    ``size`` metadata.  The NFV chain is the scalable entry: its
    evaluator regenerates the lazy sparse chain per parameter point, so
    callers can dial ``n_vnfs``/``replicas`` up to 10^5+ states.
    """
    from ..casestudies import (
        bladecenter,
        boeing,
        cisco,
        nfvchain,
        rejuvenation,
        sip,
        sun,
        telecom,
        wfs,
    )

    registry = ModelRegistry()

    def add(name, evaluator, description, defaults=None, **kwargs):
        registry.register(
            name,
            evaluator,
            description=description,
            defaults=defaults,
            diagnostics=diagnostics,
            probe=probe,
            **kwargs,
        )

    add(
        "bladecenter",
        bladecenter.evaluate_availability,
        "IBM BladeCenter hierarchical availability (E19, compiled)",
        defaults=asdict(bladecenter.BladeCenterParameters()),
    )
    add(
        "cisco",
        cisco.evaluate_availability,
        "Cisco 12000 GSR router availability (E18, compiled)",
        defaults=asdict(cisco.CiscoParameters()),
    )
    add(
        "sun",
        sun.evaluate_availability,
        "Sun Microsystems platform availability (E20, compiled)",
        defaults=asdict(sun.SunParameters()),
    )

    wfs_params = wfs.WFSParameters()
    add(
        "wfs",
        wfs.evaluate_availability,
        "Workstations & file server hierarchy (E15)",
        parameters=tuple(wfs.WFSParameters.__dataclass_fields__),
        defaults=asdict(wfs_params),
        model=wfs.build_workstation_pool(wfs_params),
        # pool birth-death chain (n+1 states) + 2-state file server
        size={
            "n_states": (wfs_params.n_workstations + 1) + 2,
            "n_chains": 2,
            "n_components": 0,
            "n_structure_functions": 0,
        },
    )
    sip_params = sip.SIPParameters()
    add(
        "sip",
        sip.evaluate_availability,
        "SIP on IBM WebSphere composite availability (E21)",
        parameters=tuple(sip.SIPParameters.__dataclass_fields__),
        defaults=asdict(sip_params),
        model=sip.build_sip_service(sip_params),
        # leaf chains: software 3 + hardware 2 + proxy pair 5 states;
        # RBDs: node series (2 blocks) + service (proxies + n nodes)
        size={
            "n_states": 3 + 2 + 5,
            "n_chains": 3,
            "n_components": 2 + 1 + sip_params.n_nodes,
            "n_structure_functions": 2,
        },
    )
    add(
        "telecom",
        telecom.evaluate_availability,
        "Telephone switching DPM / availability (E22)",
        parameters=tuple(telecom.TelecomParameters.__dataclass_fields__),
        defaults=asdict(telecom.TelecomParameters()),
        model=telecom.build_switch(telecom.TelecomParameters()),
        size={
            "n_states": 5,
            "n_chains": 1,
            "n_components": 0,
            "n_structure_functions": 0,
        },
    )
    add(
        "rejuvenation",
        rejuvenation.evaluate_availability,
        "Software rejuvenation MRGP availability (E12)",
        parameters=tuple(rejuvenation.RejuvenationParameters.__dataclass_fields__)
        + ("interval",),
        defaults={
            **asdict(rejuvenation.RejuvenationParameters()),
            "interval": rejuvenation.DEFAULT_INTERVAL,
        },
        model=rejuvenation.build_rejuvenation_mrgp(rejuvenation.DEFAULT_INTERVAL),
        query=None,
        size={
            "n_states": 4,
            "n_chains": 1,
            "n_components": 0,
            "n_structure_functions": 0,
        },
    )
    nfv_spec = nfvchain.NFVChainSpec()
    add(
        "nfvchain",
        nfvchain.evaluate_availability,
        "NFV service-chain availability, scalable lazy-sparse SRN (E37)",
        parameters=tuple(nfvchain.NFVChainSpec.__dataclass_fields__),
        defaults=asdict(nfv_spec),
        # The lazy SRN itself, not its chain: registration must size the
        # model structurally, never by building reachability.
        model=nfvchain.build_nfv_srn(nfv_spec),
        size={
            "n_states": nfvchain.state_count(nfv_spec),
            "n_chains": 1,
            "n_components": 0,
            "n_structure_functions": 0,
        },
    )
    boeing_defaults = dict(boeing.PARAMETER_DEFAULTS)
    add(
        "boeing",
        boeing.evaluate_availability,
        "Boeing-style current-return-network fault tree (E05)",
        parameters=tuple(boeing.PARAMETER_DEFAULTS),
        defaults=boeing_defaults,
        model=boeing.generate_boeing_style_tree(),
        query=None,
        size={
            "n_states": 0,
            "n_chains": 0,
            "n_components": boeing_defaults["n_sections"]
            * boeing_defaults["events_per_section"]
            + boeing_defaults["shared_events"],
            "n_structure_functions": 1,
        },
    )
    return registry
