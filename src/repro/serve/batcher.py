"""Request micro-batching: coalesce concurrent point queries.

Every availability query is one ``assignment -> float`` evaluation, but
the engine's fixed per-call overhead (tracer setup, stats, dispatch) and
the compiled evaluators' vectorized ``evaluate_many`` both reward larger
batches.  A :class:`MicroBatcher` therefore queues incoming points and a
single flush thread drains the queue in bursts: a burst closes when
either ``max_batch`` points are waiting or ``flush_window`` seconds have
passed since the burst opened — the classic latency/throughput knob.

Within one flush, points are grouped by model and **deduplicated** on
:func:`~repro.engine.canonical_point_key`, so a hot point asked by N
concurrent clients is evaluated once and fanned back out to all N
futures.  Each model group is evaluated through one
:func:`~repro.engine.evaluate_batch` call under ``FaultPolicy("skip")``:
a poisoned point fails *its* future with :class:`EvaluationFailed`
(carrying the structured :class:`~repro.robust.ErrorRecord`) and never
takes the rest of the burst down.

Determinism: with the default serial executor the batched path runs the
exact same evaluator calls as a direct :func:`~repro.engine.evaluate_batch`,
so served values are bit-identical to offline sweeps.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Tuple

from ..engine.batch import evaluate_batch
from ..engine.cache import canonical_point_key
from ..obs.trace import Tracer
from ..robust.policy import ErrorRecord, FaultPolicy
from .registry import ModelRegistry

__all__ = ["EvaluationFailed", "MicroBatcher"]


class EvaluationFailed(Exception):
    """One point's evaluation failed; carries the engine's record."""

    def __init__(self, record: ErrorRecord):
        super().__init__(str(record))
        self.record = record


class _Pending:
    """One queued point: destination model, assignment, result future."""

    __slots__ = ("model", "assignment", "key", "future")

    def __init__(self, model: str, assignment: Mapping[str, float]):
        self.model = model
        self.assignment = dict(assignment)
        self.key = canonical_point_key(assignment)
        self.future: "Future[float]" = Future()


class MicroBatcher:
    """Queue + flush thread coalescing point queries into engine batches.

    Parameters
    ----------
    registry:
        The :class:`~repro.serve.ModelRegistry` whose evaluators run.
    max_batch:
        Flush as soon as this many points are waiting.
    flush_window:
        Maximum seconds a burst stays open waiting for company; the
        latency cost of batching is bounded by this number.
    executor / n_jobs:
        Forwarded to :func:`~repro.engine.evaluate_batch` per flush.
        The default (serial) keeps served values bit-identical to
        direct evaluation.
    metrics:
        A metrics registry (ideally a
        :class:`~repro.obs.ThreadSafeMetricsRegistry`) receiving the
        ``serve.batch.*`` instruments and the engine's own counters.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch: int = 64,
        flush_window: float = 0.002,
        executor=None,
        n_jobs: Optional[int] = None,
        metrics=None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if flush_window < 0:
            raise ValueError(f"flush_window must be >= 0, got {flush_window}")
        self.registry = registry
        self.max_batch = int(max_batch)
        self.flush_window = float(flush_window)
        self.executor = executor
        self.n_jobs = n_jobs
        # Private tracer: Tracer is single-thread by design and only the
        # flush thread records into this one; the *metrics* registry is
        # the shared (thread-safe) sink the /metrics endpoint exports.
        self._tracer = Tracer("serve.batcher", metrics=metrics)
        self._cond = threading.Condition()
        self._pending: List[_Pending] = []
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------- submit
    def submit(self, model: str, assignment: Mapping[str, float]) -> "Future[float]":
        """Queue one point; the returned future resolves to its value.

        Raises ``RuntimeError`` after :meth:`close`; the future fails
        with :class:`EvaluationFailed` when the evaluation does.
        """
        self.registry.get(model)  # unknown names fail fast, in the caller
        item = _Pending(model, assignment)
        with self._cond:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            self._pending.append(item)
            self._cond.notify_all()
        return item.future

    def submit_many(
        self, model: str, assignments: List[Mapping[str, float]]
    ) -> List["Future[float]"]:
        """Queue a client batch atomically (one lock round-trip)."""
        self.registry.get(model)
        items = [_Pending(model, a) for a in assignments]
        with self._cond:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            self._pending.extend(items)
            self._cond.notify_all()
        return [item.future for item in items]

    # -------------------------------------------------------- flush thread
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending:
                    return  # closed and drained
                # A burst is open: hold it for the flush window unless
                # the size cap fills it (or shutdown drains it) first.
                deadline = perf_counter() + self.flush_window
                while len(self._pending) < self.max_batch and not self._closed:
                    remaining = deadline - perf_counter()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                burst, self._pending = self._pending, []
            self._flush(burst)

    def _flush(self, burst: List[_Pending]) -> None:
        metrics = self._tracer.metrics
        metrics.counter("serve.batch.flushes").inc()
        metrics.histogram("serve.batch.size").observe(len(burst))
        by_model: Dict[str, List[_Pending]] = {}
        for item in burst:
            by_model.setdefault(item.model, []).append(item)
        for model, items in by_model.items():
            self._flush_model(model, items)
        # The tracer is per-flush scratch: metrics persist in the shared
        # registry, but keeping every span tree would grow without bound
        # in a long-running daemon.
        self._tracer.root.children.clear()

    def _flush_model(self, model: str, items: List[_Pending]) -> None:
        metrics = self._tracer.metrics
        # Dedupe: a hot point asked N times in one burst runs once.
        unique: Dict[Tuple, List[_Pending]] = {}
        for item in items:
            unique.setdefault(item.key, []).append(item)
        n_deduped = len(items) - len(unique)
        if n_deduped:
            metrics.counter("serve.batch.deduplicated", model=model).inc(n_deduped)
        points = [group[0].assignment for group in unique.values()]
        try:
            entry = self.registry.get(model)
            result = evaluate_batch(
                entry.evaluate,
                points,
                executor=self.executor,
                n_jobs=self.n_jobs,
                policy=FaultPolicy("skip"),
                tracer=self._tracer,
            )
        except Exception as exc:
            # Batch-level failure (not a per-point one): every waiter in
            # the group gets the same structured ErrorRecord.
            record = ErrorRecord(index=0, error_type=type(exc).__name__, message=str(exc))
            for group in unique.values():
                for item in group:
                    item.future.set_exception(EvaluationFailed(record))
            return
        errors = {error.index: error for error in result.errors}
        for i, group in enumerate(unique.values()):
            if i in errors:
                failure = EvaluationFailed(errors[i])
                for item in group:
                    item.future.set_exception(failure)
            else:
                value = float(result.outputs[i])
                for item in group:
                    item.future.set_result(value)

    # -------------------------------------------------------------- close
    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the flush thread; idempotent.

        With ``drain=True`` (the graceful-shutdown path) everything
        queued at close time is still evaluated and its futures resolve
        normally; with ``drain=False`` queued futures fail immediately
        with :class:`EvaluationFailed`.
        """
        with self._cond:
            if self._closed:
                self._cond.notify_all()
            else:
                self._closed = True
                if not drain:
                    abandoned = ErrorRecord(
                        index=0,
                        error_type="ServerClosed",
                        message="server shut down before this point was evaluated",
                    )
                    for item in self._pending:
                        item.future.set_exception(EvaluationFailed(abandoned))
                    self._pending = []
                self._cond.notify_all()
        self._thread.join(timeout)

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (
            f"MicroBatcher(max_batch={self.max_batch}, "
            f"flush_window={self.flush_window}, {state})"
        )
