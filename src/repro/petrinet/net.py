"""Petri-net structure: places, transitions, arcs, markings (system S14).

The net description follows the stochastic reward net (SRN) dialect the
tutorial uses (SPNP-style): timed transitions with possibly
marking-dependent rates, immediate transitions with weights and
priorities, input/output/inhibitor arcs with multiplicities, and guard
functions — everything needed to generate the underlying CTMC
automatically rather than by hand.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..exceptions import ModelDefinitionError

__all__ = ["Marking", "Place", "Transition", "PetriNet"]

RateLike = Union[float, Callable[["Marking"], float]]
Guard = Callable[["Marking"], bool]


class Marking:
    """An immutable token assignment, addressable by place name.

    Examples
    --------
    >>> m = Marking(("p", "q"), (2, 0))
    >>> m["p"], m["q"]
    (2, 0)
    """

    __slots__ = ("_places", "_tokens", "_index")

    def __init__(self, places: Tuple[str, ...], tokens: Tuple[int, ...]):
        if len(places) != len(tokens):
            raise ModelDefinitionError("places and token counts differ in length")
        self._places = places
        self._tokens = tokens
        self._index: Optional[Dict[str, int]] = None

    def _idx(self, name: str) -> int:
        if self._index is None:
            self._index = {p: i for i, p in enumerate(self._places)}
        try:
            return self._index[name]
        except KeyError:
            raise ModelDefinitionError(f"unknown place: {name!r}") from None

    def __getitem__(self, name: str) -> int:
        return self._tokens[self._idx(name)]

    @property
    def tokens(self) -> Tuple[int, ...]:
        """Raw token tuple in place order."""
        return self._tokens

    @property
    def places(self) -> Tuple[str, ...]:
        """Place names in order."""
        return self._places

    def with_delta(self, deltas: Mapping[int, int]) -> "Marking":
        """New marking with token deltas applied by place index."""
        tokens = list(self._tokens)
        for idx, delta in deltas.items():
            tokens[idx] += delta
            if tokens[idx] < 0:
                raise ModelDefinitionError("token count went negative; arcs are inconsistent")
        return Marking(self._places, tuple(tokens))

    def as_dict(self) -> Dict[str, int]:
        """Mapping of place name to token count."""
        return dict(zip(self._places, self._tokens))

    def __eq__(self, other) -> bool:
        return isinstance(other, Marking) and self._tokens == other._tokens

    def __hash__(self) -> int:
        return hash(self._tokens)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inside = ", ".join(f"{p}={n}" for p, n in zip(self._places, self._tokens) if n)
        return f"Marking({inside or 'empty'})"


class Place:
    """A token container."""

    def __init__(self, name: str, initial: int = 0):
        if not name:
            raise ModelDefinitionError("place name must be non-empty")
        if initial < 0 or int(initial) != initial:
            raise ModelDefinitionError(f"initial tokens must be a non-negative int, got {initial}")
        self.name = str(name)
        self.initial = int(initial)


class Transition:
    """A timed or immediate transition.

    Timed transitions carry an exponential ``rate`` (possibly
    marking-dependent); immediate transitions carry a ``weight`` used for
    probabilistic resolution among equal-priority enabled immediates, and
    a ``priority`` (higher fires first).  Guards are extra boolean
    enabling conditions on the marking.
    """

    def __init__(
        self,
        name: str,
        rate: Optional[RateLike] = None,
        weight: Optional[RateLike] = None,
        priority: int = 0,
        guard: Optional[Guard] = None,
    ):
        if (rate is None) == (weight is None):
            raise ModelDefinitionError(
                f"transition {name!r}: specify exactly one of rate (timed) or weight (immediate)"
            )
        self.name = str(name)
        self.rate = rate
        self.weight = weight
        self.priority = int(priority)
        self.guard = guard
        # (place index, multiplicity) triples filled in by PetriNet
        self.inputs: List[Tuple[int, int]] = []
        self.outputs: List[Tuple[int, int]] = []
        self.inhibitors: List[Tuple[int, int]] = []

    @property
    def is_immediate(self) -> bool:
        """True for immediate (zero-delay) transitions."""
        return self.weight is not None

    def is_enabled(self, marking: Marking) -> bool:
        """Structural + guard enabling test in the given marking."""
        for idx, mult in self.inputs:
            if marking.tokens[idx] < mult:
                return False
        for idx, mult in self.inhibitors:
            if marking.tokens[idx] >= mult:
                return False
        if self.guard is not None and not self.guard(marking):
            return False
        return True

    def fire(self, marking: Marking) -> Marking:
        """Marking reached by firing this transition."""
        deltas: Dict[int, int] = {}
        for idx, mult in self.inputs:
            deltas[idx] = deltas.get(idx, 0) - mult
        for idx, mult in self.outputs:
            deltas[idx] = deltas.get(idx, 0) + mult
        return marking.with_delta(deltas)

    def rate_in(self, marking: Marking) -> float:
        """Effective firing rate in ``marking`` (timed transitions)."""
        value = self.rate(marking) if callable(self.rate) else float(self.rate)
        if value < 0:
            raise ModelDefinitionError(f"transition {self.name!r} produced a negative rate")
        return value

    def weight_in(self, marking: Marking) -> float:
        """Effective weight in ``marking`` (immediate transitions)."""
        value = self.weight(marking) if callable(self.weight) else float(self.weight)
        if value < 0:
            raise ModelDefinitionError(f"transition {self.name!r} produced a negative weight")
        return value


class PetriNet:
    """A stochastic Petri net / stochastic reward net description.

    Examples
    --------
    An M/M/1/K queue::

        >>> net = PetriNet()
        >>> _ = net.add_place("queue", initial=0)
        >>> _ = net.add_timed_transition("arrive", rate=2.0)
        >>> _ = net.add_output_arc("arrive", "queue")
        >>> _ = net.add_inhibitor_arc("arrive", "queue", 5)   # K = 5
        >>> _ = net.add_timed_transition("serve", rate=3.0)
        >>> _ = net.add_input_arc("serve", "queue")
        >>> net.initial_marking()["queue"]
        0
    """

    def __init__(self):
        self._places: List[Place] = []
        self._place_index: Dict[str, int] = {}
        self._transitions: Dict[str, Transition] = {}

    # --------------------------------------------------------------- build
    def add_place(self, name: str, initial: int = 0) -> "PetriNet":
        """Add a place with an initial token count."""
        if name in self._place_index:
            raise ModelDefinitionError(f"duplicate place name: {name!r}")
        self._place_index[name] = len(self._places)
        self._places.append(Place(name, initial))
        return self

    def _add_transition(self, transition: Transition) -> "PetriNet":
        if transition.name in self._transitions:
            raise ModelDefinitionError(f"duplicate transition name: {transition.name!r}")
        self._transitions[transition.name] = transition
        return self

    def add_timed_transition(
        self, name: str, rate: RateLike, guard: Optional[Guard] = None
    ) -> "PetriNet":
        """Add an exponentially timed transition (rate may be callable)."""
        return self._add_transition(Transition(name, rate=rate, guard=guard))

    def add_immediate_transition(
        self,
        name: str,
        weight: RateLike = 1.0,
        priority: int = 1,
        guard: Optional[Guard] = None,
    ) -> "PetriNet":
        """Add an immediate transition with weight and priority."""
        return self._add_transition(
            Transition(name, weight=weight, priority=priority, guard=guard)
        )

    def _place_idx(self, name: str) -> int:
        try:
            return self._place_index[name]
        except KeyError:
            raise ModelDefinitionError(f"unknown place: {name!r}") from None

    def _transition(self, name: str) -> Transition:
        try:
            return self._transitions[name]
        except KeyError:
            raise ModelDefinitionError(f"unknown transition: {name!r}") from None

    def add_input_arc(self, transition: str, place: str, multiplicity: int = 1) -> "PetriNet":
        """Arc place → transition consuming ``multiplicity`` tokens."""
        self._check_multiplicity(multiplicity)
        self._transition(transition).inputs.append((self._place_idx(place), int(multiplicity)))
        return self

    def add_output_arc(self, transition: str, place: str, multiplicity: int = 1) -> "PetriNet":
        """Arc transition → place producing ``multiplicity`` tokens."""
        self._check_multiplicity(multiplicity)
        self._transition(transition).outputs.append((self._place_idx(place), int(multiplicity)))
        return self

    def add_inhibitor_arc(self, transition: str, place: str, multiplicity: int = 1) -> "PetriNet":
        """Inhibitor arc: transition disabled when place holds >= multiplicity tokens."""
        self._check_multiplicity(multiplicity)
        self._transition(transition).inhibitors.append((self._place_idx(place), int(multiplicity)))
        return self

    @staticmethod
    def _check_multiplicity(multiplicity: int) -> None:
        if multiplicity < 1 or int(multiplicity) != multiplicity:
            raise ModelDefinitionError(f"multiplicity must be a positive int, got {multiplicity}")

    # -------------------------------------------------------------- access
    @property
    def places(self) -> List[str]:
        """Place names in order."""
        return [p.name for p in self._places]

    @property
    def transitions(self) -> Dict[str, Transition]:
        """Transitions by name."""
        return dict(self._transitions)

    def initial_marking(self) -> Marking:
        """The marking given by every place's initial token count."""
        return Marking(
            tuple(p.name for p in self._places), tuple(p.initial for p in self._places)
        )

    def enabled_transitions(self, marking: Marking) -> List[Transition]:
        """Transitions enabled in ``marking``, immediates filtered by priority.

        When any immediate transition is enabled, only the highest-priority
        enabled immediates are returned (the marking is *vanishing*);
        otherwise the enabled timed transitions are returned (*tangible*).
        """
        enabled = [t for t in self._transitions.values() if t.is_enabled(marking)]
        immediates = [t for t in enabled if t.is_immediate]
        if immediates:
            top = max(t.priority for t in immediates)
            return [t for t in immediates if t.priority == top]
        return [t for t in enabled if not t.is_immediate]

    def is_vanishing(self, marking: Marking) -> bool:
        """True when an immediate transition is enabled in ``marking``."""
        return any(
            t.is_immediate and t.is_enabled(marking) for t in self._transitions.values()
        )
