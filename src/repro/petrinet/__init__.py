"""Stochastic Petri nets / stochastic reward nets (system S14 in DESIGN.md).

A concise net description — places, timed and immediate transitions,
input/output/inhibitor arcs, guards, marking-dependent rates — from which
the underlying CTMC is generated automatically, with vanishing-marking
elimination.  This is the tutorial's answer to hand-building large
dependent-failure Markov chains.
"""

from .net import Marking, PetriNet, Place, Transition
from .reachability import ReachabilityResult, build_reachability
from .srn import SRNDependabilityModel, StochasticRewardNet

__all__ = [
    "PetriNet",
    "Place",
    "Transition",
    "Marking",
    "ReachabilityResult",
    "build_reachability",
    "StochasticRewardNet",
    "SRNDependabilityModel",
]
