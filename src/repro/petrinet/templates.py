"""Reusable SRN templates for common availability patterns.

The tutorial's SRN examples keep re-drawing the same net shapes; these
builders capture them once with documented parameters:

* :func:`machine_repairman` — n machines, c repair crews;
* :func:`redundant_pool_with_coverage` — active pool with immediate
  covered/uncovered branching on each failure;
* :func:`queue_with_breakdowns` — finite queue whose server fails and is
  repaired (the classic performability example).

Each returns a plain :class:`~repro.petrinet.net.PetriNet`, so callers
can extend the nets before analysis.
"""

from __future__ import annotations

from .._validation import check_probability, check_rate
from ..exceptions import ModelDefinitionError
from .net import PetriNet

__all__ = [
    "machine_repairman",
    "redundant_pool_with_coverage",
    "queue_with_breakdowns",
]


def machine_repairman(
    n_machines: int,
    failure_rate: float,
    repair_rate: float,
    n_crews: int = 1,
) -> PetriNet:
    """The machine-repairman model: ``n`` machines, ``c`` repair crews.

    Failure rate scales with the number of up machines; repair rate with
    ``min(#down, n_crews)``.

    Examples
    --------
    >>> net = machine_repairman(4, failure_rate=0.1, repair_rate=1.0, n_crews=2)
    >>> net.initial_marking()["up"]
    4
    """
    if n_machines < 1:
        raise ModelDefinitionError(f"need at least one machine, got {n_machines}")
    if n_crews < 1:
        raise ModelDefinitionError(f"need at least one crew, got {n_crews}")
    check_rate(failure_rate, "failure_rate")
    check_rate(repair_rate, "repair_rate")
    net = PetriNet()
    net.add_place("up", n_machines)
    net.add_place("down", 0)
    net.add_timed_transition("fail", rate=lambda m: failure_rate * m["up"])
    net.add_input_arc("fail", "up")
    net.add_output_arc("fail", "down")
    net.add_timed_transition(
        "repair", rate=lambda m: repair_rate * min(m["down"], n_crews)
    )
    net.add_input_arc("repair", "down")
    net.add_output_arc("repair", "up")
    return net


def redundant_pool_with_coverage(
    n_units: int,
    failure_rate: float,
    repair_rate: float,
    coverage: float,
    uncovered_recovery_rate: float,
) -> PetriNet:
    """Active redundant pool with imperfect failure coverage.

    On each unit failure an immediate branch decides: *covered* (the
    failure is isolated; the unit goes to ordinary ``repairing``) with
    probability ``coverage``, or *uncovered* — the whole pool is taken
    down (all up tokens captured into ``outage``) until a recovery
    transition restores them.

    The marking predicate ``m["outage"] == 0 and m["up"] >= k`` is the
    usual up-condition.
    """
    if n_units < 1:
        raise ModelDefinitionError(f"need at least one unit, got {n_units}")
    check_rate(failure_rate, "failure_rate")
    check_rate(repair_rate, "repair_rate")
    check_probability(coverage, "coverage")
    check_rate(uncovered_recovery_rate, "uncovered_recovery_rate")
    net = PetriNet()
    net.add_place("up", n_units)
    net.add_place("deciding", 0)
    net.add_place("repairing", 0)
    net.add_place("outage", 0)

    net.add_timed_transition("fail", rate=lambda m: failure_rate * m["up"])
    net.add_input_arc("fail", "up")
    net.add_output_arc("fail", "deciding")

    net.add_immediate_transition("covered", weight=coverage)
    net.add_input_arc("covered", "deciding")
    net.add_output_arc("covered", "repairing")

    net.add_immediate_transition("uncovered", weight=1.0 - coverage)
    net.add_input_arc("uncovered", "deciding")
    net.add_output_arc("uncovered", "outage")

    net.add_timed_transition("repair", rate=lambda m: repair_rate * m["repairing"])
    net.add_input_arc("repair", "repairing")
    net.add_output_arc("repair", "up")

    net.add_timed_transition("recover", rate=uncovered_recovery_rate)
    net.add_input_arc("recover", "outage")
    net.add_output_arc("recover", "repairing")
    return net


def queue_with_breakdowns(
    capacity: int,
    arrival_rate: float,
    service_rate: float,
    failure_rate: float,
    repair_rate: float,
) -> PetriNet:
    """M/M/1/K queue whose server breaks down and is repaired.

    The classical performability example: service proceeds only while
    the server token sits in ``server_up``; jobs keep arriving (and being
    rejected beyond ``capacity``) during repair.

    Examples
    --------
    >>> net = queue_with_breakdowns(5, 1.0, 2.0, 0.01, 0.5)
    >>> sorted(net.places)
    ['queue', 'server_down', 'server_up']
    """
    if capacity < 1:
        raise ModelDefinitionError(f"capacity must be >= 1, got {capacity}")
    for value, name in (
        (arrival_rate, "arrival_rate"),
        (service_rate, "service_rate"),
        (failure_rate, "failure_rate"),
        (repair_rate, "repair_rate"),
    ):
        check_rate(value, name)
    net = PetriNet()
    net.add_place("queue", 0)
    net.add_place("server_up", 1)
    net.add_place("server_down", 0)

    net.add_timed_transition("arrive", rate=arrival_rate)
    net.add_output_arc("arrive", "queue")
    net.add_inhibitor_arc("arrive", "queue", capacity)

    net.add_timed_transition("serve", rate=service_rate, guard=lambda m: m["server_up"] == 1)
    net.add_input_arc("serve", "queue")

    net.add_timed_transition("break", rate=failure_rate)
    net.add_input_arc("break", "server_up")
    net.add_output_arc("break", "server_down")

    net.add_timed_transition("fix", rate=repair_rate)
    net.add_input_arc("fix", "server_down")
    net.add_output_arc("fix", "server_up")
    return net
