"""Reachability analysis and vanishing-marking elimination (system S14).

Generates the tangible reachability graph of a stochastic Petri net and
its underlying CTMC.  Markings that enable immediate transitions
(*vanishing* markings) are eliminated on the fly: each timed firing that
lands on a vanishing marking is redistributed over the tangible markings
ultimately reached, weighting by the immediate transitions' normalized
weights.  Vanishing loops are resolved exactly by solving the linear
system within each vanishing strongly connected component, so nets with
cyclic immediate behaviour (e.g. weighted retries) are handled, provided
the loop is not probability-preserving (a "timeless trap").
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

import numpy as np

from ..exceptions import ModelDefinitionError, StateSpaceError
from ..markov.ctmc import CTMC
from .net import Marking, PetriNet

__all__ = ["ReachabilityResult", "build_reachability"]

_DEFAULT_MAX_MARKINGS = 200_000
_LOOP_TOLERANCE = 1e-12


class ReachabilityResult:
    """Outcome of reachability analysis.

    Attributes
    ----------
    chain:
        CTMC over tangible markings.
    initial:
        Initial tangible-marking distribution (a single marking when the
        net's initial marking is tangible, otherwise the distribution the
        immediate transitions resolve it to).
    tangible:
        Tangible markings in discovery order.
    n_vanishing:
        Number of distinct vanishing markings eliminated.
    """

    def __init__(
        self,
        chain: CTMC,
        initial: Dict[Marking, float],
        tangible: List[Marking],
        n_vanishing: int,
    ):
        self.chain = chain
        self.initial = initial
        self.tangible = tangible
        self.n_vanishing = n_vanishing


def _resolve_vanishing(
    net: PetriNet,
    start: Marking,
    max_markings: int,
) -> Dict[Marking, float]:
    """Distribution over tangible markings reached from a vanishing marking.

    Performs a local expansion of the vanishing subgraph reachable from
    ``start`` and solves ``(I - V) x = b`` where ``V`` is the
    vanishing→vanishing jump matrix — exact even with immediate loops.
    """
    order: List[Marking] = []
    index: Dict[Marking, int] = {}
    tangible_hits: Dict[Marking, Dict[int, float]] = {}
    queue = deque([start])
    index[start] = 0
    order.append(start)
    edges: List[List[Tuple[int, float]]] = []

    while queue:
        marking = queue.popleft()
        i = index[marking]
        while len(edges) <= i:
            edges.append([])
        enabled = net.enabled_transitions(marking)
        weights = [(t, t.weight_in(marking)) for t in enabled]
        total = sum(w for _, w in weights)
        if total <= 0:
            raise StateSpaceError(
                f"vanishing marking {marking!r} has zero total immediate weight"
            )
        for transition, weight in weights:
            if weight <= 0:
                continue
            prob = weight / total
            successor = transition.fire(marking)
            if net.is_vanishing(successor):
                j = index.get(successor)
                if j is None:
                    if len(index) >= max_markings:
                        raise StateSpaceError(
                            f"vanishing expansion exceeded {max_markings} markings"
                        )
                    j = len(order)
                    index[successor] = j
                    order.append(successor)
                    queue.append(successor)
                edges[i].append((j, prob))
            else:
                tangible_hits.setdefault(successor, {}).setdefault(i, 0.0)
                tangible_hits[successor][i] += prob

    n = len(order)
    if n == 1 and not edges[0]:
        # Pure tangible fan-out from a single vanishing marking.
        return {m: probs[0] for m, probs in tangible_hits.items()}

    v = np.zeros((n, n))
    for i, outs in enumerate(edges):
        for j, prob in outs:
            v[i, j] += prob
    system = np.eye(n) - v
    try:
        inv_first_row = np.linalg.solve(system.T, _unit(n, 0))
    except np.linalg.LinAlgError as exc:
        raise StateSpaceError(
            "timeless trap: immediate transitions form a probability-preserving loop"
        ) from exc
    # inv_first_row[i] = expected visits to vanishing marking i from start.
    if np.any(~np.isfinite(inv_first_row)):
        raise StateSpaceError("vanishing-loop resolution produced non-finite visit counts")

    result: Dict[Marking, float] = {}
    for tangible_marking, contributions in tangible_hits.items():
        prob = sum(inv_first_row[i] * p for i, p in contributions.items())
        if prob > _LOOP_TOLERANCE:
            result[tangible_marking] = prob
    total = sum(result.values())
    if abs(total - 1.0) > 1e-6:
        raise StateSpaceError(
            f"vanishing resolution lost probability mass (total {total}); "
            "check for timeless traps or dead immediate branches"
        )
    return {m: p / total for m, p in result.items()}


def _unit(n: int, i: int) -> np.ndarray:
    vec = np.zeros(n)
    vec[i] = 1.0
    return vec


def build_reachability(
    net: PetriNet,
    max_markings: int = _DEFAULT_MAX_MARKINGS,
    lazy: bool = False,
    **lazy_options,
) -> "ReachabilityResult":
    """Generate the tangible reachability CTMC of ``net``.

    Parameters
    ----------
    net:
        The Petri net.
    max_markings:
        Safety cap on explored markings; exceeding it raises
        :class:`~repro.exceptions.StateSpaceError` (the state-space
        explosion the tutorial warns about, made explicit).
    lazy:
        ``False`` (default) builds a dict-based
        :class:`~repro.markov.CTMC` — right for chains whose markings
        you want as live labels.  ``True`` streams the same BFS into
        CSR triplet buffers via
        :func:`repro.sparse.build_sparse_reachability` and returns a
        :class:`~repro.sparse.SparseReachabilityResult` whose ``chain``
        is a :class:`~repro.sparse.SparseCTMC`; identical state order,
        10^6+ marking capacity, bounded memory.  Extra keyword options
        (``memory_limit_mb``, ``chunk``, ``up``) are forwarded.
    """
    if lazy:
        from ..sparse.reachability import build_sparse_reachability

        return build_sparse_reachability(net, max_markings, **lazy_options)
    if lazy_options:
        raise ModelDefinitionError(
            f"options {sorted(lazy_options)} require lazy=True"
        )
    initial = net.initial_marking()
    vanishing_seen = set()

    if net.is_vanishing(initial):
        vanishing_seen.add(initial)
        initial_distribution = _resolve_vanishing(net, initial, max_markings)
    else:
        initial_distribution = {initial: 1.0}

    chain = CTMC()
    tangible: List[Marking] = []
    seen: Dict[Marking, bool] = {}
    queue = deque()
    for marking in initial_distribution:
        seen[marking] = True
        tangible.append(marking)
        chain.add_state(marking)
        queue.append(marking)

    vanishing_cache: Dict[Marking, Dict[Marking, float]] = {}

    while queue:
        marking = queue.popleft()
        for transition in net.enabled_transitions(marking):
            rate = transition.rate_in(marking)
            if rate <= 0.0:
                continue
            successor = transition.fire(marking)
            if net.is_vanishing(successor):
                if successor not in vanishing_cache:
                    vanishing_seen.add(successor)
                    vanishing_cache[successor] = _resolve_vanishing(
                        net, successor, max_markings
                    )
                targets = vanishing_cache[successor]
            else:
                targets = {successor: 1.0}
            for target, prob in targets.items():
                if target == marking:
                    continue  # rate flows back: no net transition
                if target not in seen:
                    if len(seen) >= max_markings:
                        raise StateSpaceError(
                            f"reachability exceeded {max_markings} tangible markings "
                            "(state-space explosion); simplify the net or raise the cap"
                        )
                    seen[target] = True
                    tangible.append(target)
                    chain.add_state(target)
                    queue.append(target)
                chain.add_transition(marking, target, rate * prob)

    return ReachabilityResult(chain, initial_distribution, tangible, len(vanishing_seen))
