"""Stochastic reward nets: measures on top of the generated CTMC.

An SRN is a stochastic Petri net plus reward functions on markings.  The
class here runs reachability once (cached), then exposes the full measure
suite — steady-state and transient reward rates, availability via an
up-condition predicate, MTTF via absorbing analysis — and the
:class:`~repro.core.model.DependabilityModel` adapter used by the
hierarchy engine.

Two generation modes share one measure API.  The default (eager) mode
builds a dict-based :class:`~repro.markov.CTMC` whose states are live
:class:`~repro.petrinet.net.Marking` objects — right up to ~10^5
markings.  ``lazy=True`` streams the same BFS into CSR triplet buffers
(:func:`repro.sparse.build_sparse_reachability`) and holds a
:class:`~repro.sparse.SparseCTMC` instead: markings become integer
states with lazily-materialized labels, ``steady_state`` returns the
probability *vector*, and reward measures stream over the label
sequence — the dict-of-markings materialization is exactly what the
lazy mode exists to avoid.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np
from scipy import sparse as _sp
from scipy.sparse import linalg as _spla

from ..core.model import DependabilityModel
from ..exceptions import ModelDefinitionError, SolverError, StateSpaceError
from ..markov.ctmc import CTMC
from .net import Marking, PetriNet
from .reachability import ReachabilityResult, build_reachability

__all__ = ["StochasticRewardNet", "SRNDependabilityModel"]

RewardFunction = Callable[[Marking], float]
Condition = Callable[[Marking], bool]


class StochasticRewardNet:
    """Measure layer over a :class:`~repro.petrinet.net.PetriNet`.

    Parameters
    ----------
    net:
        The Petri net description.
    max_markings:
        Reachability safety cap (default 200 000 eager, 5 000 000 lazy).
    lazy:
        Generate the reachability graph directly into a
        :class:`~repro.sparse.SparseCTMC` (CSR generator, interned
        markings, bounded memory) instead of a dict-built CTMC.  All
        measures keep working; ``steady_state`` returns a vector
        instead of a marking→probability dict.
    **lazy_options:
        Forwarded to :func:`repro.sparse.build_sparse_reachability`
        (``memory_limit_mb``, ``chunk``, ``up``).

    Examples
    --------
    >>> from repro.petrinet import PetriNet
    >>> net = PetriNet()
    >>> _ = net.add_place("queue")
    >>> _ = net.add_timed_transition("arrive", rate=1.0)
    >>> _ = net.add_output_arc("arrive", "queue")
    >>> _ = net.add_inhibitor_arc("arrive", "queue", 3)
    >>> _ = net.add_timed_transition("serve", rate=2.0)
    >>> _ = net.add_input_arc("serve", "queue")
    >>> srn = StochasticRewardNet(net)
    >>> srn.n_tangible
    4
    """

    def __init__(
        self,
        net: PetriNet,
        max_markings: Optional[int] = None,
        lazy: bool = False,
        **lazy_options,
    ):
        self.net = net
        self.lazy = bool(lazy)
        if max_markings is None:
            max_markings = 5_000_000 if lazy else 200_000
        self._max_markings = int(max_markings)
        if lazy_options and not lazy:
            raise ModelDefinitionError(
                f"options {sorted(lazy_options)} require lazy=True"
            )
        self._lazy_options = dict(lazy_options)
        self._reach = None

    # --------------------------------------------------------------- graph
    @property
    def reachability(self):
        """The (cached) tangible reachability result.

        A :class:`~repro.petrinet.reachability.ReachabilityResult` in
        eager mode, a :class:`~repro.sparse.SparseReachabilityResult`
        in lazy mode — both carry ``chain`` / ``initial`` /
        ``tangible`` / ``n_vanishing``.
        """
        if self._reach is None:
            self._reach = build_reachability(
                self.net, self._max_markings, lazy=self.lazy, **self._lazy_options
            )
        return self._reach

    @property
    def chain(self):
        """The generated chain: :class:`~repro.markov.CTMC` (eager) or
        :class:`~repro.sparse.SparseCTMC` (lazy)."""
        return self.reachability.chain

    def predict_state_space(self):
        """Size the net *without* building reachability.

        Runs the structural pass
        (:func:`repro.analyze.invariants.structural_analysis`) on the
        underlying net and returns the
        :class:`~repro.analyze.invariants.StructuralAnalysis` — its
        ``state_bound`` is the P-invariant upper bound on the tangible
        marking count (``None`` when the net has no structural bound),
        the same number the lazy build's pre-flight checks against
        ``max_markings``.  Costs milliseconds and never explores a
        single marking.
        """
        from ..analyze.invariants import structural_analysis

        return structural_analysis(self.net)

    @property
    def n_tangible(self) -> int:
        """Number of tangible markings."""
        return len(self.reachability.tangible)

    @property
    def n_vanishing(self) -> int:
        """Number of vanishing markings eliminated during generation."""
        return self.reachability.n_vanishing

    @property
    def initial_distribution(self) -> Dict[Marking, float]:
        """Initial probability over tangible markings."""
        return dict(self.reachability.initial)

    def _initial_vector(self) -> np.ndarray:
        return self.chain.initial_vector

    # ------------------------------------------------------------ measures
    def steady_state(self) -> "Union[Dict[Marking, float], np.ndarray]":
        """Stationary distribution over tangible markings.

        Eager mode returns a marking → probability dict; lazy mode
        returns the probability vector in state-index order (align with
        :attr:`chain` ``.states`` for labels).
        """
        return self.chain.steady_state()

    def expected_reward_rate(self, reward: RewardFunction) -> float:
        """Steady-state expected reward rate of a marking reward function."""
        if self.lazy:
            pi = self.chain.steady_state()
            rewards = np.fromiter(
                (reward(m) for m in self.chain.states), dtype=float, count=len(pi)
            )
            return float(pi @ rewards)
        pi = self.steady_state()
        return sum(reward(marking) * prob for marking, prob in pi.items())

    def expected_tokens(self, place: str) -> float:
        """Steady-state expected token count in ``place``."""
        return self.expected_reward_rate(lambda m: float(m[place]))

    def probability(self, condition: Condition) -> float:
        """Steady-state probability that the marking satisfies ``condition``."""
        return self.expected_reward_rate(lambda m: 1.0 if condition(m) else 0.0)

    def throughput(self, transition: str) -> float:
        """Steady-state firing rate of a timed transition.

        ``Σ_m π(m) · rate(m) · [transition enabled in m]``.
        """
        tr = self.net.transitions.get(transition)
        if tr is None:
            raise ModelDefinitionError(f"unknown transition: {transition!r}")
        if tr.is_immediate:
            raise ModelDefinitionError(
                f"throughput of immediate transition {transition!r} is not defined "
                "on the tangible chain"
            )
        return self.expected_reward_rate(
            lambda m: tr.rate_in(m) if tr.is_enabled(m) else 0.0
        )

    def transient_reward_rate(self, reward: RewardFunction, times) -> np.ndarray:
        """Expected reward rate at each time in ``times``."""
        ts = np.atleast_1d(np.asarray(times, dtype=float))
        if self.lazy:
            probs = self.chain.transient(ts)
        else:
            probs = self.chain.transient(ts, self.initial_distribution)
        rewards = np.array([reward(m) for m in self.chain.states])
        return probs @ rewards

    def transient_probability(self, condition: Condition, times) -> np.ndarray:
        """Probability the condition holds at each time in ``times``."""
        return self.transient_reward_rate(lambda m: 1.0 if condition(m) else 0.0, times)

    def mean_time_to(self, condition: Condition) -> float:
        """Mean first-passage time into the set of markings satisfying ``condition``."""
        if self.lazy:
            targets = np.fromiter(
                (condition(m) for m in self.chain.states),
                dtype=bool,
                count=self.chain.n_states,
            )
            if not targets.any():
                raise StateSpaceError("no reachable marking satisfies the target condition")
            return _sparse_mean_passage_time(
                self.chain.generator(), self._initial_vector(), targets
            )
        targets = [m for m in self.chain.states if condition(m)]
        if not targets:
            raise StateSpaceError("no reachable marking satisfies the target condition")
        return self.chain.mean_time_to_absorption(self.initial_distribution, absorbing=targets)


def _sparse_mean_passage_time(
    q: _sp.spmatrix, p0: np.ndarray, targets: np.ndarray
) -> float:
    """Mean first-passage time into ``targets`` on a CSR generator.

    Sparse counterpart of :meth:`CTMC.mean_time_to_absorption`: solve
    ``τᵀ Q_TT = -p0ᵀ`` on the non-target (transient) block with SuperLU
    instead of densifying.
    """
    transient = np.flatnonzero(~targets)
    if transient.size == 0:
        return 0.0
    q = _sp.csr_matrix(q, dtype=float)
    sub = q[transient][:, transient]
    p0_t = np.asarray(p0, dtype=float)[transient]
    if p0_t.sum() <= 0.0:
        return 0.0
    try:
        tau = _spla.spsolve(_sp.csc_matrix(sub.transpose()), -p0_t)
    except RuntimeError as exc:  # pragma: no cover - SuperLU failure path
        raise SolverError(f"sparse first-passage solve failed: {exc}") from exc
    if not np.all(np.isfinite(tau)):
        raise SolverError(
            "singular transient block: some transient marking cannot reach the target set"
        )
    if np.any(tau < -1e-9):
        raise SolverError("negative expected sojourn time; chain structure is inconsistent")
    return float(tau.sum())


class SRNDependabilityModel(DependabilityModel):
    """Dependability adapter: an SRN plus an up-condition predicate.

    Works on both generation modes: with a lazy SRN, the up/down
    classification is a boolean mask over interned states and the
    reliability chain is a CSR row-masked copy of the generator (down
    states made absorbing) — no marking dicts are ever built.

    Parameters
    ----------
    srn:
        The stochastic reward net.
    up:
        Predicate on markings: True while the system is operational.
    """

    def __init__(self, srn: StochasticRewardNet, up: Condition):
        self.srn = srn
        self.up = up
        if srn.lazy:
            chain = srn.chain
            mask = chain.up_mask
            if mask is None:
                mask = np.fromiter(
                    (up(m) for m in chain.states), dtype=bool, count=chain.n_states
                )
            self._up_mask = mask
            if not mask.any():
                raise ModelDefinitionError("no reachable marking satisfies the up condition")
            self._up_states = None
            self._down_states = None
        else:
            states = srn.chain.states
            self._up_mask = None
            self._up_states = [m for m in states if up(m)]
            if not self._up_states:
                raise ModelDefinitionError("no reachable marking satisfies the up condition")
            self._down_states = [m for m in states if not up(m)]

    def availability(self, t):
        """Point availability ``P[up at t]``."""
        scalar = np.isscalar(t)
        if self.srn.lazy:
            ts = np.atleast_1d(np.asarray(t, dtype=float))
            probs = self.srn.chain.transient(ts)
            out = probs[:, self._up_mask].sum(axis=1)
        else:
            out = self.srn.transient_probability(self.up, t)
        return float(out[0]) if scalar else out

    def steady_state_availability(self) -> float:
        """Long-run probability of an up marking."""
        if self.srn.lazy:
            pi = self.srn.chain.steady_state()
            return float(pi[self._up_mask].sum())
        return self.srn.probability(self.up)

    def reliability(self, t):
        """Probability of staying in up markings throughout ``[0, t]``."""
        scalar = np.isscalar(t)
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        if self.srn.lazy:
            chain = self.srn.chain
            q = chain.generator()
            # Zero the down rows: down markings become absorbing.
            keep = _sp.diags(self._up_mask.astype(float))
            absorbed = (keep @ q).tocsr()
            from ..markov.solvers import solve_transient

            probs = solve_transient(absorbed, chain.initial_vector, ts)
            out = probs[:, self._up_mask].sum(axis=1)
        else:
            chain = self.srn.chain.with_absorbing(self._down_states)
            initial = self.srn.initial_distribution
            probs = chain.transient(ts, initial)
            idx = [chain.index_of(m) for m in self._up_states]
            out = probs[:, idx].sum(axis=1)
        return float(out[0]) if scalar else out

    def mttf(self) -> float:
        """Mean time to the first down marking."""
        if self.srn.lazy:
            return _sparse_mean_passage_time(
                self.srn.chain.generator(),
                self.srn.chain.initial_vector,
                ~self._up_mask,
            )
        return self.srn.mean_time_to(lambda m: not self.up(m))
