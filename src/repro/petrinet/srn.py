"""Stochastic reward nets: measures on top of the generated CTMC.

An SRN is a stochastic Petri net plus reward functions on markings.  The
class here runs reachability once (cached), then exposes the full measure
suite — steady-state and transient reward rates, availability via an
up-condition predicate, MTTF via absorbing analysis — and the
:class:`~repro.core.model.DependabilityModel` adapter used by the
hierarchy engine.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..core.model import DependabilityModel
from ..exceptions import ModelDefinitionError, StateSpaceError
from ..markov.ctmc import CTMC
from .net import Marking, PetriNet
from .reachability import ReachabilityResult, build_reachability

__all__ = ["StochasticRewardNet", "SRNDependabilityModel"]

RewardFunction = Callable[[Marking], float]
Condition = Callable[[Marking], bool]


class StochasticRewardNet:
    """Measure layer over a :class:`~repro.petrinet.net.PetriNet`.

    Parameters
    ----------
    net:
        The Petri net description.
    max_markings:
        Reachability safety cap.

    Examples
    --------
    >>> from repro.petrinet import PetriNet
    >>> net = PetriNet()
    >>> _ = net.add_place("queue")
    >>> _ = net.add_timed_transition("arrive", rate=1.0)
    >>> _ = net.add_output_arc("arrive", "queue")
    >>> _ = net.add_inhibitor_arc("arrive", "queue", 3)
    >>> _ = net.add_timed_transition("serve", rate=2.0)
    >>> _ = net.add_input_arc("serve", "queue")
    >>> srn = StochasticRewardNet(net)
    >>> srn.n_tangible
    4
    """

    def __init__(self, net: PetriNet, max_markings: int = 200_000):
        self.net = net
        self._max_markings = int(max_markings)
        self._reach: Optional[ReachabilityResult] = None

    # --------------------------------------------------------------- graph
    @property
    def reachability(self) -> ReachabilityResult:
        """The (cached) tangible reachability result."""
        if self._reach is None:
            self._reach = build_reachability(self.net, self._max_markings)
        return self._reach

    @property
    def chain(self) -> CTMC:
        """The generated CTMC over tangible markings."""
        return self.reachability.chain

    @property
    def n_tangible(self) -> int:
        """Number of tangible markings."""
        return len(self.reachability.tangible)

    @property
    def n_vanishing(self) -> int:
        """Number of vanishing markings eliminated during generation."""
        return self.reachability.n_vanishing

    @property
    def initial_distribution(self) -> Dict[Marking, float]:
        """Initial probability over tangible markings."""
        return dict(self.reachability.initial)

    # ------------------------------------------------------------ measures
    def steady_state(self) -> Dict[Marking, float]:
        """Stationary distribution over tangible markings."""
        return self.chain.steady_state()

    def expected_reward_rate(self, reward: RewardFunction) -> float:
        """Steady-state expected reward rate of a marking reward function."""
        pi = self.steady_state()
        return sum(reward(marking) * prob for marking, prob in pi.items())

    def expected_tokens(self, place: str) -> float:
        """Steady-state expected token count in ``place``."""
        return self.expected_reward_rate(lambda m: float(m[place]))

    def probability(self, condition: Condition) -> float:
        """Steady-state probability that the marking satisfies ``condition``."""
        return self.expected_reward_rate(lambda m: 1.0 if condition(m) else 0.0)

    def throughput(self, transition: str) -> float:
        """Steady-state firing rate of a timed transition.

        ``Σ_m π(m) · rate(m) · [transition enabled in m]``.
        """
        tr = self.net.transitions.get(transition)
        if tr is None:
            raise ModelDefinitionError(f"unknown transition: {transition!r}")
        if tr.is_immediate:
            raise ModelDefinitionError(
                f"throughput of immediate transition {transition!r} is not defined "
                "on the tangible chain"
            )
        pi = self.steady_state()
        return sum(
            prob * tr.rate_in(marking)
            for marking, prob in pi.items()
            if tr.is_enabled(marking)
        )

    def transient_reward_rate(self, reward: RewardFunction, times) -> np.ndarray:
        """Expected reward rate at each time in ``times``."""
        ts = np.atleast_1d(np.asarray(times, dtype=float))
        probs = self.chain.transient(ts, self.initial_distribution)
        rewards = np.array([reward(m) for m in self.chain.states])
        return probs @ rewards

    def transient_probability(self, condition: Condition, times) -> np.ndarray:
        """Probability the condition holds at each time in ``times``."""
        return self.transient_reward_rate(lambda m: 1.0 if condition(m) else 0.0, times)

    def mean_time_to(self, condition: Condition) -> float:
        """Mean first-passage time into the set of markings satisfying ``condition``."""
        targets = [m for m in self.chain.states if condition(m)]
        if not targets:
            raise StateSpaceError("no reachable marking satisfies the target condition")
        return self.chain.mean_time_to_absorption(self.initial_distribution, absorbing=targets)


class SRNDependabilityModel(DependabilityModel):
    """Dependability adapter: an SRN plus an up-condition predicate.

    Parameters
    ----------
    srn:
        The stochastic reward net.
    up:
        Predicate on markings: True while the system is operational.
    """

    def __init__(self, srn: StochasticRewardNet, up: Condition):
        self.srn = srn
        self.up = up
        states = srn.chain.states
        self._up_states = [m for m in states if up(m)]
        if not self._up_states:
            raise ModelDefinitionError("no reachable marking satisfies the up condition")
        self._down_states = [m for m in states if not up(m)]

    def availability(self, t):
        """Point availability ``P[up at t]``."""
        scalar = np.isscalar(t)
        out = self.srn.transient_probability(self.up, t)
        return float(out[0]) if scalar else out

    def steady_state_availability(self) -> float:
        """Long-run probability of an up marking."""
        return self.srn.probability(self.up)

    def reliability(self, t):
        """Probability of staying in up markings throughout ``[0, t]``."""
        scalar = np.isscalar(t)
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        chain = self.srn.chain.with_absorbing(self._down_states)
        initial = self.srn.initial_distribution
        probs = chain.transient(ts, initial)
        idx = [chain.index_of(m) for m in self._up_states]
        out = probs[:, idx].sum(axis=1)
        return float(out[0]) if scalar else out

    def mttf(self) -> float:
        """Mean time to the first down marking."""
        return self.srn.mean_time_to(lambda m: not self.up(m))
