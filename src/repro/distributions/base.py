"""Abstract base class for lifetime (time-to-event) distributions.

Every failure-time and repair-time distribution in the library implements
:class:`LifetimeDistribution`.  The interface is the one reliability
engineering needs: survival function (= component reliability), hazard
rate, raw moments, and random variate generation for the Monte Carlo
simulator.

Subclasses must implement :meth:`pdf`, :meth:`cdf`, :meth:`mean`,
:meth:`variance` and :meth:`sample`; everything else has a generic
implementation in terms of those.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np
from scipy import integrate, optimize

from ..exceptions import DistributionError

__all__ = ["LifetimeDistribution"]


class LifetimeDistribution(abc.ABC):
    """A non-negative continuous random variable modelling a lifetime.

    The survival function ``sf(t)`` of a component's time to failure is its
    reliability ``R(t)``; the hazard ``h(t) = pdf(t) / sf(t)`` is its
    instantaneous failure rate.
    """

    # ----------------------------------------------------------------- core
    @abc.abstractmethod
    def pdf(self, t):
        """Probability density function evaluated at ``t`` (scalar or array)."""

    @abc.abstractmethod
    def cdf(self, t):
        """Cumulative distribution function ``P[T <= t]``."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value ``E[T]``."""

    @abc.abstractmethod
    def variance(self) -> float:
        """Variance ``Var[T]``."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw random variates using ``rng``."""

    # ------------------------------------------------------------- derived
    def sf(self, t):
        """Survival function ``P[T > t]`` — the reliability ``R(t)``."""
        return 1.0 - np.asarray(self.cdf(t))

    def reliability(self, t):
        """Alias for :meth:`sf`, in reliability-engineering vocabulary."""
        return self.sf(t)

    def hazard(self, t):
        """Instantaneous failure (hazard) rate ``h(t) = f(t) / R(t)``.

        Returns ``inf`` where the survival function is zero.
        """
        t = np.asarray(t, dtype=float)
        surv = np.asarray(self.sf(t), dtype=float)
        dens = np.asarray(self.pdf(t), dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(surv > 0.0, dens / np.where(surv > 0.0, surv, 1.0), np.inf)
        return out if out.ndim else float(out)

    def cumulative_hazard(self, t):
        """Cumulative hazard ``H(t) = -ln R(t)``."""
        surv = np.asarray(self.sf(t), dtype=float)
        with np.errstate(divide="ignore"):
            out = -np.log(np.clip(surv, 0.0, 1.0))
        return out if out.ndim else float(out)

    def std(self) -> float:
        """Standard deviation."""
        return math.sqrt(self.variance())

    def cv(self) -> float:
        """Coefficient of variation ``std / mean``.

        The CV drives phase-type fitting: CV == 1 is exponential, CV < 1
        calls for hypoexponential (Erlang) phases, CV > 1 for
        hyperexponential phases.
        """
        mu = self.mean()
        if mu <= 0:
            raise DistributionError("coefficient of variation undefined for zero mean")
        return self.std() / mu

    def squared_cv(self) -> float:
        """Squared coefficient of variation ``Var / mean**2``."""
        mu = self.mean()
        if mu <= 0:
            raise DistributionError("squared CV undefined for zero mean")
        return self.variance() / (mu * mu)

    def moment(self, k: int) -> float:
        """Raw moment ``E[T**k]``.

        The generic implementation integrates ``k * t**(k-1) * R(t)``
        numerically; subclasses override with closed forms where available.
        """
        if k < 0:
            raise DistributionError(f"moment order must be >= 0, got {k}")
        if k == 0:
            return 1.0
        if k == 1:
            return self.mean()
        if k == 2:
            mu = self.mean()
            return self.variance() + mu * mu

        def integrand(t: float) -> float:
            return k * t ** (k - 1) * float(self.sf(t))

        value, _ = integrate.quad(integrand, 0.0, np.inf, limit=200)
        return value

    def ppf(self, q):
        """Quantile function (inverse CDF).

        Generic bracketing/brentq implementation; subclasses override with
        closed forms where available.
        """
        scalar = np.isscalar(q)
        qs = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((qs < 0) | (qs > 1)):
            raise DistributionError("quantile levels must lie in [0, 1]")
        out = np.empty_like(qs)
        for i, level in enumerate(qs):
            out[i] = self._ppf_scalar(float(level))
        return float(out[0]) if scalar else out

    def _ppf_scalar(self, q: float) -> float:
        if q <= 0.0:
            return 0.0
        if q >= 1.0:
            return math.inf
        hi = max(self.mean(), 1e-12)
        while float(self.cdf(hi)) < q:
            hi *= 2.0
            if hi > 1e300:
                return math.inf
        return float(optimize.brentq(lambda t: float(self.cdf(t)) - q, 0.0, hi, xtol=1e-12))

    def median(self) -> float:
        """Median lifetime."""
        return float(self.ppf(0.5))

    # ---------------------------------------------------------------- misc
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.__dict__.items()))
        return f"{type(self).__name__}({params})"

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))
