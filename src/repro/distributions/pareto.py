"""Pareto (Lomax-shifted) distribution — heavy-tailed repair times.

Field repair logs occasionally show power-law tails (a few repairs take
*much* longer than the rest: missing spares, escalations).  The Pareto
makes the consequences explicit: for shape α <= 2 the variance is
infinite and two-moment phase-type fitting is impossible — the case the
tutorial's non-exponential machinery (SMP steady state, which needs only
the mean) still handles for α > 1.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .._validation import check_positive
from ..exceptions import DistributionError
from .base import LifetimeDistribution

__all__ = ["Pareto"]


class Pareto(LifetimeDistribution):
    """Pareto distribution on ``[minimum, ∞)``: ``S(t) = (minimum/t)^shape``.

    Parameters
    ----------
    shape:
        Tail index α > 0; moments of order >= α diverge.
    minimum:
        Left endpoint (scale) x_m > 0.

    Examples
    --------
    >>> p = Pareto(shape=3.0, minimum=2.0)
    >>> round(p.mean(), 6)
    3.0
    >>> p.sf(2.0)
    1.0
    """

    def __init__(self, shape: float, minimum: float):
        self.shape = check_positive(shape, "shape")
        self.minimum = check_positive(minimum, "minimum")

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        safe = np.where(t >= self.minimum, t, self.minimum)
        out = np.where(
            t >= self.minimum,
            self.shape * self.minimum**self.shape / safe ** (self.shape + 1.0),
            0.0,
        )
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        safe = np.where(t >= self.minimum, t, self.minimum)
        out = np.where(t >= self.minimum, 1.0 - (self.minimum / safe) ** self.shape, 0.0)
        return out if out.ndim else float(out)

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        safe = np.where(t >= self.minimum, t, self.minimum)
        out = np.where(t >= self.minimum, (self.minimum / safe) ** self.shape, 1.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        if self.shape <= 1.0:
            return math.inf
        return self.shape * self.minimum / (self.shape - 1.0)

    def variance(self) -> float:
        if self.shape <= 2.0:
            return math.inf
        a, m = self.shape, self.minimum
        return m * m * a / ((a - 1.0) ** 2 * (a - 2.0))

    def moment(self, k: int) -> float:
        if k < 0:
            raise DistributionError(f"moment order must be >= 0, got {k}")
        if k == 0:
            return 1.0
        if k >= self.shape:
            return math.inf
        return self.shape * self.minimum**k / (self.shape - k)

    def ppf(self, q):
        scalar = np.isscalar(q)
        qs = np.asarray(q, dtype=float)
        out = self.minimum * (1.0 - qs) ** (-1.0 / self.shape)
        return float(out) if scalar else out

    def hazard(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t >= self.minimum, self.shape / np.where(t >= self.minimum, t, 1.0), 0.0)
        return out if out.ndim else float(out)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        u = rng.uniform(size=size)
        return self.minimum * (1.0 - u) ** (-1.0 / self.shape)
