"""Lifetime and repair-time distributions (system S1 in DESIGN.md).

Every distribution implements the :class:`~repro.distributions.base.LifetimeDistribution`
interface: ``pdf``/``cdf``/``sf``/``hazard``, raw moments, quantiles, and
random variate generation for the Monte Carlo simulator.
"""

from .base import LifetimeDistribution
from .degenerate import Deterministic, Uniform
from .empirical import EmpiricalDistribution
from .exponential import Exponential
from .fitting import erlang_stages_for_cv, fit_distribution, fit_two_moments
from .gamma import Erlang, Gamma
from .hyperexp import HyperExponential
from .hypoexp import HypoExponential
from .lognormal import Lognormal
from .pareto import Pareto
from .weibull import Weibull

__all__ = [
    "LifetimeDistribution",
    "Exponential",
    "Weibull",
    "Lognormal",
    "Pareto",
    "Gamma",
    "Erlang",
    "HyperExponential",
    "HypoExponential",
    "Deterministic",
    "Uniform",
    "EmpiricalDistribution",
    "fit_two_moments",
    "fit_distribution",
    "erlang_stages_for_cv",
]
