"""Two-moment phase-type fitting.

Non-exponential activity times can be folded back into a CTMC by
replacing them with a phase-type distribution matched on the first two
moments — the tutorial's standard recipe for "dealing with
non-exponential distributions" when full SMP/MRGP analysis is overkill:

* squared CV == 1  →  plain exponential;
* squared CV  < 1  →  Erlang (or two-stage hypoexponential for an exact
  two-moment match when ``1/k <= cv2 <= 1/(k-1)`` is not hit exactly);
* squared CV  > 1  →  two-branch balanced-means hyperexponential.
"""

from __future__ import annotations

import math

from .._validation import check_positive
from ..exceptions import DistributionError
from .base import LifetimeDistribution
from .exponential import Exponential
from .gamma import Erlang
from .hyperexp import HyperExponential
from .hypoexp import HypoExponential

__all__ = ["fit_two_moments", "fit_distribution", "erlang_stages_for_cv"]

_CV2_EXPONENTIAL_TOLERANCE = 1e-9


def erlang_stages_for_cv(cv2: float) -> int:
    """Smallest number of Erlang stages whose squared CV (1/k) is <= ``cv2``."""
    if cv2 <= 0:
        raise DistributionError(f"squared CV must be positive, got {cv2}")
    return max(1, math.ceil(1.0 / cv2))


def fit_two_moments(mean: float, cv2: float) -> LifetimeDistribution:
    """Return a phase-type distribution matching ``mean`` and squared CV ``cv2``.

    Parameters
    ----------
    mean:
        Target first moment (must be positive).
    cv2:
        Target squared coefficient of variation (must be positive).

    Returns
    -------
    LifetimeDistribution
        ``Exponential`` when cv2 == 1, a two-stage ``HypoExponential`` (or
        exact ``Erlang`` when cv2 == 1/k) when cv2 < 1, and a balanced-means
        two-branch ``HyperExponential`` when cv2 > 1.  The first two moments
        of the returned distribution match the targets exactly except in the
        hypoexponential corner cv2 < 0.5 where the classical two-stage match
        is infeasible and an Erlang-k match of the mean with nearest CV is
        returned.

    Examples
    --------
    >>> d = fit_two_moments(mean=2.0, cv2=4.0)
    >>> round(d.mean(), 9), round(d.squared_cv(), 9)
    (2.0, 4.0)
    """
    mean = check_positive(mean, "mean")
    cv2 = check_positive(cv2, "cv2")

    if abs(cv2 - 1.0) <= _CV2_EXPONENTIAL_TOLERANCE:
        return Exponential(rate=1.0 / mean)

    if cv2 > 1.0:
        # Balanced-means two-branch hyperexponential (Whitt's construction):
        # p1/r1 == p2/r2, matches mean and cv2 exactly for any cv2 > 1.
        p1 = 0.5 * (1.0 + math.sqrt((cv2 - 1.0) / (cv2 + 1.0)))
        p2 = 1.0 - p1
        r1 = 2.0 * p1 / mean
        r2 = 2.0 * p2 / mean
        return HyperExponential(probs=(p1, p2), rates=(r1, r2))

    # cv2 < 1: two-stage hypoexponential matches exactly for 0.5 <= cv2 < 1.
    if cv2 >= 0.5:
        # Solve 1/r1 + 1/r2 = mean, 1/r1^2 + 1/r2^2 = cv2 * mean^2.
        m1 = mean
        disc = math.sqrt(max(2.0 * cv2 - 1.0, 0.0))
        inv1 = 0.5 * m1 * (1.0 + disc)
        inv2 = 0.5 * m1 * (1.0 - disc)
        if inv2 <= 0:
            return Erlang.from_mean(mean, stages=2)
        if math.isclose(inv1, inv2, rel_tol=1e-12):
            return Erlang(stages=2, rate=2.0 / mean)
        return HypoExponential(rates=(1.0 / inv1, 1.0 / inv2))

    # cv2 < 0.5: use an Erlang with k = ceil(1/cv2) stages. The mean is
    # matched exactly; the squared CV (1/k) is the closest achievable from
    # below with identical stages.
    stages = erlang_stages_for_cv(cv2)
    return Erlang.from_mean(mean, stages=stages)


def fit_distribution(dist: LifetimeDistribution) -> LifetimeDistribution:
    """Fit a phase-type approximation to an arbitrary lifetime distribution.

    Matches the first two moments of ``dist`` via :func:`fit_two_moments`.

    Examples
    --------
    >>> from repro.distributions import Weibull
    >>> approx = fit_distribution(Weibull(shape=2.0, scale=1.0))
    >>> abs(approx.mean() - Weibull(shape=2.0, scale=1.0).mean()) < 1e-12
    True
    """
    return fit_two_moments(dist.mean(), dist.squared_cv())
