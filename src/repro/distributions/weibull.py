"""Weibull distribution — the standard model for aging (wear-out) failures.

Shape < 1 gives a decreasing hazard (infant mortality), shape == 1 is the
exponential (constant hazard), shape > 1 gives an increasing hazard
(wear-out).  Weibull lifetimes violate the memoryless assumption, so
systems with Weibull components need semi-Markov / phase-type treatment
(tutorial part "dealing with non-exponential distributions").
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .._validation import check_positive
from .base import LifetimeDistribution

__all__ = ["Weibull"]


class Weibull(LifetimeDistribution):
    """Weibull distribution with ``shape`` k and ``scale`` η.

    ``R(t) = exp(-(t/η)**k)``; mean ``η Γ(1 + 1/k)``.

    Examples
    --------
    >>> w = Weibull(shape=1.0, scale=2.0)   # reduces to Exponential(rate=0.5)
    >>> round(w.mean(), 6)
    2.0
    """

    def __init__(self, shape: float, scale: float):
        self.shape = check_positive(shape, "shape")
        self.scale = check_positive(scale, "scale")

    @classmethod
    def from_mean_shape(cls, mean: float, shape: float) -> "Weibull":
        """Build a Weibull with the given mean and shape."""
        shape = check_positive(shape, "shape")
        scale = check_positive(mean, "mean") / math.gamma(1.0 + 1.0 / shape)
        return cls(shape=shape, scale=scale)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        k, lam = self.shape, self.scale
        with np.errstate(divide="ignore", invalid="ignore"):
            z = np.where(t > 0.0, t / lam, 0.0)
            dens = np.where(
                t > 0.0,
                (k / lam) * z ** (k - 1.0) * np.exp(-(z**k)),
                0.0 if k != 1.0 else 1.0 / lam,
            )
        return dens if dens.ndim else float(dens)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        z = np.where(t > 0.0, t / self.scale, 0.0)
        out = np.where(t > 0.0, -np.expm1(-(z**self.shape)), 0.0)
        return out if out.ndim else float(out)

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        z = np.where(t > 0.0, t / self.scale, 0.0)
        out = np.where(t > 0.0, np.exp(-(z**self.shape)), 1.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1 * g1)

    def moment(self, k: int) -> float:
        if k < 0:
            return super().moment(k)
        return self.scale**k * math.gamma(1.0 + k / self.shape)

    def ppf(self, q):
        scalar = np.isscalar(q)
        qs = np.asarray(q, dtype=float)
        out = self.scale * (-np.log1p(-qs)) ** (1.0 / self.shape)
        return float(out) if scalar else out

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return self.scale * rng.weibull(self.shape, size=size)
