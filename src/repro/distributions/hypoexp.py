"""Hypoexponential distribution — exponential stages in series.

Generalizes the Erlang to distinct stage rates; the natural model for
multi-step recovery processes (detect, fail over, repair, reintegrate)
and the CV < 1 half of two-moment phase-type fitting.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..exceptions import DistributionError
from .base import LifetimeDistribution

__all__ = ["HypoExponential"]


class HypoExponential(LifetimeDistribution):
    """Sum of independent exponential stages with (possibly distinct) rates.

    For distinct rates the density has the classical partial-fraction
    closed form; repeated rates are supported by falling back to the
    matrix-exponential (phase-type) formulation.

    Examples
    --------
    >>> h = HypoExponential(rates=[1.0, 2.0])
    >>> round(h.mean(), 6)
    1.5
    """

    def __init__(self, rates: Sequence[float]):
        rates_t = tuple(float(r) for r in rates)
        if not rates_t:
            raise DistributionError("at least one stage rate is required")
        if any(r <= 0 or not math.isfinite(r) for r in rates_t):
            raise DistributionError(f"stage rates must be positive and finite, got {rates_t}")
        self.rates = rates_t

    # -- helpers ---------------------------------------------------------
    def _distinct(self) -> bool:
        """True when rates are far enough apart for partial fractions.

        The closed form divides by pairwise rate differences, so *nearly*
        equal rates cause catastrophic cancellation; such cases (and exact
        repeats) fall back to the stable matrix-exponential path.
        """
        rates = sorted(self.rates)
        for a, b in zip(rates, rates[1:]):
            if b - a <= 1e-5 * b:
                return False
        return True

    def _partial_fraction_weights(self) -> np.ndarray:
        rates = np.asarray(self.rates, dtype=float)
        n = len(rates)
        weights = np.empty(n)
        for i in range(n):
            num = np.prod([rates[j] for j in range(n) if j != i]) if n > 1 else 1.0
            den = np.prod([rates[j] - rates[i] for j in range(n) if j != i]) if n > 1 else 1.0
            weights[i] = num / den
        return weights

    def _phase_generator(self) -> "tuple[np.ndarray, np.ndarray]":
        n = len(self.rates)
        sub = np.zeros((n, n))
        for i, r in enumerate(self.rates):
            sub[i, i] = -r
            if i + 1 < n:
                sub[i, i + 1] = r
        alpha = np.zeros(n)
        alpha[0] = 1.0
        return alpha, sub

    def _matrix_sf(self, t: np.ndarray) -> np.ndarray:
        from scipy.linalg import expm

        alpha, sub = self._phase_generator()
        ones = np.ones(len(self.rates))
        out = np.empty(t.shape, dtype=float)
        flat = t.ravel()
        res = np.empty(flat.shape)
        for idx, ti in enumerate(flat):
            res[idx] = float(alpha @ expm(sub * max(ti, 0.0)) @ ones) if ti > 0 else 1.0
        out = res.reshape(t.shape)
        return out

    # -- interface -------------------------------------------------------
    def sf(self, t):
        t = np.asarray(t, dtype=float)
        if self._distinct():
            weights = self._partial_fraction_weights()
            rates = np.asarray(self.rates, dtype=float)
            tt = np.where(t >= 0.0, t, 0.0)
            out = np.tensordot(weights, np.exp(-np.multiply.outer(rates, tt)), axes=1)
            out = np.where(t >= 0.0, out, 1.0)
        else:
            out = self._matrix_sf(t)
        out = np.clip(out, 0.0, 1.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        return 1.0 - self.sf(t)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        if self._distinct():
            weights = self._partial_fraction_weights()
            rates = np.asarray(self.rates, dtype=float)
            tt = np.where(t >= 0.0, t, 0.0)
            out = np.tensordot(weights * rates, np.exp(-np.multiply.outer(rates, tt)), axes=1)
            out = np.where(t >= 0.0, np.maximum(out, 0.0), 0.0)
        else:
            from scipy.linalg import expm

            alpha, sub = self._phase_generator()
            exit_rates = -sub @ np.ones(len(self.rates))
            flat = t.ravel()
            res = np.empty(flat.shape)
            for idx, ti in enumerate(flat):
                res[idx] = float(alpha @ expm(sub * ti) @ exit_rates) if ti >= 0 else 0.0
            out = res.reshape(t.shape)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return sum(1.0 / r for r in self.rates)

    def variance(self) -> float:
        return sum(1.0 / (r * r) for r in self.rates)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        n = 1 if size is None else int(size)
        draws = np.zeros(n)
        for r in self.rates:
            draws = draws + rng.exponential(scale=1.0 / r, size=n)
        return float(draws[0]) if size is None else draws
