"""The exponential distribution — the workhorse of Markov modeling.

The exponential is the only continuous distribution with the memoryless
property, which is what makes homogeneous CTMC modeling possible: the
remaining lifetime of an exponential component does not depend on its age.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .._validation import check_rate
from .base import LifetimeDistribution

__all__ = ["Exponential"]


class Exponential(LifetimeDistribution):
    """Exponential distribution with rate ``rate`` (mean ``1 / rate``).

    Parameters
    ----------
    rate:
        The constant hazard rate λ > 0.  A component with failure rate λ
        has MTTF ``1/λ`` and reliability ``R(t) = exp(-λ t)``.

    Examples
    --------
    >>> d = Exponential(rate=2.0)
    >>> round(d.mean(), 6)
    0.5
    >>> round(d.sf(0.0), 6)
    1.0
    """

    def __init__(self, rate: float):
        self.rate = check_rate(rate)

    @classmethod
    def from_mean(cls, mean: float) -> "Exponential":
        """Build from the mean (MTTF / MTTR) instead of the rate."""
        return cls(rate=1.0 / check_rate(mean, "mean"))

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t >= 0.0, self.rate * np.exp(-self.rate * t), 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t >= 0.0, -np.expm1(-self.rate * t), 0.0)
        return out if out.ndim else float(out)

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t >= 0.0, np.exp(-self.rate * t), 1.0)
        return out if out.ndim else float(out)

    def hazard(self, t):
        t = np.asarray(t, dtype=float)
        out = np.full_like(t, self.rate, dtype=float)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return 1.0 / self.rate

    def variance(self) -> float:
        return 1.0 / (self.rate * self.rate)

    def moment(self, k: int) -> float:
        # E[T^k] = k! / rate^k
        if k < 0:
            return super().moment(k)
        return math.factorial(k) / self.rate**k

    def ppf(self, q):
        scalar = np.isscalar(q)
        qs = np.asarray(q, dtype=float)
        with np.errstate(divide="ignore"):
            out = -np.log1p(-qs) / self.rate
        return float(out) if scalar else out

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.exponential(scale=1.0 / self.rate, size=size)
