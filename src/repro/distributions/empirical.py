"""Grid-backed empirical distribution.

Used wherever a distribution arises numerically rather than in closed
form: conditional holding times of competing semi-Markov transitions,
fitted field data, and simulator output summaries.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..exceptions import DistributionError
from .base import LifetimeDistribution

__all__ = ["EmpiricalDistribution"]


class EmpiricalDistribution(LifetimeDistribution):
    """A distribution defined by CDF values on a time grid.

    Between grid points the CDF is linearly interpolated; beyond the last
    grid point it is held at its final value (which must be 1 within
    tolerance for a proper distribution).

    Parameters
    ----------
    grid:
        Strictly increasing non-negative time points.
    cdf_values:
        Non-decreasing CDF values on the grid, ending at ~1.

    Examples
    --------
    >>> d = EmpiricalDistribution([0.0, 1.0, 2.0], [0.0, 0.5, 1.0])
    >>> round(d.mean(), 6)
    1.0
    """

    def __init__(self, grid: Sequence[float], cdf_values: Sequence[float]):
        grid_arr = np.asarray(grid, dtype=float)
        cdf_arr = np.asarray(cdf_values, dtype=float)
        if grid_arr.ndim != 1 or grid_arr.shape != cdf_arr.shape or grid_arr.size < 2:
            raise DistributionError("grid and cdf_values must be equal-length 1-D, size >= 2")
        if np.any(np.diff(grid_arr) <= 0) or grid_arr[0] < 0:
            raise DistributionError("grid must be strictly increasing and non-negative")
        if np.any(np.diff(cdf_arr) < -1e-12) or cdf_arr[0] < -1e-12:
            raise DistributionError("cdf_values must be non-decreasing and non-negative")
        if abs(cdf_arr[-1] - 1.0) > 1e-6:
            raise DistributionError(
                f"cdf must reach 1 at the last grid point, got {cdf_arr[-1]!r}"
            )
        self._grid = grid_arr
        self._cdf = np.clip(cdf_arr, 0.0, 1.0)
        self._cdf[-1] = 1.0

    @classmethod
    def from_samples(cls, samples: Sequence[float], n_points: int = 200) -> "EmpiricalDistribution":
        """Build from observed lifetimes (right-continuous step ECDF, smoothed to a grid)."""
        data = np.sort(np.asarray(samples, dtype=float))
        if data.size < 2:
            raise DistributionError("need at least two samples")
        if data[0] < 0:
            raise DistributionError("samples must be non-negative")
        qs = np.linspace(0.0, 1.0, n_points)
        grid = np.quantile(data, qs)
        grid = np.maximum.accumulate(grid)
        # De-duplicate while keeping the CDF consistent.
        grid, keep = np.unique(grid, return_index=True)
        cdf = qs[keep]
        if grid[0] > 0.0:
            grid = np.concatenate([[0.0], grid])
            cdf = np.concatenate([[0.0], cdf])
        cdf[-1] = 1.0
        return cls(grid, cdf)

    # ---------------------------------------------------------- interface
    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.interp(t, self._grid, self._cdf, left=0.0, right=1.0)
        return out if out.ndim else float(out)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        slopes = np.diff(self._cdf) / np.diff(self._grid)
        idx = np.clip(np.searchsorted(self._grid, t, side="right") - 1, 0, slopes.size - 1)
        out = np.where((t >= self._grid[0]) & (t < self._grid[-1]), slopes[idx], 0.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        # ∫ (1 - F) over the grid; beyond the grid F == 1 contributes 0.
        sf = 1.0 - self._cdf
        return float(np.trapezoid(sf, self._grid)) + float(self._grid[0])

    def variance(self) -> float:
        # The CDF is piecewise linear, so the density is piecewise
        # constant and E[T^2] integrates exactly per segment:
        # f_seg * (b^3 - a^3) / 3.
        dens = np.diff(self._cdf) / np.diff(self._grid)
        second = float(np.sum(dens * np.diff(self._grid**3)) / 3.0)
        mu = self.mean()
        return max(second - mu * mu, 0.0)

    def ppf(self, q):
        scalar = np.isscalar(q)
        qs = np.asarray(q, dtype=float)
        out = np.interp(qs, self._cdf, self._grid)
        return float(out) if scalar else out

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        u = rng.uniform(size=size)
        return self.ppf(u)

    def __eq__(self, other) -> bool:
        return (
            type(self) is type(other)
            and np.array_equal(self._grid, other._grid)
            and np.array_equal(self._cdf, other._cdf)
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._grid.tobytes(), self._cdf.tobytes()))
