"""Hyperexponential distribution — a probabilistic mixture of exponentials.

``HyperExponential`` covers squared coefficients of variation above one,
the regime of highly variable repair times; together with the Erlang it
lets two-moment matching represent any CV in a Markov-friendly form.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..exceptions import DistributionError
from .base import LifetimeDistribution

__all__ = ["HyperExponential"]


class HyperExponential(LifetimeDistribution):
    """Mixture of exponential branches.

    With probability ``probs[i]`` the lifetime is exponential with
    ``rates[i]``.

    Examples
    --------
    >>> h = HyperExponential(probs=[0.5, 0.5], rates=[1.0, 3.0])
    >>> round(h.mean(), 6)
    0.666667
    """

    def __init__(self, probs: Sequence[float], rates: Sequence[float]):
        probs_t = tuple(float(p) for p in probs)
        rates_t = tuple(float(r) for r in rates)
        if len(probs_t) != len(rates_t) or not probs_t:
            raise DistributionError("probs and rates must be equal-length, non-empty")
        if any(p < 0 for p in probs_t) or not math.isclose(sum(probs_t), 1.0, abs_tol=1e-9):
            raise DistributionError(f"branch probabilities must be >= 0 and sum to 1, got {probs_t}")
        if any(r <= 0 or not math.isfinite(r) for r in rates_t):
            raise DistributionError(f"branch rates must be positive and finite, got {rates_t}")
        self.probs = probs_t
        self.rates = rates_t

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.zeros_like(t, dtype=float)
        for p, r in zip(self.probs, self.rates):
            out = out + p * r * np.exp(-r * np.where(t >= 0, t, 0.0))
        out = np.where(t >= 0.0, out, 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        return 1.0 - self.sf(t)

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.zeros_like(t, dtype=float)
        for p, r in zip(self.probs, self.rates):
            out = out + p * np.exp(-r * np.where(t >= 0, t, 0.0))
        out = np.where(t >= 0.0, out, 1.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return sum(p / r for p, r in zip(self.probs, self.rates))

    def moment(self, k: int) -> float:
        if k < 0:
            return super().moment(k)
        return sum(p * math.factorial(k) / r**k for p, r in zip(self.probs, self.rates))

    def variance(self) -> float:
        return self.moment(2) - self.mean() ** 2

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        n = 1 if size is None else int(size)
        branch = rng.choice(len(self.probs), size=n, p=self.probs)
        rates = np.asarray(self.rates, dtype=float)[branch]
        draws = rng.exponential(scale=1.0 / rates)
        return float(draws[0]) if size is None else draws
