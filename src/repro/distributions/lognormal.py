"""Lognormal distribution — the classic model for repair times.

Field data on manual repair durations is strongly right-skewed; the
lognormal is the standard fit.  Like the Weibull it is non-memoryless and
motivates the tutorial's semi-Markov / phase-type machinery.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import stats

from .._validation import check_positive
from .base import LifetimeDistribution

__all__ = ["Lognormal"]


class Lognormal(LifetimeDistribution):
    """Lognormal distribution: ``ln T ~ Normal(mu, sigma**2)``.

    Examples
    --------
    >>> d = Lognormal(mu=0.0, sigma=1.0)
    >>> round(d.median(), 6)
    1.0
    """

    def __init__(self, mu: float, sigma: float):
        self.mu = float(mu)
        self.sigma = check_positive(sigma, "sigma")

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "Lognormal":
        """Build from mean and coefficient of variation."""
        mean = check_positive(mean, "mean")
        cv = check_positive(cv, "cv")
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        return cls(mu=mu, sigma=math.sqrt(sigma2))

    def _frozen(self):
        return stats.lognorm(s=self.sigma, scale=math.exp(self.mu))

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t > 0.0, self._frozen().pdf(np.where(t > 0.0, t, 1.0)), 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t > 0.0, self._frozen().cdf(np.where(t > 0.0, t, 1.0)), 0.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def variance(self) -> float:
        s2 = self.sigma**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)

    def moment(self, k: int) -> float:
        if k < 0:
            return super().moment(k)
        return math.exp(k * self.mu + k * k * self.sigma**2 / 2.0)

    def median(self) -> float:
        return math.exp(self.mu)

    def ppf(self, q):
        scalar = np.isscalar(q)
        out = self._frozen().ppf(q)
        return float(out) if scalar else np.asarray(out)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.lognormal(mean=self.mu, sigma=self.sigma, size=size)
