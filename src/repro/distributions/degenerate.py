"""Deterministic (degenerate) and uniform distributions.

A deterministic duration — a rejuvenation timer, a scheduled maintenance
interval, a fixed reboot time — is the canonical non-exponential activity
that forces Markov regenerative process analysis.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import check_non_negative, check_positive
from ..exceptions import DistributionError
from .base import LifetimeDistribution

__all__ = ["Deterministic", "Uniform"]


class Deterministic(LifetimeDistribution):
    """All probability mass at a single point ``value``.

    Examples
    --------
    >>> d = Deterministic(5.0)
    >>> d.cdf(4.9), d.cdf(5.0)
    (0.0, 1.0)
    """

    def __init__(self, value: float):
        self.value = check_non_negative(value, "value")

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t == self.value, np.inf, 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t >= self.value, 1.0, 0.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.value

    def variance(self) -> float:
        return 0.0

    def moment(self, k: int) -> float:
        if k < 0:
            raise DistributionError(f"moment order must be >= 0, got {k}")
        return self.value**k

    def ppf(self, q):
        scalar = np.isscalar(q)
        qs = np.asarray(q, dtype=float)
        out = np.full_like(qs, self.value, dtype=float)
        return float(out) if scalar else out

    def cv(self) -> float:
        return 0.0

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if size is None:
            return self.value
        return np.full(int(size), self.value)


class Uniform(LifetimeDistribution):
    """Continuous uniform distribution on ``[low, high]``.

    Examples
    --------
    >>> u = Uniform(1.0, 3.0)
    >>> round(u.mean(), 6)
    2.0
    """

    def __init__(self, low: float, high: float):
        self.low = check_non_negative(low, "low")
        self.high = check_positive(high, "high")
        if not self.high > self.low:
            raise DistributionError(f"high must exceed low, got [{low}, {high}]")

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        inside = (t >= self.low) & (t <= self.high)
        out = np.where(inside, 1.0 / (self.high - self.low), 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.clip((t - self.low) / (self.high - self.low), 0.0, 1.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0

    def ppf(self, q):
        scalar = np.isscalar(q)
        qs = np.asarray(q, dtype=float)
        out = self.low + qs * (self.high - self.low)
        return float(out) if scalar else out

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.uniform(self.low, self.high, size=size)
