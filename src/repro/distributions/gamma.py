"""Gamma and Erlang distributions.

The Erlang (integer-shape gamma) is the sum of ``k`` i.i.d. exponential
stages and therefore has an exact phase-type (CTMC) representation — it is
the bridge between non-exponential lifetimes and Markov models whenever
the coefficient of variation is below one.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import stats

from .._validation import check_positive
from ..exceptions import DistributionError
from .base import LifetimeDistribution

__all__ = ["Gamma", "Erlang"]


class Gamma(LifetimeDistribution):
    """Gamma distribution with ``shape`` α and ``rate`` β (mean α/β).

    Examples
    --------
    >>> g = Gamma(shape=2.0, rate=4.0)
    >>> round(g.mean(), 6)
    0.5
    """

    def __init__(self, shape: float, rate: float):
        self.shape = check_positive(shape, "shape")
        self.rate = check_positive(rate, "rate")

    def _frozen(self):
        return stats.gamma(a=self.shape, scale=1.0 / self.rate)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t >= 0.0, self._frozen().pdf(np.where(t >= 0.0, t, 0.0)), 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t >= 0.0, self._frozen().cdf(np.where(t >= 0.0, t, 0.0)), 0.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.shape / self.rate

    def variance(self) -> float:
        return self.shape / (self.rate * self.rate)

    def moment(self, k: int) -> float:
        if k < 0:
            return super().moment(k)
        # E[T^k] = Γ(α + k) / (Γ(α) β^k)
        return math.exp(math.lgamma(self.shape + k) - math.lgamma(self.shape)) / self.rate**k

    def ppf(self, q):
        scalar = np.isscalar(q)
        out = self._frozen().ppf(q)
        return float(out) if scalar else np.asarray(out)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.gamma(shape=self.shape, scale=1.0 / self.rate, size=size)


class Erlang(Gamma):
    """Erlang distribution: sum of ``stages`` exponential phases of rate ``rate``.

    ``Erlang(k, λ)`` has mean ``k/λ`` and squared CV ``1/k`` — the smallest
    squared CV achievable with ``k`` phases, which is why moment-matching
    fits with CV < 1 use Erlang stages.

    Examples
    --------
    >>> e = Erlang(stages=4, rate=2.0)
    >>> round(e.cv() ** 2, 6)
    0.25
    """

    def __init__(self, stages: int, rate: float):
        if int(stages) != stages or stages < 1:
            raise DistributionError(f"stages must be a positive integer, got {stages!r}")
        super().__init__(shape=float(stages), rate=rate)
        self.stages = int(stages)

    @classmethod
    def from_mean(cls, mean: float, stages: int) -> "Erlang":
        """Build an Erlang with the given mean and number of stages."""
        mean = check_positive(mean, "mean")
        return cls(stages=stages, rate=stages / mean)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if size is None:
            return float(np.sum(rng.exponential(scale=1.0 / self.rate, size=self.stages)))
        return np.sum(rng.exponential(scale=1.0 / self.rate, size=(size, self.stages)), axis=1)
